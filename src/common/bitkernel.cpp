#include "common/bitkernel.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "common/error.hpp"

#if defined(__x86_64__) || defined(__i386__)
#if defined(__GNUC__) && !defined(PUFAGING_NO_AVX2)
#define PUFAGING_HAVE_AVX2_TIER 1
#include <immintrin.h>
#endif
#if defined(__GNUC__) && !defined(PUFAGING_NO_AVX512)
#define PUFAGING_HAVE_AVX512_TIER 1
#include <immintrin.h>
#endif
#elif defined(__aarch64__) && defined(__ARM_NEON)
#define PUFAGING_HAVE_NEON_TIER 1
#include <arm_neon.h>
#endif

namespace pufaging::bitkernel {

namespace {

// Mask selecting the valid bits of the tail word of a `bit_count`-bit
// pattern; all-ones when the length is a multiple of 64.
std::uint64_t tail_mask(std::size_t bit_count) {
  const std::size_t tail = bit_count & 63U;
  return tail == 0 ? ~std::uint64_t{0} : (std::uint64_t{1} << tail) - 1;
}

// ---------------------------------------------------------------------------
// Scalar tier: the oracle. One word at a time, no unrolling, no tricks —
// this is the implementation the differential suite trusts, so it stays
// deliberately boring.
// ---------------------------------------------------------------------------

std::size_t popcount_scalar(const std::uint64_t* words, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(words[i]));
  }
  return total;
}

std::size_t xor_popcount_scalar(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
  }
  return total;
}

void xor_rows_scalar(const std::uint64_t* a, const std::uint64_t* b,
                     std::uint64_t* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = a[i] ^ b[i];
  }
}

void accumulate_ones_scalar(const std::uint64_t* words, std::size_t bit_count,
                            std::uint32_t* counters) {
  const std::size_t n_words = (bit_count + 63) / 64;
  for (std::size_t w = 0; w < n_words; ++w) {
    std::uint64_t bits = words[w];
    if (w + 1 == n_words) {
      bits &= tail_mask(bit_count);
    }
    while (bits != 0) {
      const int bit = std::countr_zero(bits);
      counters[w * 64 + static_cast<std::size_t>(bit)] += 1;
      bits &= bits - 1;
    }
  }
}

// The oracle fused kernel is the plain composition of the three oracle
// kernels — it *defines* the row_stats contract the fast tiers must hit.
void row_stats_scalar(const std::uint64_t* row, const std::uint64_t* ref,
                      std::size_t bit_count, std::uint32_t* counters,
                      std::uint64_t* dist, std::uint64_t* pop) {
  const std::size_t n_words = (bit_count + 63) / 64;
  *dist = xor_popcount_scalar(row, ref, n_words);
  *pop = popcount_scalar(row, n_words);
  accumulate_ones_scalar(row, bit_count, counters);
}

// ---------------------------------------------------------------------------
// Word tier: portable word-parallel. Popcounts are 4-way unrolled into
// independent accumulators (the hardware popcnt unit pipelines at 1/cycle
// but the single-accumulator chain serializes on the add); ones
// accumulation trades the sparse set-bit walk for a branchless per-bit
// add, which at the paper's ~50% ones density removes a 32-iteration
// data-dependent loop per word and lets the compiler vectorize.
// ---------------------------------------------------------------------------

std::size_t popcount_word(const std::uint64_t* words, std::size_t n) {
  std::size_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += static_cast<std::size_t>(std::popcount(words[i]));
    c1 += static_cast<std::size_t>(std::popcount(words[i + 1]));
    c2 += static_cast<std::size_t>(std::popcount(words[i + 2]));
    c3 += static_cast<std::size_t>(std::popcount(words[i + 3]));
  }
  for (; i < n; ++i) {
    c0 += static_cast<std::size_t>(std::popcount(words[i]));
  }
  return c0 + c1 + c2 + c3;
}

std::size_t xor_popcount_word(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t n) {
  std::size_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
    c1 += static_cast<std::size_t>(std::popcount(a[i + 1] ^ b[i + 1]));
    c2 += static_cast<std::size_t>(std::popcount(a[i + 2] ^ b[i + 2]));
    c3 += static_cast<std::size_t>(std::popcount(a[i + 3] ^ b[i + 3]));
  }
  for (; i < n; ++i) {
    c0 += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
  }
  return c0 + c1 + c2 + c3;
}

void xor_rows_word(const std::uint64_t* a, const std::uint64_t* b,
                   std::uint64_t* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    out[i] = a[i] ^ b[i];
    out[i + 1] = a[i + 1] ^ b[i + 1];
    out[i + 2] = a[i + 2] ^ b[i + 2];
    out[i + 3] = a[i + 3] ^ b[i + 3];
  }
  for (; i < n; ++i) {
    out[i] = a[i] ^ b[i];
  }
}

void accumulate_ones_word(const std::uint64_t* words, std::size_t bit_count,
                          std::uint32_t* counters) {
  const std::size_t n_words = (bit_count + 63) / 64;
  if (n_words == 0) {
    return;
  }
  for (std::size_t w = 0; w + 1 < n_words; ++w) {
    const std::uint64_t bits = words[w];
    std::uint32_t* c = counters + w * 64;
    for (std::size_t bit = 0; bit < 64; ++bit) {
      c[bit] += static_cast<std::uint32_t>((bits >> bit) & 1U);
    }
  }
  // Tail word: masked, and only the in-range counters exist.
  const std::uint64_t bits = words[n_words - 1] & tail_mask(bit_count);
  std::uint32_t* c = counters + (n_words - 1) * 64;
  const std::size_t tail_bits = bit_count - (n_words - 1) * 64;
  for (std::size_t bit = 0; bit < tail_bits; ++bit) {
    c[bit] += static_cast<std::uint32_t>((bits >> bit) & 1U);
  }
}

// Fused at the word tier: one sweep feeding both popcount accumulators
// and the branchless per-bit counter adds, so the measurement row is
// pulled through the cache once instead of three times.
void row_stats_word(const std::uint64_t* row, const std::uint64_t* ref,
                    std::size_t bit_count, std::uint32_t* counters,
                    std::uint64_t* dist, std::uint64_t* pop) {
  const std::size_t n_words = (bit_count + 63) / 64;
  std::uint64_t d = 0, p = 0;
  if (n_words == 0) {
    *dist = 0;
    *pop = 0;
    return;
  }
  for (std::size_t w = 0; w + 1 < n_words; ++w) {
    const std::uint64_t bits = row[w];
    d += static_cast<std::uint64_t>(std::popcount(bits ^ ref[w]));
    p += static_cast<std::uint64_t>(std::popcount(bits));
    std::uint32_t* c = counters + w * 64;
    for (std::size_t bit = 0; bit < 64; ++bit) {
      c[bit] += static_cast<std::uint32_t>((bits >> bit) & 1U);
    }
  }
  // Tail word: dist/pop over the raw word (BitVector keeps padding
  // clean); the counter update masks, exactly like accumulate_ones.
  const std::uint64_t raw = row[n_words - 1];
  d += static_cast<std::uint64_t>(std::popcount(raw ^ ref[n_words - 1]));
  p += static_cast<std::uint64_t>(std::popcount(raw));
  const std::uint64_t bits = raw & tail_mask(bit_count);
  std::uint32_t* c = counters + (n_words - 1) * 64;
  const std::size_t tail_bits = bit_count - (n_words - 1) * 64;
  for (std::size_t bit = 0; bit < tail_bits; ++bit) {
    c[bit] += static_cast<std::uint32_t>((bits >> bit) & 1U);
  }
  *dist = d;
  *pop = p;
}

#if defined(PUFAGING_HAVE_AVX2_TIER)

// ---------------------------------------------------------------------------
// AVX2 tier. Compiled with per-function target attributes so the rest of
// the binary stays baseline x86-64; selected only when the running CPU
// reports AVX2. Popcounts use the Mula nibble-LUT + psadbw reduction;
// ones accumulation expands each byte of the pattern into eight 32-bit
// lanes with a compare-mask add (8 counters per vector op instead of 8
// scalar read-modify-writes).
// ---------------------------------------------------------------------------

// Unaligned 256-bit load routed through void* so -Wcast-align stays quiet:
// the data really is only 8-byte aligned and loadu is fine with that.
__attribute__((target("avx2"))) inline __m256i load256(
    const std::uint64_t* p) {
  return _mm256_loadu_si256(
      static_cast<const __m256i*>(static_cast<const void*>(p)));
}

__attribute__((target("avx2"))) inline __m256i popcount_bytes256(__m256i v) {
  const __m256i lookup = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0F);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                      _mm256_shuffle_epi8(lookup, hi));
  // Four 64-bit lane sums of the 32 byte counts.
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

__attribute__((target("avx2"))) std::size_t reduce_u64x4(__m256i acc) {
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(static_cast<__m256i*>(static_cast<void*>(lanes)), acc);
  return static_cast<std::size_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
}

__attribute__((target("avx2"))) std::size_t popcount_avx2(
    const std::uint64_t* words, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm256_add_epi64(acc, popcount_bytes256(load256(words + i)));
    acc = _mm256_add_epi64(acc, popcount_bytes256(load256(words + i + 4)));
  }
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_epi64(acc, popcount_bytes256(load256(words + i)));
  }
  std::size_t total = reduce_u64x4(acc);
  for (; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(words[i]));
  }
  return total;
}

__attribute__((target("avx2"))) std::size_t xor_popcount_avx2(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i x0 = _mm256_xor_si256(load256(a + i), load256(b + i));
    const __m256i x1 =
        _mm256_xor_si256(load256(a + i + 4), load256(b + i + 4));
    acc = _mm256_add_epi64(acc, popcount_bytes256(x0));
    acc = _mm256_add_epi64(acc, popcount_bytes256(x1));
  }
  for (; i + 4 <= n; i += 4) {
    const __m256i x = _mm256_xor_si256(load256(a + i), load256(b + i));
    acc = _mm256_add_epi64(acc, popcount_bytes256(x));
  }
  std::size_t total = reduce_u64x4(acc);
  for (; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
  }
  return total;
}

__attribute__((target("avx2"))) void xor_rows_avx2(const std::uint64_t* a,
                                                   const std::uint64_t* b,
                                                   std::uint64_t* out,
                                                   std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x = _mm256_xor_si256(load256(a + i), load256(b + i));
    _mm256_storeu_si256(static_cast<__m256i*>(static_cast<void*>(out + i)),
                        x);
  }
  for (; i < n; ++i) {
    out[i] = a[i] ^ b[i];
  }
}

// One full word's 64 counters, updated eight lanes at a time:
// bit_select[k] = 1 << k spreads one byte's bits across eight 32-bit
// lanes, and counters -= (byte & bit ? -1 : 0) adds exactly the bit value.
__attribute__((target("avx2"))) inline void accumulate_word_avx2(
    std::uint64_t bits, std::uint32_t* c) {
  const __m256i bit_select = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
  for (std::size_t byte = 0; byte < 8; ++byte) {
    const __m256i v = _mm256_set1_epi32(
        static_cast<int>((bits >> (byte * 8)) & 0xFFU));
    const __m256i hit = _mm256_cmpeq_epi32(
        _mm256_and_si256(v, bit_select), bit_select);
    std::uint32_t* dst = c + byte * 8;
    const __m256i cur =
        _mm256_loadu_si256(static_cast<const __m256i*>(
            static_cast<const void*>(dst)));
    _mm256_storeu_si256(
        static_cast<__m256i*>(static_cast<void*>(dst)),
        _mm256_sub_epi32(cur, hit));
  }
}

__attribute__((target("avx2"))) void accumulate_ones_avx2(
    const std::uint64_t* words, std::size_t bit_count,
    std::uint32_t* counters) {
  const std::size_t n_words = (bit_count + 63) / 64;
  if (n_words == 0) {
    return;
  }
  const std::size_t full_words = n_words - 1;
  for (std::size_t w = 0; w < full_words; ++w) {
    accumulate_word_avx2(words[w], counters + w * 64);
  }
  // Tail word: masked, scalar — at most 63 counter updates and only the
  // in-range counters exist, so no vector store may touch past the end.
  std::uint64_t bits = words[full_words] & tail_mask(bit_count);
  while (bits != 0) {
    const int bit = std::countr_zero(bits);
    counters[full_words * 64 + static_cast<std::size_t>(bit)] += 1;
    bits &= bits - 1;
  }
}

// Fused: the 4-word popcount blocks and the per-word counter update share
// one pass over the row, so the device-month hot loop reads each
// measurement once instead of three times.
__attribute__((target("avx2"))) void row_stats_avx2(
    const std::uint64_t* row, const std::uint64_t* ref, std::size_t bit_count,
    std::uint32_t* counters, std::uint64_t* dist, std::uint64_t* pop) {
  const std::size_t n_words = (bit_count + 63) / 64;
  if (n_words == 0) {
    *dist = 0;
    *pop = 0;
    return;
  }
  const std::size_t full_words = n_words - 1;
  __m256i dacc = _mm256_setzero_si256();
  __m256i pacc = _mm256_setzero_si256();
  std::uint64_t d = 0, p = 0;
  std::size_t w = 0;
  for (; w + 4 <= full_words; w += 4) {
    const __m256i r = load256(row + w);
    dacc = _mm256_add_epi64(
        dacc, popcount_bytes256(_mm256_xor_si256(r, load256(ref + w))));
    pacc = _mm256_add_epi64(pacc, popcount_bytes256(r));
    accumulate_word_avx2(row[w], counters + w * 64);
    accumulate_word_avx2(row[w + 1], counters + (w + 1) * 64);
    accumulate_word_avx2(row[w + 2], counters + (w + 2) * 64);
    accumulate_word_avx2(row[w + 3], counters + (w + 3) * 64);
  }
  for (; w < full_words; ++w) {
    d += static_cast<std::uint64_t>(std::popcount(row[w] ^ ref[w]));
    p += static_cast<std::uint64_t>(std::popcount(row[w]));
    accumulate_word_avx2(row[w], counters + w * 64);
  }
  // Tail word: dist/pop raw (BitVector keeps padding clean), counters
  // masked scalar like accumulate_ones_avx2.
  const std::uint64_t raw = row[full_words];
  d += static_cast<std::uint64_t>(std::popcount(raw ^ ref[full_words]));
  p += static_cast<std::uint64_t>(std::popcount(raw));
  std::uint64_t bits = raw & tail_mask(bit_count);
  while (bits != 0) {
    const int bit = std::countr_zero(bits);
    counters[full_words * 64 + static_cast<std::size_t>(bit)] += 1;
    bits &= bits - 1;
  }
  *dist = reduce_u64x4(dacc) + d;
  *pop = reduce_u64x4(pacc) + p;
}

#endif  // PUFAGING_HAVE_AVX2_TIER

#if defined(PUFAGING_HAVE_AVX512_TIER)

// ---------------------------------------------------------------------------
// AVX-512 tier (F + BW). Same per-function target-attribute scheme as the
// AVX2 tier, so the binary stays baseline x86-64 and the tier is only
// selected when the running CPU reports both avx512f and avx512bw.
// Popcounts are the 512-bit Mula nibble-LUT + vpsadbw reduction (twice
// the AVX2 width per op); ones accumulation writes 16 counters per vector
// op by feeding 16 pattern bits straight into a write mask
// (_mm512_mask_sub_epi32 with -1 adds exactly the bit value per lane).
// ---------------------------------------------------------------------------

__attribute__((target("avx512f,avx512bw"))) inline __m512i load512(
    const std::uint64_t* p) {
  return _mm512_loadu_si512(static_cast<const void*>(p));
}

__attribute__((target("avx512f,avx512bw"))) inline __m512i popcount_bytes512(
    __m512i v) {
  // The 16-byte Mula nibble LUT repeated across all four 128-bit lanes,
  // spelled as 64-bit literals: GCC's _mm512_broadcast_i32x4 routes
  // through _mm512_undefined_epi32 and trips -Wmaybe-uninitialized.
  constexpr long long kLutLo = 0x0302020102010100LL;  // counts of 0..7
  constexpr long long kLutHi = 0x0403030203020201LL;  // counts of 8..15
  const __m512i lookup = _mm512_set_epi64(kLutHi, kLutLo, kLutHi, kLutLo,
                                          kLutHi, kLutLo, kLutHi, kLutLo);
  const __m512i low_mask = _mm512_set1_epi8(0x0F);
  const __m512i lo = _mm512_and_si512(v, low_mask);
  const __m512i hi = _mm512_and_si512(_mm512_srli_epi16(v, 4), low_mask);
  const __m512i cnt = _mm512_add_epi8(_mm512_shuffle_epi8(lookup, lo),
                                      _mm512_shuffle_epi8(lookup, hi));
  // Eight 64-bit lane sums of the 64 byte counts.
  return _mm512_sad_epu8(cnt, _mm512_setzero_si512());
}

// Lane sum via an aligned spill: _mm512_reduce_add_epi64 lowers through
// _mm512_extracti64x4_epi64, whose header body also reads
// _mm256_undefined_si256 and warns under -Werror builds.
__attribute__((target("avx512f,avx512bw"))) std::size_t reduce_u64x8(
    __m512i acc) {
  alignas(64) std::uint64_t lanes[8];
  _mm512_store_si512(static_cast<void*>(lanes), acc);
  return static_cast<std::size_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3] +
                                  lanes[4] + lanes[5] + lanes[6] + lanes[7]);
}

__attribute__((target("avx512f,avx512bw"))) std::size_t popcount_avx512(
    const std::uint64_t* words, std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc = _mm512_add_epi64(acc, popcount_bytes512(load512(words + i)));
    acc = _mm512_add_epi64(acc, popcount_bytes512(load512(words + i + 8)));
  }
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_add_epi64(acc, popcount_bytes512(load512(words + i)));
  }
  std::size_t total =
      reduce_u64x8(acc);
  for (; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(words[i]));
  }
  return total;
}

__attribute__((target("avx512f,avx512bw"))) std::size_t xor_popcount_avx512(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i x0 = _mm512_xor_si512(load512(a + i), load512(b + i));
    const __m512i x1 =
        _mm512_xor_si512(load512(a + i + 8), load512(b + i + 8));
    acc = _mm512_add_epi64(acc, popcount_bytes512(x0));
    acc = _mm512_add_epi64(acc, popcount_bytes512(x1));
  }
  for (; i + 8 <= n; i += 8) {
    const __m512i x = _mm512_xor_si512(load512(a + i), load512(b + i));
    acc = _mm512_add_epi64(acc, popcount_bytes512(x));
  }
  std::size_t total =
      reduce_u64x8(acc);
  for (; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
  }
  return total;
}

__attribute__((target("avx512f,avx512bw"))) void xor_rows_avx512(
    const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* out,
    std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_si512(static_cast<void*>(out + i),
                        _mm512_xor_si512(load512(a + i), load512(b + i)));
  }
  for (; i < n; ++i) {
    out[i] = a[i] ^ b[i];
  }
}

// One full word's 64 counters in four masked vector ops: each 16-bit
// slice of the word becomes the write mask of a 16-lane subtract of -1,
// so exactly the set bits' counters are incremented.
__attribute__((target("avx512f,avx512bw"))) inline void accumulate_word_avx512(
    std::uint64_t bits, std::uint32_t* c) {
  const __m512i minus_one = _mm512_set1_epi32(-1);
  for (std::size_t q = 0; q < 4; ++q) {
    const auto m = static_cast<__mmask16>((bits >> (q * 16)) & 0xFFFFU);
    std::uint32_t* dst = c + q * 16;
    __m512i cur = _mm512_loadu_si512(static_cast<const void*>(dst));
    cur = _mm512_mask_sub_epi32(cur, m, cur, minus_one);
    _mm512_storeu_si512(static_cast<void*>(dst), cur);
  }
}

__attribute__((target("avx512f,avx512bw"))) void accumulate_ones_avx512(
    const std::uint64_t* words, std::size_t bit_count,
    std::uint32_t* counters) {
  const std::size_t n_words = (bit_count + 63) / 64;
  if (n_words == 0) {
    return;
  }
  const std::size_t full_words = n_words - 1;
  for (std::size_t w = 0; w < full_words; ++w) {
    accumulate_word_avx512(words[w], counters + w * 64);
  }
  // Tail word: masked, scalar — only the in-range counters exist, so no
  // vector store may touch past the end.
  std::uint64_t bits = words[full_words] & tail_mask(bit_count);
  while (bits != 0) {
    const int bit = std::countr_zero(bits);
    counters[full_words * 64 + static_cast<std::size_t>(bit)] += 1;
    bits &= bits - 1;
  }
}

__attribute__((target("avx512f,avx512bw"))) void row_stats_avx512(
    const std::uint64_t* row, const std::uint64_t* ref, std::size_t bit_count,
    std::uint32_t* counters, std::uint64_t* dist, std::uint64_t* pop) {
  const std::size_t n_words = (bit_count + 63) / 64;
  if (n_words == 0) {
    *dist = 0;
    *pop = 0;
    return;
  }
  const std::size_t full_words = n_words - 1;
  __m512i dacc = _mm512_setzero_si512();
  __m512i pacc = _mm512_setzero_si512();
  std::uint64_t d = 0, p = 0;
  std::size_t w = 0;
  for (; w + 8 <= full_words; w += 8) {
    const __m512i r = load512(row + w);
    dacc = _mm512_add_epi64(
        dacc, popcount_bytes512(_mm512_xor_si512(r, load512(ref + w))));
    pacc = _mm512_add_epi64(pacc, popcount_bytes512(r));
    for (std::size_t k = 0; k < 8; ++k) {
      accumulate_word_avx512(row[w + k], counters + (w + k) * 64);
    }
  }
  for (; w < full_words; ++w) {
    d += static_cast<std::uint64_t>(std::popcount(row[w] ^ ref[w]));
    p += static_cast<std::uint64_t>(std::popcount(row[w]));
    accumulate_word_avx512(row[w], counters + w * 64);
  }
  const std::uint64_t raw = row[full_words];
  d += static_cast<std::uint64_t>(std::popcount(raw ^ ref[full_words]));
  p += static_cast<std::uint64_t>(std::popcount(raw));
  std::uint64_t bits = raw & tail_mask(bit_count);
  while (bits != 0) {
    const int bit = std::countr_zero(bits);
    counters[full_words * 64 + static_cast<std::size_t>(bit)] += 1;
    bits &= bits - 1;
  }
  *dist = reduce_u64x8(dacc) + d;
  *pop = reduce_u64x8(pacc) + p;
}

#endif  // PUFAGING_HAVE_AVX512_TIER

#if defined(PUFAGING_HAVE_NEON_TIER)

// ---------------------------------------------------------------------------
// NEON tier (AArch64, where NEON is architectural). vcnt counts bits per
// byte; pairwise-widening adds reduce to 64-bit lanes.
// ---------------------------------------------------------------------------

std::size_t popcount_neon(const std::uint64_t* words, std::size_t n) {
  uint64x2_t acc = vdupq_n_u64(0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint8x16_t v = vreinterpretq_u8_u64(vld1q_u64(words + i));
    acc = vaddq_u64(acc, vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(vcntq_u8(v)))));
  }
  std::size_t total = static_cast<std::size_t>(vgetq_lane_u64(acc, 0) +
                                               vgetq_lane_u64(acc, 1));
  for (; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(words[i]));
  }
  return total;
}

std::size_t xor_popcount_neon(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t n) {
  uint64x2_t acc = vdupq_n_u64(0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint8x16_t v = vreinterpretq_u8_u64(
        veorq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
    acc = vaddq_u64(acc, vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(vcntq_u8(v)))));
  }
  std::size_t total = static_cast<std::size_t>(vgetq_lane_u64(acc, 0) +
                                               vgetq_lane_u64(acc, 1));
  for (; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
  }
  return total;
}

void xor_rows_neon(const std::uint64_t* a, const std::uint64_t* b,
                   std::uint64_t* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(out + i, veorq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
  }
  for (; i < n; ++i) {
    out[i] = a[i] ^ b[i];
  }
}

void accumulate_ones_neon(const std::uint64_t* words, std::size_t bit_count,
                          std::uint32_t* counters) {
  const std::size_t n_words = (bit_count + 63) / 64;
  if (n_words == 0) {
    return;
  }
  const uint32x4_t bit_select_lo = {1U, 2U, 4U, 8U};
  const uint32x4_t bit_select_hi = {16U, 32U, 64U, 128U};
  const std::size_t full_words = n_words - 1;
  for (std::size_t w = 0; w < full_words; ++w) {
    const std::uint64_t bits = words[w];
    std::uint32_t* c = counters + w * 64;
    for (std::size_t byte = 0; byte < 8; ++byte) {
      const uint32x4_t v =
          vdupq_n_u32(static_cast<std::uint32_t>((bits >> (byte * 8)) & 0xFFU));
      std::uint32_t* dst = c + byte * 8;
      const uint32x4_t hit_lo =
          vtstq_u32(v, bit_select_lo);  // 0 or ~0 per lane
      const uint32x4_t hit_hi = vtstq_u32(v, bit_select_hi);
      vst1q_u32(dst, vsubq_u32(vld1q_u32(dst), hit_lo));
      vst1q_u32(dst + 4, vsubq_u32(vld1q_u32(dst + 4), hit_hi));
    }
  }
  std::uint64_t bits = words[full_words] & tail_mask(bit_count);
  while (bits != 0) {
    const int bit = std::countr_zero(bits);
    counters[full_words * 64 + static_cast<std::size_t>(bit)] += 1;
    bits &= bits - 1;
  }
}

// Composition at the NEON tier: the vcnt popcounts and the counter sweep
// already saturate the in-order load pipes on the small cores this tier
// targets, so fusing buys nothing measurable — one dispatch, three sweeps.
void row_stats_neon(const std::uint64_t* row, const std::uint64_t* ref,
                    std::size_t bit_count, std::uint32_t* counters,
                    std::uint64_t* dist, std::uint64_t* pop) {
  const std::size_t n_words = (bit_count + 63) / 64;
  *dist = xor_popcount_neon(row, ref, n_words);
  *pop = popcount_neon(row, n_words);
  accumulate_ones_neon(row, bit_count, counters);
}

#endif  // PUFAGING_HAVE_NEON_TIER

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

constexpr Kernels kScalarKernels{popcount_scalar, xor_popcount_scalar,
                                 accumulate_ones_scalar, xor_rows_scalar,
                                 row_stats_scalar};
constexpr Kernels kWordKernels{popcount_word, xor_popcount_word,
                               accumulate_ones_word, xor_rows_word,
                               row_stats_word};
#if defined(PUFAGING_HAVE_AVX2_TIER)
constexpr Kernels kAvx2Kernels{popcount_avx2, xor_popcount_avx2,
                               accumulate_ones_avx2, xor_rows_avx2,
                               row_stats_avx2};
#endif
#if defined(PUFAGING_HAVE_AVX512_TIER)
constexpr Kernels kAvx512Kernels{popcount_avx512, xor_popcount_avx512,
                                 accumulate_ones_avx512, xor_rows_avx512,
                                 row_stats_avx512};
#endif
#if defined(PUFAGING_HAVE_NEON_TIER)
constexpr Kernels kNeonKernels{popcount_neon, xor_popcount_neon,
                               accumulate_ones_neon, xor_rows_neon,
                               row_stats_neon};
#endif

bool level_available(Level level) {
  switch (level) {
    case Level::kScalar:
    case Level::kWord:
      return true;
    case Level::kAvx2:
#if defined(PUFAGING_HAVE_AVX2_TIER)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Level::kAvx512:
#if defined(PUFAGING_HAVE_AVX512_TIER)
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512bw") != 0;
#else
      return false;
#endif
    case Level::kNeon:
#if defined(PUFAGING_HAVE_NEON_TIER)
      return true;
#else
      return false;
#endif
  }
  return false;
}

Level best_available_level() {
#if defined(PUFAGING_HAVE_NEON_TIER)
  return Level::kNeon;
#else
  if (level_available(Level::kAvx512)) {
    return Level::kAvx512;
  }
  return level_available(Level::kAvx2) ? Level::kAvx2 : Level::kWord;
#endif
}

// The active tier. Written by dispatch init and force_level (tests,
// benches, startup); read concurrently by the campaign's worker threads,
// hence atomic with relaxed ordering — a stale read would only ever see
// another fully valid kernel table, and all tables agree bit-for-bit.
std::atomic<const Kernels*> g_kernels{nullptr};
std::atomic<Level> g_level{Level::kScalar};

const Kernels& install_level(Level level) {
  const Kernels& k = kernels_for(level);
  g_level.store(level, std::memory_order_relaxed);
  g_kernels.store(&k, std::memory_order_release);
  return k;
}

const Kernels& dispatch_init() {
  Level level = best_available_level();
  if (const char* env = std::getenv("PUFAGING_SIMD")) {
    const Level pinned = level_from_name(env);
    if (!level_available(pinned)) {
      throw InvalidArgument(
          "PUFAGING_SIMD: tier not available on this CPU/build");
    }
    level = pinned;
  }
  return install_level(level);
}

inline const Kernels& active_kernels() {
  const Kernels* k = g_kernels.load(std::memory_order_acquire);
  if (k == nullptr) {
    // First use from any thread; init is idempotent (all racers install
    // the same table) so no lock is needed.
    return dispatch_init();
  }
  return *k;
}

// ---------------------------------------------------------------------------
// Dispatch tally. One relaxed increment per dispatched entry-point call
// on a per-thread cell (no shared cache line on the hot path); cells of
// exited threads fold into a retired total so dispatch_counts() never
// loses calls. The registry statics are constructed before any cell
// registers, so they outlive every thread-local cell at shutdown.
// ---------------------------------------------------------------------------

struct DispatchCell {
  std::atomic<std::uint64_t> calls[kLevelCount] = {};
};

std::mutex& dispatch_mutex() {
  static std::mutex mu;
  return mu;
}

std::vector<DispatchCell*>& dispatch_cells() {
  static std::vector<DispatchCell*> cells;
  return cells;
}

DispatchCounts& retired_dispatch_counts() {
  static DispatchCounts retired;
  return retired;
}

struct DispatchCellHandle {
  DispatchCell cell;

  DispatchCellHandle() {
    const std::lock_guard<std::mutex> lock(dispatch_mutex());
    dispatch_cells().push_back(&cell);
  }

  ~DispatchCellHandle() {
    const std::lock_guard<std::mutex> lock(dispatch_mutex());
    std::vector<DispatchCell*>& cells = dispatch_cells();
    cells.erase(std::remove(cells.begin(), cells.end(), &cell), cells.end());
    DispatchCounts& retired = retired_dispatch_counts();
    for (std::size_t i = 0; i < kLevelCount; ++i) {
      retired.calls[i] += cell.calls[i].load(std::memory_order_relaxed);
    }
  }
};

// Called after active_kernels(), so g_level already names the tier that
// served this call.
inline void count_dispatch() {
  thread_local DispatchCellHandle handle;
  const auto tier =
      static_cast<std::size_t>(g_level.load(std::memory_order_relaxed));
  handle.cell.calls[tier].fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kWord:
      return "word";
    case Level::kAvx2:
      return "avx2";
    case Level::kNeon:
      return "neon";
    case Level::kAvx512:
      return "avx512";
  }
  return "unknown";
}

Level level_from_name(const std::string& name) {
  if (name == "scalar") {
    return Level::kScalar;
  }
  if (name == "word") {
    return Level::kWord;
  }
  if (name == "avx2") {
    return Level::kAvx2;
  }
  if (name == "neon") {
    return Level::kNeon;
  }
  if (name == "avx512") {
    return Level::kAvx512;
  }
  throw InvalidArgument("bitkernel: unknown SIMD tier name '" + name + "'");
}

std::vector<Level> available_levels() {
  std::vector<Level> out;
  for (const Level level : {Level::kScalar, Level::kWord, Level::kAvx2,
                            Level::kNeon, Level::kAvx512}) {
    if (level_available(level)) {
      out.push_back(level);
    }
  }
  return out;
}

Level active_level() {
  active_kernels();  // Ensure dispatch ran.
  return g_level.load(std::memory_order_relaxed);
}

void force_level(Level level) {
  if (!level_available(level)) {
    throw InvalidArgument(
        "bitkernel::force_level: tier not available on this CPU/build");
  }
  install_level(level);
}

const Kernels& kernels_for(Level level) {
  switch (level) {
    case Level::kScalar:
      return kScalarKernels;
    case Level::kWord:
      return kWordKernels;
    case Level::kAvx2:
#if defined(PUFAGING_HAVE_AVX2_TIER)
      return kAvx2Kernels;
#else
      break;
#endif
    case Level::kNeon:
#if defined(PUFAGING_HAVE_NEON_TIER)
      return kNeonKernels;
#else
      break;
#endif
    case Level::kAvx512:
#if defined(PUFAGING_HAVE_AVX512_TIER)
      return kAvx512Kernels;
#else
      break;
#endif
  }
  throw InvalidArgument("bitkernel::kernels_for: tier not compiled in");
}

DispatchCounts dispatch_counts() {
  const std::lock_guard<std::mutex> lock(dispatch_mutex());
  DispatchCounts out = retired_dispatch_counts();
  for (const DispatchCell* cell : dispatch_cells()) {
    for (std::size_t i = 0; i < kLevelCount; ++i) {
      out.calls[i] += cell->calls[i].load(std::memory_order_relaxed);
    }
  }
  return out;
}

std::size_t popcount(const std::uint64_t* words, std::size_t n) {
  const Kernels& k = active_kernels();
  count_dispatch();
  return k.popcount(words, n);
}

std::size_t xor_popcount(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t n) {
  const Kernels& k = active_kernels();
  count_dispatch();
  return k.xor_popcount(a, b, n);
}

void accumulate_ones(const std::uint64_t* words, std::size_t bit_count,
                     std::uint32_t* counters) {
  const Kernels& k = active_kernels();
  count_dispatch();
  k.accumulate_ones(words, bit_count, counters);
}

void xor_rows(const std::uint64_t* a, const std::uint64_t* b,
              std::uint64_t* out, std::size_t n) {
  const Kernels& k = active_kernels();
  count_dispatch();
  k.xor_rows(a, b, out, n);
}

void row_stats(const std::uint64_t* row, const std::uint64_t* ref,
               std::size_t bit_count, std::uint32_t* counters,
               std::uint64_t* dist, std::uint64_t* pop) {
  const Kernels& k = active_kernels();
  count_dispatch();
  k.row_stats(row, ref, bit_count, counters, dist, pop);
}

void row_stats_batch(const std::uint64_t* rows, std::size_t row_count,
                     std::size_t words_per_row, std::size_t bit_count,
                     const std::uint64_t* ref, std::uint32_t* counters,
                     std::uint64_t* dists, std::uint64_t* pops) {
  const Kernels& k = active_kernels();
  count_dispatch();
  for (std::size_t r = 0; r < row_count; ++r) {
    k.row_stats(rows + r * words_per_row, ref, bit_count, counters,
                dists + r, pops + r);
  }
}

void accumulate_ones_batch(const std::uint64_t* rows, std::size_t row_count,
                           std::size_t words_per_row, std::size_t bit_count,
                           std::uint32_t* counters) {
  const Kernels& k = active_kernels();
  count_dispatch();
  for (std::size_t r = 0; r < row_count; ++r) {
    k.accumulate_ones(rows + r * words_per_row, bit_count, counters);
  }
}

void all_pairs_hamming(const std::uint64_t* rows, std::size_t n,
                       std::size_t words_per_row, std::size_t* out) {
  const Kernels& k = active_kernels();
  count_dispatch();
  // Tile the pair grid so both row blocks stay L1-resident: with the
  // paper's 1 KiB rows a 16-row block pair is 32 KiB. For small fleets
  // a single block covers everything and this is the plain i<j loop.
  const std::size_t row_bytes = words_per_row * sizeof(std::uint64_t);
  const std::size_t block =
      row_bytes == 0 ? n : (row_bytes >= 16384 ? 1 : 16384 / row_bytes);
  const auto pair_index = [n](std::size_t i, std::size_t j) {
    // Lexicographic rank of (i, j), i < j, among the n(n-1)/2 pairs.
    return i * (2 * n - i - 1) / 2 + (j - i - 1);
  };
  for (std::size_t ib = 0; ib < n; ib += block) {
    const std::size_t ie = std::min(n, ib + block);
    for (std::size_t jb = ib; jb < n; jb += block) {
      const std::size_t je = std::min(n, jb + block);
      for (std::size_t i = ib; i < ie; ++i) {
        const std::uint64_t* ri = rows + i * words_per_row;
        for (std::size_t j = std::max(jb, i + 1); j < je; ++j) {
          out[pair_index(i, j)] =
              k.xor_popcount(ri, rows + j * words_per_row, words_per_row);
        }
      }
    }
  }
}

void column_ones(const std::uint64_t* rows, std::size_t n,
                 std::size_t words_per_row, std::size_t bit_count,
                 std::uint32_t* counters) {
  for (std::size_t i = 0; i < bit_count; ++i) {
    counters[i] = 0;
  }
  accumulate_ones_batch(rows, n, words_per_row, bit_count, counters);
}

}  // namespace pufaging::bitkernel
