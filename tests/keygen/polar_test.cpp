#include "keygen/polar.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "keygen/fuzzy_extractor.hpp"

namespace pufaging {
namespace {

BitVector random_message(std::size_t k, Xoshiro256StarStar& rng) {
  BitVector m(k);
  for (std::size_t i = 0; i < k; ++i) {
    m.set(i, rng.bernoulli(0.5));
  }
  return m;
}

BitVector with_random_errors(const BitVector& word, double ber,
                             Xoshiro256StarStar& rng) {
  BitVector w = word;
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (rng.bernoulli(ber)) {
      w.flip(i);
    }
  }
  return w;
}

TEST(Polar, ParametersAndValidation) {
  PolarCode code(7, 64, 0.05);  // (128, 64)
  EXPECT_EQ(code.block_length(), 128U);
  EXPECT_EQ(code.message_length(), 64U);
  EXPECT_EQ(code.name(), "polar(128,64)");
  EXPECT_EQ(code.information_set().size(), 64U);
  EXPECT_TRUE(std::is_sorted(code.information_set().begin(),
                             code.information_set().end()));
  EXPECT_THROW(PolarCode(0, 1), InvalidArgument);
  EXPECT_THROW(PolarCode(4, 0), InvalidArgument);
  EXPECT_THROW(PolarCode(4, 17), InvalidArgument);
  EXPECT_THROW(PolarCode(4, 8, 0.6), InvalidArgument);
}

TEST(Polar, InformationSetPrefersHighIndices) {
  // Polarization makes high-index synthesized channels (more "plus"
  // transforms) the reliable ones; the last channel is always the best.
  PolarCode code(6, 16, 0.1);  // (64, 16)
  const auto& info = code.information_set();
  EXPECT_EQ(info.back(), 63U);
  // Mean info-set index well above n/2.
  double mean_index = 0.0;
  for (std::uint32_t i : info) {
    mean_index += i;
  }
  mean_index /= static_cast<double>(info.size());
  EXPECT_GT(mean_index, 40.0);
}

TEST(Polar, EncodeIsLinear) {
  PolarCode code(6, 24);
  Xoshiro256StarStar rng(60);
  const BitVector a = random_message(24, rng);
  const BitVector b = random_message(24, rng);
  const BitVector sum = a ^ b;
  EXPECT_EQ(code.encode(sum), code.encode(a) ^ code.encode(b));
  EXPECT_EQ(code.encode(BitVector(24)).count_ones(), 0U);
  EXPECT_THROW(code.encode(BitVector(23)), InvalidArgument);
}

TEST(Polar, CleanRoundTrip) {
  for (unsigned log2n : {4U, 6U, 8U}) {
    const std::size_t k = (std::size_t{1} << log2n) / 2;
    PolarCode code(log2n, k);
    Xoshiro256StarStar rng(log2n);
    for (int t = 0; t < 20; ++t) {
      const BitVector m = random_message(k, rng);
      const DecodeResult r = code.decode(code.encode(m));
      ASSERT_TRUE(r.success);
      EXPECT_EQ(r.message, m);
      EXPECT_EQ(r.corrected, 0U);
    }
  }
  EXPECT_THROW(PolarCode(4, 8).decode(BitVector(15)), InvalidArgument);
}

TEST(Polar, IndicativeCorrectionRadiusIsPositive) {
  PolarCode code(8, 64, 0.05);  // rate-1/4 (256, 64)
  EXPECT_GE(code.correctable(), 4U);
}

TEST(Polar, DecodesAtDesignErrorRate) {
  // Rate 1/4 polar at its 5% design point: failures must be rare.
  PolarCode code(8, 64, 0.05);
  Xoshiro256StarStar rng(61);
  int wrong = 0;
  const int trials = 100;
  for (int t = 0; t < trials; ++t) {
    const BitVector m = random_message(64, rng);
    const BitVector noisy = with_random_errors(code.encode(m), 0.05, rng);
    const DecodeResult r = code.decode(noisy);
    wrong += (r.message == m) ? 0 : 1;
  }
  EXPECT_LE(wrong, 5);
}

TEST(Polar, HandlesPaperLevelBerTwentyFivePercent) {
  // [13]'s headline: a low-rate polar code absorbs ~25% BER. Use rate
  // 16/512 designed at 0.25.
  PolarCode code(9, 16, 0.25);
  Xoshiro256StarStar rng(62);
  int wrong = 0;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    const BitVector m = random_message(16, rng);
    const BitVector noisy = with_random_errors(code.encode(m), 0.25, rng);
    wrong += (code.decode(noisy).message == m) ? 0 : 1;
  }
  EXPECT_LE(wrong, 4);
}

TEST(Polar, FailureProbabilityBound) {
  PolarCode code(8, 64, 0.05);
  const double at_design = code.failure_probability(0.05);
  EXPECT_GT(at_design, 0.0);
  EXPECT_LT(at_design, 0.5);
  // Monotone in channel quality.
  EXPECT_LT(code.failure_probability(0.01), at_design);
  EXPECT_GT(code.failure_probability(0.2), at_design);
  EXPECT_DOUBLE_EQ(code.failure_probability(0.0), 0.0);
  EXPECT_DOUBLE_EQ(code.failure_probability(0.5), 1.0);
}

TEST(Polar, WorksInsideFuzzyExtractor) {
  auto code = std::make_shared<PolarCode>(8, 64, 0.05);
  FuzzyExtractor fx(code);
  Xoshiro256StarStar rng(63);
  BitVector response(256);
  for (std::size_t i = 0; i < 256; ++i) {
    response.set(i, rng.bernoulli(0.627));
  }
  BitVector secret;
  const HelperData helper = fx.enroll(response, 1, rng, secret);
  const BitVector noisy = with_random_errors(response, 0.03, rng);
  const ReconstructResult r = fx.reconstruct(noisy, helper);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.message, secret);
}

}  // namespace
}  // namespace pufaging
