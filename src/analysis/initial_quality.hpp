// Initial SRAM PUF quality evaluation (Section IV-A / Fig. 5).
//
// At the start of the test the paper takes the first 1,000 read-outs of
// each of the 16 boards and plots the distributions of within-class HD,
// between-class HD and fractional Hamming weight in one histogram figure.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/bitvector.hpp"
#include "stats/histogram.hpp"

namespace pufaging {

/// The three distributions of Fig. 5 plus their raw samples.
struct InitialQualityReport {
  Histogram wchd_hist;
  Histogram bchd_hist;
  Histogram fhw_hist;
  std::vector<double> wchd_samples;  ///< All devices' per-measurement WCHDs.
  std::vector<double> bchd_samples;  ///< All device pairs' BCHDs.
  std::vector<double> fhw_samples;   ///< All devices' per-measurement FHWs.
};

/// Computes the initial-quality report. `batches[d]` holds device d's first
/// 1,000 read-outs; the first read-out of each device is its reference.
/// `bins` controls the histogram resolution over [0, 1].
InitialQualityReport evaluate_initial_quality(
    std::span<const std::vector<BitVector>> batches, std::size_t bins = 100);

/// Renders the three histograms as ASCII (bench/report output).
std::string render_initial_quality(const InitialQualityReport& report);

}  // namespace pufaging
