// Unit suite for the driver's backpressure compliance policy. The
// regression headline: a kRetryAfter answer must produce a kRetry with a
// growing, capped, jittered delay — the pre-fix driver treated every
// refusal as kDone (count and hammer on), so these tests document the
// compliant-client contract the daemon's typed statuses assume.
#include "authd/driver_policy.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace pufaging::authd {
namespace {

DriverBackoffConfig base_config() {
  DriverBackoffConfig config;
  config.base_ns = 1'000'000;    // 1 ms
  config.cap_ns = 100'000'000;   // 100 ms
  config.max_retries = 6;
  config.shed_delay_ns = 500'000;
  config.seed = 0x5EED;
  return config;
}

TEST(DriverBackoff, DecisionIsTerminal) {
  const DriverBackoff policy(base_config());
  const DriverStep step = policy.on_status(ResponseStatus::kDecision, 0, 0);
  EXPECT_EQ(step.action, DriverAction::kDone);
}

// The regression: refusals must not be treated as terminal.
TEST(DriverBackoff, RetryAfterBacksOffNotHammers) {
  const DriverBackoff policy(base_config());
  const DriverStep step = policy.on_status(ResponseStatus::kRetryAfter, 0, 7);
  EXPECT_EQ(step.action, DriverAction::kRetry);
  EXPECT_GE(step.delay_ns, policy.config().base_ns);
  EXPECT_LE(step.delay_ns, policy.config().cap_ns);
}

TEST(DriverBackoff, DelayGrowsExponentiallyThenCaps) {
  DriverBackoffConfig config = base_config();
  config.seed = 0;  // Jitter still applies; monotonicity must survive it.
  const DriverBackoff policy(config);
  std::uint64_t previous = 0;
  for (std::uint32_t attempt = 0; attempt < config.max_retries; ++attempt) {
    const DriverStep step =
        policy.on_status(ResponseStatus::kRetryAfter, attempt, attempt);
    ASSERT_EQ(step.action, DriverAction::kRetry);
    // base << attempt dominates jitter (< base), so the floor doubles.
    EXPECT_GE(step.delay_ns, config.base_ns << attempt);
    EXPECT_LE(step.delay_ns, config.cap_ns);
    EXPECT_GT(step.delay_ns, previous / 2);  // Never collapses.
    previous = step.delay_ns;
  }
  // Far past the doubling range the cap holds (no shift overflow).
  DriverBackoffConfig wide = base_config();
  wide.max_retries = 64;
  const DriverBackoff wide_policy(wide);
  const DriverStep step =
      wide_policy.on_status(ResponseStatus::kRetryAfter, 63, 0);
  ASSERT_EQ(step.action, DriverAction::kRetry);
  EXPECT_LE(step.delay_ns, wide.cap_ns);
}

TEST(DriverBackoff, JitterIsDeterministicPerSeedAndNonce) {
  const DriverBackoff policy(base_config());
  const DriverStep a = policy.on_status(ResponseStatus::kRetryAfter, 2, 41);
  const DriverStep b = policy.on_status(ResponseStatus::kRetryAfter, 2, 41);
  EXPECT_EQ(a.delay_ns, b.delay_ns);  // Same coordinates, same delay.

  // Different nonces (or seeds) spread inside one backoff step.
  bool differs = false;
  for (std::uint64_t nonce = 0; nonce < 32 && !differs; ++nonce) {
    differs = policy.on_status(ResponseStatus::kRetryAfter, 2, nonce)
                  .delay_ns != a.delay_ns;
  }
  EXPECT_TRUE(differs);

  DriverBackoffConfig reseeded = base_config();
  reseeded.seed += 1;
  const DriverBackoff other(reseeded);
  // The expected jitter relation: delay = exp + Philox(seed, nonce) % base.
  const std::uint64_t exp_floor = base_config().base_ns << 2;
  EXPECT_EQ(a.delay_ns - exp_floor,
            Philox4x32::at(base_config().seed, 41) % base_config().base_ns);
  EXPECT_EQ(other.on_status(ResponseStatus::kRetryAfter, 2, 41).delay_ns -
                exp_floor,
            Philox4x32::at(reseeded.seed, 41) % reseeded.base_ns);
}

TEST(DriverBackoff, RateLimitedAndDeadlineShareTheBackoffPath) {
  const DriverBackoff policy(base_config());
  for (const ResponseStatus status :
       {ResponseStatus::kRateLimited, ResponseStatus::kDeadline}) {
    const DriverStep step = policy.on_status(status, 1, 3);
    EXPECT_EQ(step.action, DriverAction::kRetry);
    EXPECT_EQ(step.delay_ns,
              policy.on_status(ResponseStatus::kRetryAfter, 1, 3).delay_ns);
  }
}

TEST(DriverBackoff, ShedRetriesExactlyOnce) {
  const DriverBackoff policy(base_config());
  const DriverStep first = policy.on_status(ResponseStatus::kShed, 0, 0);
  EXPECT_EQ(first.action, DriverAction::kRetry);
  EXPECT_EQ(first.delay_ns, policy.config().shed_delay_ns);
  const DriverStep second = policy.on_status(ResponseStatus::kShed, 1, 0);
  EXPECT_EQ(second.action, DriverAction::kAbandon);
}

TEST(DriverBackoff, LockedOutAndDrainingAbandonImmediately) {
  const DriverBackoff policy(base_config());
  EXPECT_EQ(policy.on_status(ResponseStatus::kLockedOut, 0, 0).action,
            DriverAction::kAbandon);
  EXPECT_EQ(policy.on_status(ResponseStatus::kDraining, 0, 0).action,
            DriverAction::kAbandon);
}

TEST(DriverBackoff, RetryBudgetExhaustionAbandons) {
  const DriverBackoff policy(base_config());
  const std::uint32_t budget = policy.config().max_retries;
  EXPECT_EQ(policy.on_status(ResponseStatus::kRetryAfter, budget - 1, 0)
                .action,
            DriverAction::kRetry);
  EXPECT_EQ(policy.on_status(ResponseStatus::kRetryAfter, budget, 0).action,
            DriverAction::kAbandon);
}

TEST(DriverBackoff, ConfigValidation) {
  DriverBackoffConfig zero_base = base_config();
  zero_base.base_ns = 0;
  EXPECT_THROW(DriverBackoff{zero_base}, InvalidArgument);

  DriverBackoffConfig cap_below_base = base_config();
  cap_below_base.cap_ns = cap_below_base.base_ns - 1;
  EXPECT_THROW(DriverBackoff{cap_below_base}, InvalidArgument);
}

}  // namespace
}  // namespace pufaging::authd
