file(REMOVE_RECURSE
  "CMakeFiles/pa_common_test.dir/common/bitkernel_test.cpp.o"
  "CMakeFiles/pa_common_test.dir/common/bitkernel_test.cpp.o.d"
  "CMakeFiles/pa_common_test.dir/common/bitvector_property_test.cpp.o"
  "CMakeFiles/pa_common_test.dir/common/bitvector_property_test.cpp.o.d"
  "CMakeFiles/pa_common_test.dir/common/bitvector_test.cpp.o"
  "CMakeFiles/pa_common_test.dir/common/bitvector_test.cpp.o.d"
  "CMakeFiles/pa_common_test.dir/common/math_test.cpp.o"
  "CMakeFiles/pa_common_test.dir/common/math_test.cpp.o.d"
  "CMakeFiles/pa_common_test.dir/common/rng_test.cpp.o"
  "CMakeFiles/pa_common_test.dir/common/rng_test.cpp.o.d"
  "CMakeFiles/pa_common_test.dir/common/sha256_test.cpp.o"
  "CMakeFiles/pa_common_test.dir/common/sha256_test.cpp.o.d"
  "CMakeFiles/pa_common_test.dir/common/thread_pool_test.cpp.o"
  "CMakeFiles/pa_common_test.dir/common/thread_pool_test.cpp.o.d"
  "pa_common_test"
  "pa_common_test.pdb"
  "pa_common_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pa_common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
