// Seeded property generators for bit-level tests.
//
// Everything here is a pure function of the Xoshiro stream passed in, so a
// failing property test reproduces from its printed seed. The adversarial
// corpus concentrates on the places bit kernels historically break: length
// zero, single-word boundaries, lengths just off multiples of 64 (tail-bit
// masking), and the paper's 8192-bit pattern size.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bitvector.hpp"
#include "common/rng.hpp"

namespace pufaging::testsupport {

/// Random packed bytes for `bits` bits (the generator feeds whole 64-bit
/// draws into bytes, so every byte including the partial tail is random).
inline std::vector<std::uint8_t> random_bytes_for_bits(Xoshiro256StarStar& rng,
                                                       std::size_t bits) {
  std::vector<std::uint8_t> bytes((bits + 7) / 8);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    if (i % 8 == 0) {
      const std::uint64_t draw = rng.next();
      for (std::size_t k = 0; k < 8 && i + k < bytes.size(); ++k) {
        bytes[i + k] = static_cast<std::uint8_t>((draw >> (k * 8)) & 0xFFU);
      }
    }
  }
  return bytes;
}

/// Random BitVector of `bits` bits with ones density ~0.5.
inline BitVector random_bits(Xoshiro256StarStar& rng, std::size_t bits) {
  return BitVector::from_bytes(random_bytes_for_bits(rng, bits), bits);
}

/// Random BitVector with ones density `p` (per-bit Bernoulli draws).
inline BitVector random_bits(Xoshiro256StarStar& rng, std::size_t bits,
                             double p) {
  BitVector v(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    if (rng.bernoulli(p)) {
      v.set(i, true);
    }
  }
  return v;
}

/// Bit lengths that historically break word-packed kernels: empty, single
/// bits, word boundaries +/- 1, byte-unaligned tails, the paper's 8192-bit
/// pattern, and a few large non-multiples of 64.
inline std::vector<std::size_t> adversarial_lengths() {
  return {0,    1,    2,    7,    8,    9,    63,   64,    65,   127,
          128,  129,  191,  192,  255,  256,  257,  511,   512,  513,
          1000, 1023, 1024, 1025, 4095, 4096, 8191, 8192,  8193, 12345,
          16384, 19999, 20000};
}

/// Extreme patterns of one length: all-zero, all-one, lone bit at each
/// end, alternating phases, plus `random_count` random patterns.
inline std::vector<BitVector> adversarial_patterns(
    Xoshiro256StarStar& rng, std::size_t bits, std::size_t random_count = 3) {
  std::vector<BitVector> out;
  out.emplace_back(bits);  // all-zero
  BitVector ones(bits);
  BitVector alt0(bits);
  BitVector alt1(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    ones.set(i, true);
    alt0.set(i, i % 2 == 0);
    alt1.set(i, i % 2 == 1);
  }
  out.push_back(ones);
  out.push_back(alt0);
  out.push_back(alt1);
  if (bits > 0) {
    BitVector first(bits);
    first.set(0, true);
    out.push_back(first);
    BitVector last(bits);
    last.set(bits - 1, true);  // the tail bit the padding mask must keep
    out.push_back(last);
  }
  for (std::size_t r = 0; r < random_count; ++r) {
    out.push_back(random_bits(rng, bits));
  }
  return out;
}

/// Raw word buffer for `bits` bits whose padding bits are GARBAGE (all-one
/// beyond the valid range). Kernels that take (words, bit_count) must mask
/// this internally; feeding it to every tier checks they do so identically.
inline std::vector<std::uint64_t> words_with_dirty_tail(
    Xoshiro256StarStar& rng, std::size_t bits) {
  const std::size_t n_words = (bits + 63) / 64;
  std::vector<std::uint64_t> words(n_words);
  for (std::size_t w = 0; w < n_words; ++w) {
    words[w] = rng.next();
  }
  const std::size_t tail = bits & 63U;
  if (tail != 0 && n_words > 0) {
    words[n_words - 1] |= ~((std::uint64_t{1} << tail) - 1);  // dirty padding
  }
  return words;
}

}  // namespace pufaging::testsupport
