#include "silicon/device_factory.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace pufaging {

namespace {
// Domain-separation constants for the per-device Philox draws.
constexpr std::uint64_t kBiasStream = 0xB1A5'0000'0000'0000ULL;
constexpr std::uint64_t kNoiseStream = 0x4015'0000'0000'0000ULL;
constexpr std::uint64_t kKeyStream = 0xDE71'0000'0000'0000ULL;
}  // namespace

SramDevice make_device(const FleetConfig& config, std::uint32_t index) {
  if (index >= config.device_count) {
    throw InvalidArgument("make_device: index out of range");
  }
  DeviceConfig dev = config.device;

  // Device bias: sets this board's fractional Hamming weight.
  dev.population.device_bias =
      config.bias_mean +
      config.bias_sigma * Philox4x32::gaussian_at(config.seed ^ kBiasStream,
                                                  index);

  // Device noise multiplier: board-to-board noise spread, floored so noise
  // never collapses.
  const double mult =
      1.0 + config.noise_sigma_cv *
                Philox4x32::gaussian_at(config.seed ^ kNoiseStream, index);
  dev.noise.device_multiplier = std::max(0.5, mult);

  // Independent per-device streams split off the fleet seed with the
  // counter-based generator: derivable in any order (or from any thread)
  // with identical results, which keeps parallel campaigns bit-identical
  // to serial ones. One key drives the frozen process variation, the other
  // seeds the device's private measurement-noise stream.
  const std::uint64_t device_key = split_seed(config.seed, kKeyStream, index);
  const std::uint64_t measurement_seed =
      split_seed(config.seed, kKeyStream, index + 0x10000ULL);

  return SramDevice(index, device_key, measurement_seed, dev);
}

std::vector<SramDevice> make_fleet(const FleetConfig& config) {
  if (config.device_count == 0) {
    throw InvalidArgument("make_fleet: device_count must be > 0");
  }
  std::vector<SramDevice> fleet;
  fleet.reserve(config.device_count);
  for (std::uint32_t i = 0; i < config.device_count; ++i) {
    fleet.push_back(make_device(config, i));
  }
  return fleet;
}

FleetConfig paper_fleet_config() {
  FleetConfig config;
  config.device_count = 16;
  config.seed = 0x0208'2017'0208'2019ULL;  // test window: Feb 2017 - Feb 2019
  return config;
}

FleetConfig buskeeper_fleet_config() {
  FleetConfig config = paper_fleet_config();
  config.seed ^= 0xB05'0000ULL;
  // Buskeeper cells power up nearly unbiased (FHW ~ 50-52%) with a
  // slightly quieter decision than 6T SRAM.
  config.bias_mean = 0.03;
  config.bias_sigma = 0.03;
  config.device.population.device_bias = config.bias_mean;
  config.device.noise.sigma_at_25c = 1.0 / 20.0;
  return config;
}

FleetConfig dff_fleet_config() {
  FleetConfig config = paper_fleet_config();
  config.seed ^= 0xDFF'0000ULL;
  // D flip-flop PUFs show stronger bias and a noisier power-up than SRAM
  // ([16] measures FHW far from 50% and higher within-class HD).
  config.bias_mean = 0.60;
  config.bias_sigma = 0.08;
  config.device.population.device_bias = config.bias_mean;
  config.device.noise.sigma_at_25c = 1.0 / 12.0;
  return config;
}

}  // namespace pufaging
