// The observability clock seam.
//
// Every timestamp the metrics and tracing layers record flows through
// this interface: production code reads the host's monotonic clock
// (RealClock), while tests substitute a FakeClock whose ticks are part of
// the test fixture — so exporter output (span durations, latency
// histograms) is deterministic and can be golden-pinned byte for byte.
//
// This seam is deliberately separate from testbed/clock.hpp: that file is
// the *simulated rig time* (a model input that feeds results), this one
// is *wall time of the harness itself* (a measurement output that must
// never feed results — see DESIGN.md §11 for the determinism guarantee).
#pragma once

#include <cstdint>

namespace pufaging::obs {

/// Monotonic nanosecond clock. Implementations must never go backwards.
class MonotonicClock {
 public:
  virtual ~MonotonicClock() = default;

  /// Nanoseconds since an arbitrary fixed origin.
  virtual std::uint64_t now_ns() = 0;
};

/// The production clock: std::chrono::steady_clock. Stateless singleton.
class RealClock final : public MonotonicClock {
 public:
  static RealClock& instance();

  std::uint64_t now_ns() override;
};

/// Deterministic test clock. Starts at `start_ns` and, when `auto_step_ns`
/// is non-zero, advances by that amount *after* every reading — so a
/// sequence of span begin/end pairs yields reproducible, distinct
/// durations without any explicit advance() calls in the code under test.
class FakeClock final : public MonotonicClock {
 public:
  explicit FakeClock(std::uint64_t start_ns = 0, std::uint64_t auto_step_ns = 0)
      : now_(start_ns), auto_step_(auto_step_ns) {}

  std::uint64_t now_ns() override {
    const std::uint64_t t = now_;
    now_ += auto_step_;
    return t;
  }

  /// Moves the clock forward `ns` nanoseconds.
  void advance(std::uint64_t ns) { now_ += ns; }

 private:
  std::uint64_t now_;
  std::uint64_t auto_step_;
};

}  // namespace pufaging::obs
