# Empty compiler generated dependencies file for pa_golden_test.
# This may be replaced when dependencies are built.
