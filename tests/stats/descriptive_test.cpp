#include "stats/descriptive.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace pufaging {
namespace {

TEST(Descriptive, MeanKnown) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_THROW(mean(std::vector<double>{}), InvalidArgument);
}

TEST(Descriptive, StddevKnown) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Population sd is 2; sample sd = sqrt(32/7).
  EXPECT_NEAR(sample_stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(sample_stddev(std::vector<double>{5.0}), 0.0);
}

TEST(Descriptive, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_THROW(median(std::vector<double>{}), InvalidArgument);
}

TEST(Descriptive, Summarize) {
  const std::vector<double> xs = {5.0, 1.0, 3.0};
  const SampleSummary s = summarize(xs);
  EXPECT_EQ(s.count, 3U);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
}

TEST(GeometricMonthlyChange, MatchesPaperArithmetic) {
  // Paper Table I: WCHD 2.49% -> 2.97% over 24 months = +0.74%/month.
  const double rate = geometric_monthly_change(0.0249, 0.0297, 24);
  EXPECT_NEAR(rate, 0.0074, 2e-4);
  // Accelerated [5]: 5.3% -> 7.2% = +1.28%/month.
  EXPECT_NEAR(geometric_monthly_change(0.053, 0.072, 24), 0.0128, 2e-4);
}

TEST(GeometricMonthlyChange, InverseProperty) {
  const double rate = geometric_monthly_change(2.0, 3.0, 10);
  EXPECT_NEAR(2.0 * std::pow(1.0 + rate, 10), 3.0, 1e-9);
  EXPECT_THROW(geometric_monthly_change(0.0, 1.0, 5), InvalidArgument);
  EXPECT_THROW(geometric_monthly_change(1.0, 2.0, 0), InvalidArgument);
}

TEST(RunningStats, MatchesBatch) {
  Xoshiro256StarStar rng(11);
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.gaussian(3.0, 2.0);
    xs.push_back(x);
    rs.add(x);
  }
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(rs.stddev(), sample_stddev(xs), 1e-9);
  EXPECT_DOUBLE_EQ(rs.min(), *std::min_element(xs.begin(), xs.end()));
  EXPECT_DOUBLE_EQ(rs.max(), *std::max_element(xs.begin(), xs.end()));
}

TEST(RunningStats, EmptyThrows) {
  RunningStats rs;
  EXPECT_THROW(rs.mean(), InvalidArgument);
  EXPECT_THROW(rs.min(), InvalidArgument);
  EXPECT_THROW(rs.max(), InvalidArgument);
  rs.add(1.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

}  // namespace
}  // namespace pufaging
