#include "keygen/leakage.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/error.hpp"
#include "keygen/debias.hpp"
#include "keygen/golay.hpp"
#include "keygen/repetition.hpp"
#include "silicon/device_factory.hpp"

namespace pufaging {
namespace {

TEST(Leakage, EntropyDeficit) {
  EXPECT_DOUBLE_EQ(bias_entropy_deficit(0.5), 0.0);
  EXPECT_NEAR(bias_entropy_deficit(0.627), 0.0471, 0.001);
  EXPECT_DOUBLE_EQ(bias_entropy_deficit(1.0), 1.0);
  EXPECT_DOUBLE_EQ(bias_entropy_deficit(0.3), bias_entropy_deficit(0.7));
}

TEST(Leakage, CodeOffsetBudget) {
  GolayCode golay;
  // Unbiased source: zero leakage, full 12 secret bits.
  EXPECT_DOUBLE_EQ(code_offset_leakage_bits(golay, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(residual_secret_bits(golay, 0.5), 12.0);
  // At the paper's bias, the 12 syndrome bits of Golay(24,12) still cover
  // the deficit (24 * 0.048 ~ 1.2 < 12): no certified leak.
  EXPECT_DOUBLE_EQ(code_offset_leakage_bits(golay, 0.627), 0.0);
  // A rate-1 "code" (no syndrome allowance) leaks the full deficit.
  RepetitionCode rep1(1);
  EXPECT_NEAR(code_offset_leakage_bits(rep1, 0.627), 0.0471, 0.001);
  // Extreme bias overwhelms even Golay's syndrome allowance.
  EXPECT_GT(code_offset_leakage_bits(golay, 0.99), 0.0);
  EXPECT_LT(residual_secret_bits(golay, 0.99), 12.0);
}

TEST(Leakage, RepetitionAttackTheoryMatchesMonteCarlo) {
  Xoshiro256StarStar rng(120);
  for (double bias : {0.5, 0.6, 0.627, 0.75}) {
    for (std::size_t n : {3UL, 5UL, 7UL}) {
      const double theory = repetition_bias_attack_theory(n, bias);
      const double observed =
          repetition_bias_attack_success(n, bias, 20000, rng);
      EXPECT_NEAR(observed, theory, 0.015)
          << "n=" << n << " bias=" << bias;
    }
  }
}

TEST(Leakage, UnbiasedSourceGivesNoAdvantage) {
  Xoshiro256StarStar rng(121);
  EXPECT_NEAR(repetition_bias_attack_success(5, 0.5, 20000, rng), 0.5,
              0.02);
  EXPECT_DOUBLE_EQ(repetition_bias_attack_theory(5, 0.5),
                   repetition_bias_attack_theory(5, 0.5));
}

TEST(Leakage, PaperBiasLeaksMostOfTheRepetitionSecret) {
  // The CHES'15 motivation: on a 62.7%-biased response a repetition-5
  // code-offset secret bit is recoverable ~73% of the time from public
  // helper data alone.
  const double theory = repetition_bias_attack_theory(5, 0.627);
  EXPECT_GT(theory, 0.70);
  EXPECT_LT(theory, 0.80);
  // Longer repetition amplifies the leak (more bias evidence per bit).
  EXPECT_GT(repetition_bias_attack_theory(11, 0.627), theory);
}

TEST(Leakage, DebiasingRemovesTheAttackSurface) {
  // Debias a real (biased) device response; the attack on the debiased
  // bits degenerates to a coin flip because their bias is ~0.5.
  SramDevice device = make_device(paper_fleet_config(), 6);
  const BitVector raw = device.measure();
  const DebiasResult debiased = von_neumann_enroll(raw);
  const double debiased_bias = debiased.debiased.fractional_weight();
  EXPECT_NEAR(debiased_bias, 0.5, 0.03);
  EXPECT_LT(repetition_bias_attack_theory(5, debiased_bias), 0.55);
  // The raw response, by contrast, is attackable.
  EXPECT_GT(repetition_bias_attack_theory(5, raw.fractional_weight()),
            0.68);
}

TEST(Leakage, Validation) {
  Xoshiro256StarStar rng(122);
  EXPECT_THROW(repetition_bias_attack_success(4, 0.6, 100, rng),
               InvalidArgument);
  EXPECT_THROW(repetition_bias_attack_success(5, 0.6, 0, rng),
               InvalidArgument);
  EXPECT_THROW(repetition_bias_attack_theory(2, 0.6), InvalidArgument);
}

}  // namespace
}  // namespace pufaging
