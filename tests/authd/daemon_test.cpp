// Deterministic chaos suite for the sans-IO daemon core: torn frames,
// request floods, impostor storms, stalled readers and half-open
// connections, all under a FakeClock. The headline assertions are the
// robustness contract — the queue never exceeds its cap, every request
// gets a typed answer, decisions are SHA-256 bit-identical to driving
// AuthService directly, and a drain loses zero accepted requests.
#include "authd/daemon.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "auth/fleet_sim.hpp"
#include "auth/registry.hpp"
#include "auth/service.hpp"
#include "common/sha256.hpp"
#include "obs/clock.hpp"
#include "store/faultfs.hpp"

namespace pufaging::authd {
namespace {

constexpr std::uint64_t kMs = 1'000'000;
constexpr std::uint64_t kStart = 1'000'000'000;
constexpr std::uint64_t kDevices = 8;

struct Harness {
  auth::VirtualFleet fleet;
  auth::AuthService service;
  obs::FakeClock clock{kStart};

  explicit Harness(std::uint32_t blocks = 11)
      : fleet(fleet_config(blocks), kDevices), service(service_config(blocks)) {
    for (std::uint64_t id = 0; id < kDevices; ++id) {
      service.enroll(id, fleet.enrollment_response(id));
    }
  }

  static auth::VirtualFleetConfig fleet_config(std::uint32_t blocks) {
    auth::VirtualFleetConfig config;
    config.seed = 0xDAEC0DE;
    config.window_bits = static_cast<std::size_t>(blocks) * 24;
    return config;
  }

  static auth::AuthServiceConfig service_config(std::uint32_t blocks) {
    auth::AuthServiceConfig config;
    config.blocks = blocks;
    return config;
  }

  /// Permissive daemon config: chaos tests tighten what they probe.
  DaemonConfig daemon_config() {
    DaemonConfig config;
    config.clock = &clock;
    config.rate.burst = 0;            // Rate limiting off by default.
    config.lockout.retry_budget = 100;  // Lockouts effectively off.
    return config;
  }

  AuthRequestMsg genuine(std::uint64_t device, std::uint64_t request_id) {
    AuthRequestMsg msg;
    msg.request_id = request_id;
    msg.device_id = device;
    msg.response = fleet.enrollment_response(device).words();
    return msg;
  }

  AuthRequestMsg impostor(std::uint64_t claimed, std::uint64_t request_id) {
    AuthRequestMsg msg = genuine(claimed, request_id);
    // An un-enrolled silicon read claiming an enrolled identity.
    msg.response = fleet.enrollment_response(kDevices + request_id).words();
    return msg;
  }
};

/// Drains one connection's output into parsed responses.
std::vector<AuthResponseMsg> read_responses(AuthDaemon& daemon,
                                            AuthDaemon::ConnId conn) {
  std::vector<AuthResponseMsg> out;
  FrameReader reader;
  const std::string_view bytes = daemon.output(conn);
  reader.feed(bytes);
  while (const std::optional<Frame> frame = reader.next()) {
    out.push_back(parse_auth_response(*frame));
  }
  daemon.consume_output(conn, bytes.size());
  return out;
}

void pump_dry(AuthDaemon& daemon) {
  while (daemon.queue_depth() > 0) {
    daemon.pump();
  }
}

TEST(AuthDaemon, DecisionsBitIdenticalToDirectServiceCalls) {
  Harness h;
  AuthDaemon daemon(h.service, h.daemon_config());
  const AuthDaemon::ConnId conn = daemon.open_connection();
  ASSERT_NE(conn, 0U);

  // A mixed corpus: genuine reads for every device plus impostors.
  std::vector<AuthRequestMsg> corpus;
  for (std::uint64_t i = 0; i < 24; ++i) {
    corpus.push_back(i % 3 == 2 ? h.impostor(i % kDevices, i)
                                : h.genuine(i % kDevices, i));
  }
  for (const AuthRequestMsg& msg : corpus) {
    daemon.on_bytes(conn, encode_auth_request(msg));
  }
  pump_dry(daemon);

  // Reference: the same requests, same order, straight into the service.
  std::vector<auth::AuthRequest> requests;
  std::vector<auth::AuthDecision> decisions(corpus.size());
  for (const AuthRequestMsg& msg : corpus) {
    requests.push_back({msg.device_id, msg.response.data()});
  }
  h.service.authenticate_batch(requests.data(), requests.size(),
                               decisions.data());
  Sha256 reference;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    std::uint8_t witness[9];
    for (int b = 0; b < 8; ++b) {
      witness[b] =
          static_cast<std::uint8_t>(corpus[i].device_id >> (8 * b));
    }
    witness[8] = static_cast<std::uint8_t>(decisions[i]);
    reference.update(witness, sizeof witness);
  }
  EXPECT_EQ(daemon.decisions_sha256(),
            Sha256::to_hex(reference.finalize()));

  const std::vector<AuthResponseMsg> responses = read_responses(daemon, conn);
  ASSERT_EQ(responses.size(), corpus.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    EXPECT_EQ(responses[i].request_id, corpus[i].request_id);
    EXPECT_EQ(responses[i].status, ResponseStatus::kDecision);
    EXPECT_EQ(responses[i].decision,
              static_cast<std::uint8_t>(decisions[i]));
  }
}

TEST(AuthDaemon, TornFramesAcrossArbitrarySplitsStillDecide) {
  Harness h;
  AuthDaemon daemon(h.service, h.daemon_config());
  const AuthDaemon::ConnId conn = daemon.open_connection();
  const std::string bytes = encode_auth_request(h.genuine(3, 42));
  // Feed every split point, one byte pair at a time across two requests.
  for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
    daemon.on_bytes(conn, std::string_view(bytes).substr(0, cut));
    daemon.on_bytes(conn, std::string_view(bytes).substr(cut));
  }
  pump_dry(daemon);
  const std::vector<AuthResponseMsg> responses = read_responses(daemon, conn);
  ASSERT_EQ(responses.size(), bytes.size() - 1);
  for (const AuthResponseMsg& r : responses) {
    EXPECT_EQ(r.status, ResponseStatus::kDecision);
    EXPECT_EQ(r.decision,
              static_cast<std::uint8_t>(auth::AuthDecision::kAccept));
  }
}

TEST(AuthDaemon, FloodIsBoundedAndAnsweredWithTypedBackpressure) {
  Harness h;
  DaemonConfig config = h.daemon_config();
  config.queue_cap = 16;
  config.shed_watermark = 0.5;
  AuthDaemon daemon(h.service, config);
  const AuthDaemon::ConnId conn = daemon.open_connection();

  for (std::uint64_t i = 0; i < 200; ++i) {
    daemon.on_bytes(conn, encode_auth_request(h.genuine(i % kDevices, i)));
    ASSERT_LE(daemon.queue_depth(), config.queue_cap);  // The hard bound.
  }
  const DaemonStats stats = daemon.stats();
  EXPECT_EQ(stats.admitted + stats.shed + stats.retry_after, 200U);
  EXPECT_GT(stats.shed, 0U);         // Graceful degradation band hit...
  EXPECT_GT(stats.retry_after, 0U);  // ...and the hard cap beyond it.

  pump_dry(daemon);
  // Every single request got exactly one typed response.
  EXPECT_EQ(read_responses(daemon, conn).size(), 200U);
}

TEST(AuthDaemon, ExpiredRequestsAnswerDeadlineNeverDecideLate) {
  Harness h;
  DaemonConfig config = h.daemon_config();
  config.request_deadline_ns = 10 * kMs;
  AuthDaemon daemon(h.service, config);
  const AuthDaemon::ConnId conn = daemon.open_connection();
  daemon.on_bytes(conn, encode_auth_request(h.genuine(0, 1)));
  daemon.on_bytes(conn, encode_auth_request(h.genuine(1, 2)));
  h.clock.advance(11 * kMs);
  daemon.on_bytes(conn, encode_auth_request(h.genuine(2, 3)));
  EXPECT_EQ(daemon.pump(), 1U);  // Only the fresh request decides.

  const std::vector<AuthResponseMsg> responses = read_responses(daemon, conn);
  ASSERT_EQ(responses.size(), 3U);
  EXPECT_EQ(responses[0].status, ResponseStatus::kDeadline);
  EXPECT_EQ(responses[1].status, ResponseStatus::kDeadline);
  EXPECT_EQ(responses[2].status, ResponseStatus::kDecision);
  EXPECT_EQ(daemon.stats().deadline_expired, 2U);
}

TEST(AuthDaemon, GarbageBytesCloseOnlyTheOffendingConnection) {
  Harness h;
  AuthDaemon daemon(h.service, h.daemon_config());
  const AuthDaemon::ConnId bad = daemon.open_connection();
  const AuthDaemon::ConnId good = daemon.open_connection();
  daemon.on_bytes(bad, "complete garbage, definitely not PAD1 framing");
  EXPECT_TRUE(daemon.wants_close(bad));
  EXPECT_EQ(daemon.close_reason(bad), CloseReason::kProtocolError);
  EXPECT_EQ(daemon.stats().protocol_errors, 1U);

  daemon.on_bytes(good, encode_auth_request(h.genuine(1, 7)));
  pump_dry(daemon);
  EXPECT_FALSE(daemon.wants_close(good));
  EXPECT_EQ(read_responses(daemon, good).size(), 1U);
}

TEST(AuthDaemon, GeometryMismatchIsAProtocolError) {
  Harness h;
  AuthDaemon daemon(h.service, h.daemon_config());
  const AuthDaemon::ConnId conn = daemon.open_connection();
  AuthRequestMsg wrong = h.genuine(0, 1);
  wrong.response.push_back(0);  // One word too many for this geometry.
  daemon.on_bytes(conn, encode_auth_request(wrong));
  EXPECT_TRUE(daemon.wants_close(conn));
  EXPECT_EQ(daemon.close_reason(conn), CloseReason::kProtocolError);
}

TEST(AuthDaemon, HalfOpenConnectionStillDecidesButDropsResponses) {
  Harness h;
  AuthDaemon daemon(h.service, h.daemon_config());
  const AuthDaemon::ConnId conn = daemon.open_connection();
  daemon.on_bytes(conn, encode_auth_request(h.genuine(0, 1)));
  daemon.close_connection(conn);  // Peer vanished before the answer.
  const std::string witness_before = daemon.decisions_sha256();
  pump_dry(daemon);
  const DaemonStats stats = daemon.stats();
  EXPECT_EQ(stats.decided, 1U);  // Admission was acknowledged: it counts.
  EXPECT_EQ(stats.responses_dropped, 1U);
  EXPECT_NE(daemon.decisions_sha256(), witness_before);
}

TEST(AuthDaemon, SlowReaderHitsOutputCapAndIsReaped) {
  Harness h;
  DaemonConfig config = h.daemon_config();
  config.output_buffer_cap = 128;  // Roughly three response frames.
  AuthDaemon daemon(h.service, config);
  const AuthDaemon::ConnId conn = daemon.open_connection();
  for (std::uint64_t i = 0; i < 16; ++i) {
    daemon.on_bytes(conn, encode_auth_request(h.genuine(0, i)));
  }
  pump_dry(daemon);  // Responses accumulate; nobody consumes output.
  EXPECT_TRUE(daemon.wants_close(conn));
  EXPECT_EQ(daemon.close_reason(conn), CloseReason::kOutputOverflow);
  EXPECT_LE(daemon.output(conn).size(), config.output_buffer_cap);
}

TEST(AuthDaemon, WriteStallWithoutProgressIsReaped) {
  Harness h;
  DaemonConfig config = h.daemon_config();
  config.write_stall_ns = 50 * kMs;
  AuthDaemon daemon(h.service, config);
  const AuthDaemon::ConnId conn = daemon.open_connection();
  daemon.on_bytes(conn, encode_auth_request(h.genuine(0, 1)));
  pump_dry(daemon);
  EXPECT_FALSE(daemon.wants_close(conn));
  h.clock.advance(51 * kMs);
  daemon.pump();  // The reap sweep rides every pump.
  EXPECT_TRUE(daemon.wants_close(conn));
  EXPECT_EQ(daemon.close_reason(conn), CloseReason::kWriteStall);
  EXPECT_EQ(daemon.stats().reaped, 1U);
}

TEST(AuthDaemon, IdleConnectionsAreReapedWhenConfigured) {
  Harness h;
  DaemonConfig config = h.daemon_config();
  config.idle_timeout_ns = 1000 * kMs;
  AuthDaemon daemon(h.service, config);
  const AuthDaemon::ConnId conn = daemon.open_connection();
  h.clock.advance(1001 * kMs);
  daemon.pump();
  EXPECT_TRUE(daemon.wants_close(conn));
  EXPECT_EQ(daemon.close_reason(conn), CloseReason::kIdle);
}

TEST(AuthDaemon, ConnectionLimitRefusesBeyondCap) {
  Harness h;
  DaemonConfig config = h.daemon_config();
  config.max_connections = 2;
  AuthDaemon daemon(h.service, config);
  EXPECT_NE(daemon.open_connection(), 0U);
  EXPECT_NE(daemon.open_connection(), 0U);
  EXPECT_EQ(daemon.open_connection(), 0U);
}

TEST(AuthDaemon, RateLimiterAnswersTypedWithRetryTime) {
  Harness h;
  DaemonConfig config = h.daemon_config();
  config.rate.burst = 2;
  config.rate.tokens_per_sec = 10.0;
  AuthDaemon daemon(h.service, config);
  const AuthDaemon::ConnId conn = daemon.open_connection();
  for (std::uint64_t i = 0; i < 3; ++i) {
    daemon.on_bytes(conn, encode_auth_request(h.genuine(0, i)));
  }
  pump_dry(daemon);
  // The refusal is written at admission time, so it precedes the two
  // decisions in the output stream.
  const std::vector<AuthResponseMsg> responses = read_responses(daemon, conn);
  ASSERT_EQ(responses.size(), 3U);
  EXPECT_EQ(responses[0].request_id, 2U);
  EXPECT_EQ(responses[0].status, ResponseStatus::kRateLimited);
  EXPECT_GT(responses[0].retry_at_ns, kStart);
  // A different device id is not throttled by device 0's bucket.
  daemon.on_bytes(conn, encode_auth_request(h.genuine(1, 9)));
  EXPECT_EQ(daemon.stats().rate_limited, 1U);
}

TEST(AuthDaemon, ImpostorStormWalksLockoutThenBackedOffProbe) {
  Harness h;
  DaemonConfig config = h.daemon_config();
  config.lockout.retry_budget = 3;
  config.lockout.base_lockout_ns = 1000 * kMs;
  config.lockout.max_level = 4;
  AuthDaemon daemon(h.service, config);
  const AuthDaemon::ConnId conn = daemon.open_connection();

  std::uint64_t request_id = 0;
  // Three wrong reads against device 2: the ladder locks it.
  for (int i = 0; i < 3; ++i) {
    daemon.on_bytes(conn, encode_auth_request(h.impostor(2, ++request_id)));
    pump_dry(daemon);
  }
  ASSERT_NE(daemon.lockouts().check(2, h.clock.now_ns()), 0U);
  read_responses(daemon, conn);

  // While locked, even a genuine read is refused with the expiry time.
  daemon.on_bytes(conn, encode_auth_request(h.genuine(2, ++request_id)));
  std::vector<AuthResponseMsg> responses = read_responses(daemon, conn);
  ASSERT_EQ(responses.size(), 1U);
  EXPECT_EQ(responses[0].status, ResponseStatus::kLockedOut);
  EXPECT_GT(responses[0].retry_at_ns, h.clock.now_ns());
  EXPECT_EQ(daemon.stats().locked_out, 1U);

  // Past expiry the device is in probe: a genuine read resets it fully.
  h.clock.advance(1001 * kMs);
  daemon.on_bytes(conn, encode_auth_request(h.genuine(2, ++request_id)));
  pump_dry(daemon);
  responses = read_responses(daemon, conn);
  ASSERT_EQ(responses.size(), 1U);
  EXPECT_EQ(responses[0].status, ResponseStatus::kDecision);
  EXPECT_EQ(responses[0].decision,
            static_cast<std::uint8_t>(auth::AuthDecision::kAccept));
  EXPECT_EQ(daemon.lockouts().tracked(), 0U);  // Accept cleared the entry.
}

TEST(AuthDaemon, DrainLosesZeroAcceptedRequestsAndPublishesState) {
  Harness h;
  DaemonConfig config = h.daemon_config();
  config.lockout.retry_budget = 2;
  AuthDaemon daemon(h.service, config);

  FaultFs fs;
  MeasurementStore lockout_store(fs, "lockouts", StoreOptions{});
  MeasurementStore registry_store(fs, "registry", StoreOptions{});
  publish_lockouts(lockout_store, LockoutLadder(config.lockout));
  daemon.attach_lockout_store(&lockout_store);
  daemon.attach_registry_store(&registry_store);

  const AuthDaemon::ConnId conn = daemon.open_connection();
  for (std::uint64_t i = 0; i < 10; ++i) {
    daemon.on_bytes(conn, encode_auth_request(h.genuine(i % kDevices, i)));
  }
  daemon.on_bytes(conn, encode_auth_request(h.impostor(5, 90)));
  daemon.on_bytes(conn, encode_auth_request(h.impostor(5, 91)));
  const std::uint64_t accepted = daemon.stats().admitted;

  daemon.begin_drain();
  // New work is refused with a typed status...
  daemon.on_bytes(conn, encode_auth_request(h.genuine(0, 99)));
  EXPECT_EQ(daemon.stats().draining_rejected, 1U);
  // ...and new connections are refused outright.
  EXPECT_EQ(daemon.open_connection(), 0U);

  const DaemonStats stats = daemon.finish_drain();
  EXPECT_EQ(stats.decided, accepted);  // Zero accepted requests lost.
  EXPECT_EQ(stats.queue_depth, 0U);
  EXPECT_TRUE(daemon.queue_flushed());

  // The durable snapshots match the live state bit for bit.
  lockout_store.close();
  registry_store.close();
  MeasurementStore reopened(fs, "lockouts", StoreOptions{});
  EXPECT_EQ(load_lockouts(reopened, config.lockout).state_hash(),
            daemon.lockouts().state_hash());
  EXPECT_GT(daemon.lockouts().tracked(), 0U);  // The storm left a mark.
  MeasurementStore registry_reopened(fs, "registry", StoreOptions{});
  EXPECT_EQ(auth::load_registry(registry_reopened, 11).size(), kDevices);

  // finish_drain is idempotent.
  EXPECT_EQ(daemon.finish_drain().decided, accepted);
}

TEST(AuthDaemon, RestartRecoversLockoutLadderBitIdentically) {
  Harness h;
  DaemonConfig config = h.daemon_config();
  config.lockout.retry_budget = 2;
  FaultFs fs;

  std::string hash_before;
  {
    MeasurementStore store(fs, "lockouts", StoreOptions{});
    publish_lockouts(store, LockoutLadder(config.lockout));
    AuthDaemon daemon(h.service, config);
    daemon.attach_lockout_store(&store);
    const AuthDaemon::ConnId conn = daemon.open_connection();
    for (std::uint64_t i = 0; i < 6; ++i) {
      daemon.on_bytes(conn, encode_auth_request(h.impostor(i % 3, i)));
    }
    pump_dry(daemon);
    daemon.finish_drain();
    hash_before = daemon.lockouts().state_hash();
    store.close();
  }
  ASSERT_NE(hash_before, LockoutLadder(config.lockout).state_hash());

  MeasurementStore store(fs, "lockouts", StoreOptions{});
  AuthDaemon restarted(h.service, config);
  restarted.adopt_lockouts(load_lockouts(store, config.lockout));
  EXPECT_EQ(restarted.lockouts().state_hash(), hash_before);
}

TEST(AuthDaemon, MetricsExportTheFullLifecycle) {
  Harness h;
  obs::MetricsRegistry metrics;
  DaemonConfig config = h.daemon_config();
  config.metrics = &metrics;
  AuthDaemon daemon(h.service, config);
  const AuthDaemon::ConnId conn = daemon.open_connection();
  daemon.on_bytes(conn, encode_auth_request(h.genuine(0, 1)));
  pump_dry(daemon);
  daemon.begin_drain();
  daemon.finish_drain();

  const obs::MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.counters.at("authd.admitted"), 1U);
  EXPECT_EQ(snap.counters.at("authd.decided"), 1U);
  EXPECT_EQ(snap.counters.at("authd.conn.opened"), 1U);
  EXPECT_EQ(snap.counters.at("authd.drain_finished"), 1U);
  EXPECT_EQ(snap.histograms.count("authd.batch_size"), 1U);
}

}  // namespace
}  // namespace pufaging::authd
