#include "common/math.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace pufaging {
namespace {

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-10);
  EXPECT_NEAR(normal_cdf(-1.0), 1.0 - 0.8413447460685429, 1e-10);
  EXPECT_NEAR(normal_cdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(normal_cdf(-6.0), 9.865876e-10, 1e-12);
}

TEST(NormalCdf, Symmetry) {
  for (double x = 0.0; x < 5.0; x += 0.37) {
    EXPECT_NEAR(normal_cdf(x) + normal_cdf(-x), 1.0, 1e-12);
  }
}

TEST(NormalQuantile, InvertsCdf) {
  for (double p = 0.0005; p < 1.0; p += 0.0131) {
    const double x = normal_quantile(p);
    EXPECT_NEAR(normal_cdf(x), p, 1e-9) << "p=" << p;
  }
}

TEST(NormalQuantile, KnownValuesAndErrors) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963985, 1e-6);
  EXPECT_THROW(normal_quantile(0.0), InvalidArgument);
  EXPECT_THROW(normal_quantile(1.0), InvalidArgument);
  EXPECT_THROW(normal_quantile(-0.1), InvalidArgument);
}

TEST(GammaFunctions, ComplementaryPair) {
  for (double a : {0.5, 1.0, 2.5, 7.0, 20.0}) {
    for (double x : {0.1, 1.0, 5.0, 30.0}) {
      EXPECT_NEAR(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(GammaFunctions, KnownChiSquare) {
  // Chi-square CDF with k dof = gamma_p(k/2, x/2).
  // Known: chi2 with 1 dof at x=3.841 -> 0.95.
  EXPECT_NEAR(gamma_p(0.5, 3.841458821 / 2.0), 0.95, 1e-6);
  // chi2 with 5 dof at x=11.0705 -> 0.95.
  EXPECT_NEAR(gamma_p(2.5, 11.0705 / 2.0), 0.95, 1e-5);
  // P(a, 0) = 0, Q(a, 0) = 1.
  EXPECT_DOUBLE_EQ(gamma_p(3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(gamma_q(3.0, 0.0), 1.0);
}

TEST(GammaFunctions, ExponentialSpecialCase) {
  // For a = 1, P(1, x) = 1 - exp(-x).
  for (double x : {0.1, 0.5, 1.0, 2.0, 10.0}) {
    EXPECT_NEAR(gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
}

TEST(GammaFunctions, Preconditions) {
  EXPECT_THROW(gamma_p(0.0, 1.0), InvalidArgument);
  EXPECT_THROW(gamma_p(1.0, -1.0), InvalidArgument);
  EXPECT_THROW(gamma_q(-2.0, 1.0), InvalidArgument);
}

TEST(LogBinomial, KnownValues) {
  EXPECT_NEAR(log_binomial(5, 2), std::log(10.0), 1e-12);
  EXPECT_NEAR(log_binomial(10, 0), 0.0, 1e-12);
  EXPECT_NEAR(log_binomial(10, 10), 0.0, 1e-12);
  EXPECT_NEAR(log_binomial(52, 5), std::log(2598960.0), 1e-9);
  EXPECT_THROW(log_binomial(3, 4), InvalidArgument);
}

TEST(BinomialSf, MatchesDirectSummation) {
  // n=10, p=0.3, k=4: Pr(X >= 4).
  double direct = 0.0;
  for (int i = 4; i <= 10; ++i) {
    direct += std::exp(log_binomial(10, static_cast<std::uint64_t>(i))) *
              std::pow(0.3, i) * std::pow(0.7, 10 - i);
  }
  EXPECT_NEAR(binomial_sf(10, 0.3, 4), direct, 1e-12);
}

TEST(BinomialSf, EdgeCases) {
  EXPECT_DOUBLE_EQ(binomial_sf(10, 0.5, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_sf(10, 0.5, 11), 0.0);
  EXPECT_DOUBLE_EQ(binomial_sf(10, 0.0, 1), 0.0);
  EXPECT_DOUBLE_EQ(binomial_sf(10, 1.0, 10), 1.0);
  EXPECT_THROW(binomial_sf(10, 1.5, 2), InvalidArgument);
}

TEST(BinomialSf, MonotonicInThreshold) {
  double prev = 1.0;
  for (std::uint64_t k = 0; k <= 20; ++k) {
    const double v = binomial_sf(20, 0.4, k);
    EXPECT_LE(v, prev + 1e-15);
    prev = v;
  }
}

TEST(MinEntropy, Properties) {
  EXPECT_DOUBLE_EQ(binary_min_entropy(0.5), 1.0);
  EXPECT_DOUBLE_EQ(binary_min_entropy(0.0), 0.0);
  EXPECT_DOUBLE_EQ(binary_min_entropy(1.0), 0.0);
  EXPECT_DOUBLE_EQ(binary_min_entropy(0.2), binary_min_entropy(0.8));
  EXPECT_NEAR(binary_min_entropy(0.75), -std::log2(0.75), 1e-12);
  EXPECT_THROW(binary_min_entropy(-0.1), InvalidArgument);
  EXPECT_THROW(binary_min_entropy(1.1), InvalidArgument);
}

TEST(ShannonEntropy, Properties) {
  EXPECT_DOUBLE_EQ(binary_shannon_entropy(0.5), 1.0);
  EXPECT_DOUBLE_EQ(binary_shannon_entropy(0.0), 0.0);
  EXPECT_DOUBLE_EQ(binary_shannon_entropy(1.0), 0.0);
  EXPECT_DOUBLE_EQ(binary_shannon_entropy(0.3), binary_shannon_entropy(0.7));
  // Shannon entropy upper-bounds min-entropy.
  for (double p = 0.05; p < 1.0; p += 0.05) {
    EXPECT_GE(binary_shannon_entropy(p) + 1e-12, binary_min_entropy(p));
  }
  EXPECT_THROW(binary_shannon_entropy(2.0), InvalidArgument);
}

}  // namespace
}  // namespace pufaging
