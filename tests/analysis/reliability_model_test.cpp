#include "analysis/reliability_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/one_probability.hpp"
#include "common/error.hpp"
#include "common/math.hpp"
#include "common/rng.hpp"
#include "silicon/device_factory.hpp"

namespace pufaging {
namespace {

TEST(ReliabilityModel, ClosedFormBias) {
  // E[Phi(l1 u + l2)] = Phi(l2 / sqrt(1 + l1^2)) exactly.
  for (double l1 : {0.5, 2.0, 10.0, 17.5}) {
    for (double l2 : {-3.0, 0.0, 2.0, 5.7}) {
      const ReliabilityModel m{l1, l2};
      EXPECT_NEAR(m.expected_bias(),
                  normal_cdf(l2 / std::sqrt(1.0 + l1 * l1)), 1e-6)
          << "l1=" << l1 << " l2=" << l2;
    }
  }
}

TEST(ReliabilityModel, UnbiasedSymmetry) {
  const ReliabilityModel m{5.0, 0.0};
  EXPECT_NEAR(m.expected_bias(), 0.5, 1e-9);
  // Stable fraction decreases with more measurements.
  EXPECT_GT(m.expected_stable_fraction(10), m.expected_stable_fraction(100));
  EXPECT_GT(m.expected_stable_fraction(100),
            m.expected_stable_fraction(1000));
}

TEST(ReliabilityModel, NoiseDominatedVsProcessDominated) {
  // Small lambda1 = noisy cells: huge WCHD, no stable cells.
  const ReliabilityModel noisy{0.2, 0.0};
  const ReliabilityModel quiet{30.0, 0.0};
  EXPECT_GT(noisy.expected_wchd(), 0.3);
  EXPECT_LT(quiet.expected_wchd(), 0.02);
  EXPECT_LT(noisy.expected_stable_fraction(1000), 0.01);
  EXPECT_GT(quiet.expected_stable_fraction(1000), 0.9);
}

TEST(ReliabilityModel, MajorityVotingImprovesReference) {
  const ReliabilityModel m{17.5, 5.7};
  const double one_shot = m.expected_error_vs_voted_reference(1);
  const double voted = m.expected_error_vs_voted_reference(9);
  // One-shot reference equals the WCHD definition.
  EXPECT_NEAR(one_shot, m.expected_wchd(), 1e-9);
  EXPECT_LT(voted, one_shot);
  EXPECT_THROW(m.expected_error_vs_voted_reference(2), InvalidArgument);
}

TEST(ReliabilityModel, FitRecoversKnownParameters) {
  // Sample one-probabilities from a known model, estimate them with 1000
  // Bernoulli draws each, and fit.
  const ReliabilityModel truth{17.5, 5.7};
  Xoshiro256StarStar rng(80);
  constexpr std::size_t kCells = 20000;
  constexpr std::size_t kMeasurements = 1000;
  std::vector<double> p_hat(kCells);
  for (std::size_t i = 0; i < kCells; ++i) {
    const double p = normal_cdf(truth.lambda1 * rng.gaussian() +
                                truth.lambda2);
    std::uint32_t ones = 0;
    // Draw the estimate directly: Binomial(1000, p) via normal approx is
    // not exact enough at the extremes; draw honestly but cheaply.
    const std::uint64_t threshold = bernoulli_threshold(p);
    for (std::size_t m = 0; m < kMeasurements; ++m) {
      ones += rng.bernoulli_u64(threshold) ? 1U : 0U;
    }
    p_hat[i] = static_cast<double>(ones) / kMeasurements;
  }
  const ReliabilityObservation obs =
      summarize_one_probabilities(p_hat, kMeasurements);
  const ReliabilityModel fitted = fit_reliability_model(obs);
  EXPECT_NEAR(fitted.lambda1, truth.lambda1, 0.15 * truth.lambda1);
  EXPECT_NEAR(fitted.lambda2, truth.lambda2, 0.15 * truth.lambda2);
}

TEST(ReliabilityModel, FitPredictsUnseenMetricsOfADevice) {
  // Characterize a simulated device, fit the model on (bias, WCHD,
  // stable), then check it predicts a metric it never saw: noise entropy.
  SramDevice device = make_device(paper_fleet_config(), 3);
  OneProbabilityAccumulator acc(device.puf_window_bits());
  constexpr std::size_t kMeasurements = 500;
  for (std::size_t i = 0; i < kMeasurements; ++i) {
    acc.add(device.measure());
  }
  const ReliabilityObservation obs = summarize_one_probabilities(
      acc.one_probabilities(), kMeasurements);
  const ReliabilityModel fitted = fit_reliability_model(obs);
  EXPECT_NEAR(fitted.expected_noise_entropy(), acc.noise_min_entropy(),
              0.006);
  // And the fitted process-to-noise ratio should sit near the generating
  // configuration (sigma_pv/sigma_n ~ 17.5, modulo the device multiplier).
  EXPECT_GT(fitted.lambda1, 12.0);
  EXPECT_LT(fitted.lambda1, 24.0);
}

TEST(ReliabilityModel, FitValidation) {
  ReliabilityObservation degenerate;
  degenerate.measurements = 100;
  degenerate.mean_p = 0.5;
  degenerate.mean_wchd = 0.0;  // no noise at all
  degenerate.stable_fraction = 1.0;
  EXPECT_THROW(fit_reliability_model(degenerate), InvalidArgument);
  EXPECT_THROW(summarize_one_probabilities({}, 10), InvalidArgument);
}

}  // namespace
}  // namespace pufaging
