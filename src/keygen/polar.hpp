// Polar codes with successive-cancellation decoding.
//
// The paper's reference [13] (Chen, Ignatenko, Willems, Maes, van der
// Sluis, Selimis, "A Robust SRAM-PUF Key Generation Scheme Based on Polar
// Codes", GLOBECOM 2017) builds its key generator on a polar code able to
// absorb bit error rates up to ~25%. This module provides that code as a
// drop-in BlockCode for the fuzzy extractor.
//
// Construction: the information set is chosen by Bhattacharyya-parameter
// evolution for a BSC at the configured design error rate
// (z -> {2z - z^2, z^2} through the polar butterfly; Arikan 2009).
// Encoding is x = u * F^{(x)n} with F = [[1,0],[1,1]]; decoding is
// standard successive cancellation over log-likelihood ratios.
//
// Unlike bounded-distance codes, polar decoding has no guaranteed
// correction radius: correctable() reports the largest weight w such that
// every random error pattern tried at construction self-test decoded (a
// conservative indicative value), while failure_probability() returns the
// principled union bound sum of the information set's Bhattacharyya
// parameters evaluated at the actual channel error rate.
#pragma once

#include <cstdint>
#include <vector>

#include "keygen/code.hpp"

namespace pufaging {

/// Polar code of length 2^log2_length with `message_length` information
/// bits, designed for a BSC with crossover `design_ber`.
class PolarCode final : public BlockCode {
 public:
  PolarCode(unsigned log2_length, std::size_t message_length,
            double design_ber = 0.05);

  std::size_t block_length() const override { return n_; }
  std::size_t message_length() const override { return k_; }
  std::size_t correctable() const override { return indicative_t_; }
  std::string name() const override;

  BitVector encode(const BitVector& message) const override;
  DecodeResult decode(const BitVector& word) const override;

  /// Union bound on block failure over a BSC(ber): sum of the information
  /// set's Bhattacharyya parameters under that channel.
  double failure_probability(double ber) const override;

  /// Information-bit positions (ascending), for inspection/tests.
  const std::vector<std::uint32_t>& information_set() const {
    return info_set_;
  }

  double design_ber() const { return design_ber_; }

 private:
  std::vector<double> battacharyya_profile(double ber) const;

  std::size_t n_;
  std::size_t k_;
  unsigned log2_n_;
  double design_ber_;
  std::vector<std::uint32_t> info_set_;   ///< ascending positions
  std::vector<bool> is_information_;      ///< per u-index flag
  std::size_t indicative_t_ = 0;
};

}  // namespace pufaging
