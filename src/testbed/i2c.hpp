// I2C transfer model between master and slave boards (paper Section III).
//
// Each slave sends its 1 KByte SRAM read-out to its layer master over I2C.
// The model covers what matters for the data path: per-byte timing at the
// configured bus clock, CRC-protected framing, optional fault injection
// (random bit corruption), and retry-on-corruption at the master.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "testbed/clock.hpp"

namespace pufaging {

/// A framed payload: [slave address | sequence | payload | crc8].
struct I2cFrame {
  std::uint8_t address = 0;
  std::uint32_t sequence = 0;  ///< Slave's measurement counter.
  std::vector<std::uint8_t> payload;
  std::uint8_t crc = 0;

  /// Computes the CRC over address, sequence and payload.
  std::uint8_t compute_crc() const;

  /// Seals the frame (sets crc).
  void seal() { crc = compute_crc(); }

  /// True when the stored CRC matches the contents.
  bool valid() const { return crc == compute_crc(); }
};

/// How a transfer ended from the master's point of view. A lost frame has
/// no status at all — the bus never calls back and the master's watchdog
/// must notice.
enum class I2cStatus {
  kOk,   ///< Frame delivered (its CRC may still be bad).
  kNak,  ///< Slave NAKed the address byte; only the header crossed the bus.
};

/// Per-frame fault probabilities of one bus (chaos rig).
struct I2cFaultProfile {
  double corrupt_rate = 0.0;  ///< One random payload bit flips.
  double drop_rate = 0.0;     ///< Frame vanishes; no callback (watchdog).
  double nak_rate = 0.0;      ///< Address NAK after ~one byte of bus time.
};

/// Shared bus with sequential arbitration: one transfer at a time; a
/// transfer occupies the bus for its full duration.
class I2cBus {
 public:
  using StatusCallback = std::function<void(I2cStatus, I2cFrame)>;

  /// `bit_rate_hz`: bus clock; standard-mode I2C is 100 kHz. A transferred
  /// byte costs 9 bit times (8 data + ACK).
  I2cBus(EventQueue& queue, double bit_rate_hz = 100000.0);

  /// Duration of transferring `frame` (header + payload + crc).
  SimTime transfer_duration(const I2cFrame& frame) const;

  /// Duration of a NAKed transfer (address byte + stop).
  SimTime nak_duration() const;

  /// Starts a transfer; `on_complete` fires when the bus delivers the frame
  /// (possibly corrupted, when fault injection is enabled). If the bus is
  /// busy the transfer queues behind the current one. A dropped frame
  /// (drop_rate) never fires the callback.
  void transfer(I2cFrame frame, std::function<void(I2cFrame)> on_complete);

  /// Status-carrying variant for resilient masters: reports NAKs and still
  /// never calls back for lost frames (the master watchdog handles those).
  void transfer_with_status(I2cFrame frame, StatusCallback on_complete);

  /// Enables corruption-only fault injection: each transferred frame
  /// independently gets one random payload bit flipped with probability
  /// `per_frame_rate`. Kept as the pre-chaos-rig interface; equivalent to
  /// a profile with only `corrupt_rate` set.
  void inject_faults(double per_frame_rate, std::uint64_t seed);

  /// Enables the full fault profile (corruption, loss, NAK).
  void inject_fault_profile(const I2cFaultProfile& profile,
                            std::uint64_t seed);

  bool busy() const { return busy_; }
  std::uint64_t frames_transferred() const { return frames_; }
  std::uint64_t frames_corrupted() const { return corrupted_; }
  std::uint64_t frames_lost() const { return lost_; }
  std::uint64_t frames_naked() const { return naks_; }

 private:
  struct Pending {
    I2cFrame frame;
    StatusCallback on_complete;
  };

  void start_next();

  EventQueue* queue_;
  double bit_rate_hz_;
  bool busy_ = false;
  std::vector<Pending> backlog_;
  I2cFaultProfile profile_;
  std::optional<Xoshiro256StarStar> fault_rng_;
  std::uint64_t frames_ = 0;
  std::uint64_t corrupted_ = 0;
  std::uint64_t lost_ = 0;
  std::uint64_t naks_ = 0;
};

}  // namespace pufaging
