#include "stats/confidence.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace pufaging {
namespace {

TEST(Wilson, KnownInterval) {
  // 8/10 at 95%: Wilson interval ~ [0.490, 0.943].
  const ProportionInterval ci = wilson_interval(8, 10, 1.96);
  EXPECT_NEAR(ci.lo, 0.490, 0.005);
  EXPECT_NEAR(ci.hi, 0.943, 0.005);
}

TEST(Wilson, BoundsRespected) {
  const ProportionInterval zero = wilson_interval(0, 100);
  EXPECT_DOUBLE_EQ(zero.lo, 0.0);
  EXPECT_GT(zero.hi, 0.0);
  const ProportionInterval all = wilson_interval(100, 100);
  EXPECT_DOUBLE_EQ(all.hi, 1.0);
  EXPECT_LT(all.lo, 1.0);
}

TEST(Wilson, Preconditions) {
  EXPECT_THROW(wilson_interval(1, 0), InvalidArgument);
  EXPECT_THROW(wilson_interval(5, 4), InvalidArgument);
}

TEST(Wald, KnownAndDegenerate) {
  const ProportionInterval ci = wald_interval(50, 100, 1.96);
  EXPECT_NEAR(ci.lo, 0.402, 0.001);
  EXPECT_NEAR(ci.hi, 0.598, 0.001);
  // Degenerate at the extremes (the known Wald flaw: zero width).
  const ProportionInterval zero = wald_interval(0, 100);
  EXPECT_DOUBLE_EQ(zero.lo, 0.0);
  EXPECT_DOUBLE_EQ(zero.hi, 0.0);
  EXPECT_THROW(wald_interval(2, 1), InvalidArgument);
}

TEST(Wilson, NarrowerCenterThanWaldAtExtremes) {
  // Wilson stays informative near 0/1 where Wald collapses.
  const ProportionInterval wilson = wilson_interval(1, 1000);
  const ProportionInterval wald = wald_interval(1, 1000);
  EXPECT_GT(wilson.hi - wilson.lo, wald.hi - wald.lo);
}

// Property: the 95% Wilson interval covers the true p in ~95% of trials.
class WilsonCoverage : public ::testing::TestWithParam<double> {};

TEST_P(WilsonCoverage, CoversTrueProportion) {
  const double p = GetParam();
  Xoshiro256StarStar rng(static_cast<std::uint64_t>(p * 1000) + 99);
  const int trials = 400;
  const int n = 200;
  int covered = 0;
  for (int t = 0; t < trials; ++t) {
    std::uint64_t successes = 0;
    for (int i = 0; i < n; ++i) {
      successes += rng.bernoulli(p) ? 1U : 0U;
    }
    const ProportionInterval ci = wilson_interval(successes, n);
    if (p >= ci.lo && p <= ci.hi) {
      ++covered;
    }
  }
  // 95% nominal; allow generous slack for 400 trials (binomial noise).
  EXPECT_GE(covered, trials * 90 / 100) << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(Proportions, WilsonCoverage,
                         ::testing::Values(0.02, 0.1, 0.5, 0.9, 0.98));

}  // namespace
}  // namespace pufaging
