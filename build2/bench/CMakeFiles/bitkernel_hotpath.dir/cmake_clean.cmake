file(REMOVE_RECURSE
  "CMakeFiles/bitkernel_hotpath.dir/bitkernel_hotpath.cpp.o"
  "CMakeFiles/bitkernel_hotpath.dir/bitkernel_hotpath.cpp.o.d"
  "bitkernel_hotpath"
  "bitkernel_hotpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitkernel_hotpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
