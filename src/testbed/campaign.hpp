// The two-year measurement campaign (paper Section III + IV-B protocol).
//
// Two execution modes:
//
//  - Fast path (`run_campaign`): generates exactly the measurements the
//    paper's analysis consumes — the first 1,000 read-outs after midnight
//    on the 8th of each month per device — and ages the silicon between
//    snapshots. This is the mode behind Table I and Fig. 6.
//  - Protocol path (`Rig` + `collect_rig_batches`): full event-driven
//    simulation of the 18-board rig including handshakes, power switching
//    and I2C transfers; used at reduced scale to validate that the data
//    path delivers bit-identical measurements.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "analysis/monthly.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "silicon/device_factory.hpp"
#include "store/vfs.hpp"
#include "testbed/faults.hpp"
#include "testbed/rig.hpp"

namespace pufaging {

/// Campaign options.
struct CampaignConfig {
  FleetConfig fleet = paper_fleet_config();
  std::size_t months = 24;                  ///< Aging span (snapshots 0..months).
  std::size_t measurements_per_month = 1000;
  OperatingPoint operating_point = nominal_conditions();

  /// Optional per-month operating-point schedule (field conditions: the
  /// paper's rig sits at room temperature, but a deployed device sees
  /// seasons). When set, snapshot m is measured and the following month
  /// aged at schedule(m); `operating_point` and `accelerated` are
  /// ignored.
  std::function<OperatingPoint(std::size_t month)> schedule;

  /// Accelerated-aging mode: devices are measured *and* stressed at
  /// `operating_point` (set it to accelerated_conditions()), and each
  /// reported "month" is one nominal-equivalent stress month (wall time is
  /// compressed by the Arrhenius/voltage acceleration factor, as a real
  /// accelerated test would do).
  bool accelerated = false;

  /// Keep the month-0 batches (16 x 1000 read-outs) for Fig. 4/5 analyses.
  bool keep_first_month_batches = false;

  /// Tile shape (rows × 64-bit word columns) for the streaming monthly
  /// fold's cross-device kernels (BCHD, PUF entropy). 0 = the cache-sized
  /// default. Any shape is bit-identical — the fold accumulates integer
  /// tile partials and converts to floating point in the historical
  /// order — so these only move cache behaviour; the property suite
  /// enforces the invariance.
  std::size_t tile_rows = 0;
  std::size_t tile_cols = 0;

  /// Worker threads for the per-device fan-out: 0 = hardware concurrency,
  /// 1 = the serial reference path. Devices are statistically independent
  /// (each owns a counter-based RNG stream split off the fleet seed), so
  /// every thread count produces bit-identical results; `threads` only
  /// changes wall-clock time. A custom `schedule` is invoked once per month
  /// on the calling thread and need not be thread-safe.
  std::size_t threads = 0;

  /// Chaos-rig fault injection. The default (all-zero) plan is skipped
  /// entirely and bit-identical to a fault-free campaign; a non-zero plan
  /// draws every fault from per-(device, month) streams split off the
  /// fleet seed, so it too is bit-identical at any `threads` value.
  FaultPlan faults;

  /// Master-side resilience policy applied when `faults` is non-zero.
  RetryPolicy retry;

  /// Durable-store directory; empty = no persistence. When set, every
  /// completed month is persisted: a full snapshot is published atomically
  /// every `checkpoint_every_months`-th month (and always at the end or a
  /// halt) — the store's compaction point — and the months in between get
  /// a cheap month-ledger record appended to the store's CRC32C WAL
  /// instead of a full rewrite.
  std::string checkpoint_dir;
  std::size_t checkpoint_every_months = 1;

  /// Filesystem the durable store writes through; null = the real
  /// filesystem. The crash matrix substitutes a FaultFs here to inject
  /// power cuts, ENOSPC, short writes and dropped fsyncs.
  Vfs* vfs = nullptr;

  /// WAL appends per fsync (the store's fsync batching knob). 1 = every
  /// month ledger is durable before the next month starts; larger values
  /// trade a bounded amount of redone work after a crash for fewer
  /// fsyncs.
  std::size_t fsync_every = 1;

  /// WAL sub-segment size cap forwarded to the store (see
  /// StoreOptions::wal_segment_bytes); 0 = unbounded.
  std::uint64_t wal_segment_bytes = 16ULL << 20;

  /// Observability sinks. Both are pure *sinks*: nothing recorded through
  /// them flows back into RNG streams, measurements or analysis, so a
  /// campaign is bit-identical with them set or null —
  /// tests/integration/observability_test.cpp asserts exactly that.
  /// Null = uninstrumented (the hot paths skip even the clock reads).
  obs::MetricsRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;

  /// Clock behind the campaign's latency metrics; null = the tracer's
  /// clock when a tracer is set, else the real monotonic clock. A
  /// FakeClock here is only safe with threads == 1 (its readings mutate
  /// unsynchronized state), which is all the golden exporter tests need.
  obs::MonotonicClock* clock = nullptr;

  /// Resume from the checkpoint in `checkpoint_dir`: completed months are
  /// restored and the campaign continues bit-identically to an
  /// uninterrupted run. Month-0 batches (`keep_first_month_batches`) are
  /// only retained when month 0 runs in-process.
  bool resume = false;

  /// Stop after completing this month (checkpointing if configured) even
  /// when `months` lie beyond it — the in-process way to test
  /// kill-and-resume. The result's `completed` flag is cleared.
  std::optional<std::size_t> halt_after_month;
};

/// Ledger of durable-store activity during a campaign. Store failures the
/// campaign survived (a full disk, a failing append) become `incidents`
/// entries instead of aborting the run: measurement continuity is worth
/// more than any single persist, and the in-memory state stays correct —
/// only crash-resume coverage degrades until the store recovers.
struct PersistenceHealth {
  std::size_t snapshots = 0;    ///< Full snapshots published atomically.
  std::size_t wal_appends = 0;  ///< Month ledgers appended to the WAL.
  /// Human-readable descriptions of survived store failures; empty when
  /// every persist succeeded.
  std::vector<std::string> incidents;

  bool degraded() const { return !incidents.empty(); }
};

/// Campaign output.
struct CampaignResult {
  /// One entry per monthly snapshot (months + 1 entries, month 0 first).
  std::vector<FleetMonthMetrics> series;
  /// Month-0 reference pattern per device (the first ever read-out).
  std::vector<BitVector> references;
  /// Month-0 full batches per device (only if keep_first_month_batches).
  std::vector<std::vector<BitVector>> first_month_batches;
  /// Resilience ledger; one entry per month when a fault plan was active,
  /// empty for fault-free campaigns.
  CampaignHealth health;
  /// Durable-store ledger (empty/zero when checkpointing is off).
  PersistenceHealth persistence;
  /// False when the campaign stopped at `halt_after_month`.
  bool completed = true;
  /// The bitkernel dispatch tier ("scalar", "word", "avx2", "neon") the
  /// analysis kernels ran on — a reproducibility record only: every tier
  /// is bit-identical by the kernel determinism contract, which the
  /// differential suite enforces.
  std::string kernel_level;
};

/// Runs the fast-path campaign.
CampaignResult run_campaign(const CampaignConfig& config);

/// A ready-made seasonal schedule for field studies: sinusoidal ambient
/// temperature `mean_c + swing_c * sin(2 pi month / 12)` at nominal
/// supply and ramp.
std::function<OperatingPoint(std::size_t)> seasonal_schedule(
    double mean_c = 15.0, double swing_c = 12.0);

/// Drives the full protocol rig for `cycles` power cycles and returns each
/// device's measurements in device-index order (decoded from the
/// collector's records).
///
/// Threading contract: the rig's event queue is inherently serial (events
/// are globally ordered by simulated time), so a `Rig` must never be
/// shared between threads — drive each rig from exactly one thread. The
/// `Collector` record sink itself *is* thread-safe, so several rigs running
/// on different threads may feed one shared collector.
std::vector<std::vector<BitVector>> collect_rig_batches(Rig& rig,
                                                        std::uint64_t cycles);

}  // namespace pufaging
