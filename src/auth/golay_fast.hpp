// Packed-word Golay(24,12) codec for the authentication hot path.
//
// The keygen layer's GolayCode is the semantic reference: it works on
// BitVectors through the virtual BlockCode interface, which is the right
// shape for enrollment (a few thousand per second) and completely the
// wrong shape for authentication at a million decodes per second. This
// codec derives its tables *from* a GolayCode instance — generator rows
// from encode() of the unit messages, a parity-check basis and message
// extractor by GF(2) elimination, and the full weight-<=3 syndrome table
// — so it is bit-compatible with the reference by construction, which
// tests/auth/golay_fast_test.cpp verifies exhaustively (all 4096
// messages, all 2325 correctable error patterns).
//
// decode() is branch-light integer code on a 24-bit word: 12 mask
// parities for the syndrome, one 4096-entry table load, one XOR, and a
// 12-bit message extraction (a single AND for the systematic generator
// the reference uses).
#pragma once

#include <array>
#include <bit>
#include <cstdint>

#include "keygen/golay.hpp"

namespace pufaging::auth {

/// Sentinel in the syndrome table: no error pattern of weight <= 3 has
/// this syndrome (>= 4 bit errors; detected, not correctable).
inline constexpr std::uint32_t kUncorrectable = 0xFFFFFFFFU;

class FastGolay {
 public:
  /// Builds the packed tables from the reference code. Throws
  /// InvalidArgument if the reference violates the Golay geometry (rank
  /// deficiency or a syndrome collision among weight-<=3 patterns, either
  /// of which would mean its minimum distance is below 7).
  explicit FastGolay(const GolayCode& reference);

  /// Process-wide shared instance (built once, read-only afterwards).
  static const FastGolay& instance();

  /// Encodes a 12-bit message into a 24-bit codeword, bit-compatible with
  /// GolayCode::encode on the LSB-first BitVector packing.
  std::uint32_t encode(std::uint32_t message12) const {
    std::uint32_t cw = 0;
    std::uint32_t m = message12 & 0xFFFU;
    while (m != 0) {
      const int j = std::countr_zero(m);
      cw ^= generator_rows_[static_cast<std::size_t>(j)];
      m &= m - 1;
    }
    return cw;
  }

  struct Decoded {
    std::uint16_t message = 0;    ///< Recovered 12-bit message.
    std::uint8_t corrected = 0;   ///< Bit errors absorbed (0..3).
    bool ok = false;              ///< False when > 3 errors were detected.
  };

  /// Decodes a 24-bit word; corrects up to 3 errors. Matches
  /// GolayCode::decode decision-for-decision.
  Decoded decode(std::uint32_t word24) const {
    word24 &= 0xFFFFFFU;
    std::uint32_t syn = 0;
    for (std::size_t r = 0; r < 12; ++r) {
      syn |= static_cast<std::uint32_t>(
                 std::popcount(word24 & parity_masks_[r]) & 1)
             << r;
    }
    const std::uint32_t error = error_for_syndrome_[syn];
    Decoded out;
    if (error == kUncorrectable) {
      return out;
    }
    const std::uint32_t codeword = word24 ^ error;
    out.ok = true;
    out.corrected = static_cast<std::uint8_t>(std::popcount(error));
    if (systematic_) {
      out.message = static_cast<std::uint16_t>(codeword & 0xFFFU);
    } else {
      std::uint16_t msg = 0;
      for (std::size_t j = 0; j < 12; ++j) {
        msg |= static_cast<std::uint16_t>(
                   (std::popcount(codeword & message_masks_[j]) & 1) << j);
      }
      out.message = msg;
    }
    return out;
  }

  /// Syndrome of a 24-bit word (zero exactly for codewords).
  std::uint16_t syndrome(std::uint32_t word24) const {
    std::uint32_t syn = 0;
    for (std::size_t r = 0; r < 12; ++r) {
      syn |= static_cast<std::uint32_t>(
                 std::popcount((word24 & 0xFFFFFFU) & parity_masks_[r]) & 1)
             << r;
    }
    return static_cast<std::uint16_t>(syn);
  }

 private:
  std::array<std::uint32_t, 12> generator_rows_{};  ///< encode(e_j), packed.
  std::array<std::uint32_t, 12> parity_masks_{};    ///< Dual-space basis.
  std::array<std::uint32_t, 12> message_masks_{};   ///< Codeword -> message.
  bool systematic_ = false;  ///< message == low 12 codeword bits.
  std::array<std::uint32_t, 4096> error_for_syndrome_{};
};

}  // namespace pufaging::auth
