// Golden-vector regression tests: small fixed-seed campaign outputs are
// checked in under tests/golden/ and any bit drift fails the build.
//
// The kernel layer, the parallel engine and the chaos rig all promise
// bit-identical physics; these tests pin the actual bits, so a future
// kernel rewrite, refactor or "harmless" reordering that silently moves
// the simulated measurements (and with them the paper's Table I / Fig. 6
// numbers) is caught at ctest time, not at paper-comparison time.
//
// Every double is stored as the 16-hex-digit IEEE-754 bit pattern
// (double_to_hex_bits) — comparisons are exact, not epsilon-based.
// Reference patterns are pinned by SHA-256 of their packed bytes.
//
// Regenerating (only when an intentional physics change lands):
//   PUFAGING_REGEN_GOLDEN=1 ./build/tests/pa_golden_test
// then review the diff like any other code change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "analysis/summary.hpp"
#include "common/bitkernel.hpp"
#include "common/sha256.hpp"
#include "testbed/campaign.hpp"
#include "testbed/checkpoint.hpp"

#ifndef PA_GOLDEN_DIR
#error "PA_GOLDEN_DIR must point at the checked-in golden vectors"
#endif

namespace pufaging {
namespace {

using GoldenMap = std::map<std::string, std::string>;

// Small but non-trivial fixed-seed campaign: 4 devices, 6 aging months,
// 40 measurements per month. Big enough that every metric (including
// cross-device BCHD/PUF entropy) is exercised; small enough for ctest.
CampaignConfig golden_config() {
  CampaignConfig config;
  config.fleet.device_count = 4;
  config.months = 6;
  config.measurements_per_month = 40;
  config.threads = 1;
  return config;
}

// The same campaign under a deterministic fault plan: pins the chaos
// rig's fault draws, retry ladder and tolerant analysis alongside the
// physics.
CampaignConfig golden_chaos_config() {
  CampaignConfig config = golden_config();
  config.faults = parse_fault_plan(
      "corrupt=0.05,drop=0.03,hang=0.02,reset=0.01,brownout=0.02,"
      "stuck=0.01,dropout=2@3");
  return config;
}

void put_double(GoldenMap& map, const std::string& key, double value) {
  map[key] = double_to_hex_bits(value);
}

GoldenMap series_map(const CampaignResult& result) {
  GoldenMap map;
  for (std::size_t m = 0; m < result.series.size(); ++m) {
    const FleetMonthMetrics& fm = result.series[m];
    const std::string p = "m" + std::to_string(m) + ".";
    put_double(map, p + "month", fm.month);
    put_double(map, p + "wchd_avg", fm.wchd_avg);
    put_double(map, p + "wchd_wc", fm.wchd_wc);
    put_double(map, p + "fhw_avg", fm.fhw_avg);
    put_double(map, p + "fhw_wc", fm.fhw_wc);
    put_double(map, p + "stable_avg", fm.stable_avg);
    put_double(map, p + "stable_wc", fm.stable_wc);
    put_double(map, p + "noise_entropy_avg", fm.noise_entropy_avg);
    put_double(map, p + "noise_entropy_wc", fm.noise_entropy_wc);
    put_double(map, p + "bchd_avg", fm.bchd_avg);
    put_double(map, p + "bchd_wc", fm.bchd_wc);
    put_double(map, p + "puf_entropy", fm.puf_entropy);
    put_double(map, p + "coverage", fm.coverage);
    map[p + "devices_reporting"] = std::to_string(fm.devices_reporting);
    map[p + "degraded"] = fm.degraded ? "1" : "0";
  }
  for (std::size_t d = 0; d < result.references.size(); ++d) {
    const std::string key = "ref" + std::to_string(d) + ".sha256";
    map[key] = result.references[d].empty()
                   ? "absent"
                   : Sha256::to_hex(Sha256::hash(result.references[d].to_bytes()));
  }
  return map;
}

GoldenMap summary_map(const CampaignResult& result) {
  const SummaryTable table = build_summary_table(result.series);
  GoldenMap map;
  map["months"] = std::to_string(table.months);
  for (std::size_t i = 0; i < table.rows.size(); ++i) {
    const SummaryRow& row = table.rows[i];
    const std::string p = "row" + std::to_string(i) + ".";
    map[p + "metric"] = row.metric;
    map[p + "variant"] = row.variant.empty() ? "-" : row.variant;
    put_double(map, p + "start", row.start);
    put_double(map, p + "end", row.end);
    put_double(map, p + "relative_change", row.relative_change);
    put_double(map, p + "monthly_change", row.monthly_change);
  }
  return map;
}

std::string golden_path(const std::string& name) {
  return std::string(PA_GOLDEN_DIR) + "/" + name;
}

void write_golden(const std::string& name, const GoldenMap& map) {
  std::ofstream out(golden_path(name));
  ASSERT_TRUE(out.good()) << "cannot write " << golden_path(name);
  out << "# Golden vectors - doubles are IEEE-754 bit patterns "
         "(double_to_hex_bits).\n"
         "# Regenerate: PUFAGING_REGEN_GOLDEN=1 ./build/tests/pa_golden_test\n";
  for (const auto& [key, value] : map) {
    out << key << " " << value << "\n";
  }
}

GoldenMap read_golden(const std::string& name) {
  std::ifstream in(golden_path(name));
  EXPECT_TRUE(in.good()) << "missing golden file " << golden_path(name)
                         << " (regenerate with PUFAGING_REGEN_GOLDEN=1)";
  GoldenMap map;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    // Values may contain spaces (metric names): split at the first space
    // only.
    const std::size_t sep = line.find(' ');
    if (sep == std::string::npos) {
      ADD_FAILURE() << name << ": malformed line '" << line << "'";
      continue;
    }
    map[line.substr(0, sep)] = line.substr(sep + 1);
  }
  return map;
}

bool regen_requested() {
  return std::getenv("PUFAGING_REGEN_GOLDEN") != nullptr;
}

void check_against_golden(const std::string& name, const GoldenMap& actual) {
  if (regen_requested()) {
    write_golden(name, actual);
    GTEST_SKIP() << "regenerated " << name;
  }
  const GoldenMap expected = read_golden(name);
  ASSERT_FALSE(expected.empty());
  // Key sets must match exactly (a missing or extra month is drift too).
  for (const auto& [key, value] : expected) {
    const auto it = actual.find(key);
    if (it == actual.end()) {
      ADD_FAILURE() << name << ": key '" << key << "' missing from output";
      continue;
    }
    EXPECT_EQ(it->second, value)
        << name << ": bit drift at '" << key << "' (expected " << value
        << ", got " << it->second
        << "). If this physics change is intentional, regenerate the "
           "golden files and justify the diff in the PR.";
  }
  for (const auto& [key, value] : actual) {
    (void)value;
    EXPECT_TRUE(expected.count(key) != 0)
        << name << ": unexpected new key '" << key << "'";
  }
}

TEST(GoldenCampaign, Fig6SeriesAndReferencesExactBits) {
  const CampaignResult result = run_campaign(golden_config());
  check_against_golden("campaign_fig6.golden", series_map(result));
}

TEST(GoldenCampaign, Table1SummaryExactBits) {
  const CampaignResult result = run_campaign(golden_config());
  check_against_golden("table1_summary.golden", summary_map(result));
}

TEST(GoldenCampaign, ChaosCampaignExactBits) {
  const CampaignResult result = run_campaign(golden_chaos_config());
  GoldenMap map = series_map(result);
  // Pin the resilience ledger totals as well: fault draws moving is as
  // much drift as physics moving.
  map["health.crc_retries"] = std::to_string(result.health.total_crc_retries());
  map["health.timeouts"] = std::to_string(result.health.total_timeouts());
  map["health.frames_lost"] =
      std::to_string(result.health.total_frames_lost());
  map["health.dropped"] =
      std::to_string(result.health.total_measurements_dropped());
  map["health.probes"] = std::to_string(result.health.total_probes());
  check_against_golden("campaign_chaos.golden", map);
}

// The execution-configuration matrix the tilecol engine must be inert
// under: tile shape x thread count x SIMD tier. The pinned golden bits
// were produced at threads=1 on the default shape; every other point of
// the matrix must reproduce them byte for byte.
void expect_matches_golden_under_matrix(const std::string& golden_name,
                                        const CampaignConfig& base) {
  const GoldenMap expected = read_golden(golden_name);
  ASSERT_FALSE(expected.empty());
  const struct {
    std::size_t rows;
    std::size_t cols;
  } shapes[] = {{0, 0}, {1, 1}, {3, 5}, {128, 16}};
  // Scalar oracle tier and the best tier this CPU offers (they coincide
  // on a machine with no SIMD, which collapses the matrix harmlessly).
  const bitkernel::Level best = bitkernel::available_levels().back();
  for (const auto& shape : shapes) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      for (const bitkernel::Level level : {bitkernel::Level::kScalar, best}) {
        SCOPED_TRACE(::testing::Message()
                     << "tile " << shape.rows << "x" << shape.cols
                     << " threads=" << threads << " simd="
                     << bitkernel::level_name(level));
        CampaignConfig config = base;
        config.tile_rows = shape.rows;
        config.tile_cols = shape.cols;
        config.threads = threads;
        bitkernel::ScopedLevel scoped(level);
        const GoldenMap actual = series_map(run_campaign(config));
        for (const auto& [key, value] : expected) {
          if (key.rfind("health.", 0) == 0) {
            continue;  // ledger keys live only in the chaos golden map
          }
          const auto it = actual.find(key);
          ASSERT_NE(it, actual.end()) << key;
          ASSERT_EQ(it->second, value) << "diverged at " << key;
        }
      }
    }
  }
}

TEST(GoldenCampaign, Fig6IsTileShapeThreadAndSimdInvariant) {
  if (regen_requested()) {
    GTEST_SKIP() << "regeneration run";
  }
  expect_matches_golden_under_matrix("campaign_fig6.golden", golden_config());
}

TEST(GoldenCampaign, ChaosSeriesIsTileShapeThreadAndSimdInvariant) {
  if (regen_requested()) {
    GTEST_SKIP() << "regeneration run";
  }
  expect_matches_golden_under_matrix("campaign_chaos.golden",
                                     golden_chaos_config());
}

TEST(GoldenCampaign, SeriesIsThreadAndKernelInvariant) {
  // The golden files pin threads=1 on the active kernel tier; this test
  // closes the loop by checking a multi-threaded run reproduces the same
  // map, so the pinned bits stand for every execution configuration.
  CampaignConfig parallel = golden_config();
  parallel.threads = 4;
  const GoldenMap actual = series_map(run_campaign(parallel));
  if (regen_requested()) {
    GTEST_SKIP() << "regeneration run";
  }
  const GoldenMap expected = read_golden("campaign_fig6.golden");
  for (const auto& [key, value] : expected) {
    const auto it = actual.find(key);
    ASSERT_NE(it, actual.end()) << key;
    EXPECT_EQ(it->second, value) << "threads=4 diverged at " << key;
  }
}

}  // namespace
}  // namespace pufaging
