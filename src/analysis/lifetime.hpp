// Lifetime extrapolation from a partial aging trajectory.
//
// The practical question behind the paper's study: given the first months
// of field data, when will the PUF's bit error rate cross the error-
// correction budget? BTI kinetics are power-law in time, so the WCHD
// trajectory is fitted as
//
//     wchd(t) = baseline + amplitude * t^exponent
//
// (grid search over the exponent, ordinary least squares for the linear
// parameters), and the fit is extrapolated to a BER threshold.
#pragma once

#include <optional>
#include <span>

namespace pufaging {

/// Fitted power-law trajectory.
struct AgingTrajectoryFit {
  double baseline = 0.0;   ///< Value at t = 0.
  double amplitude = 0.0;  ///< Power-law coefficient.
  double exponent = 0.5;   ///< Power-law exponent in (0, 1].
  double rms_error = 0.0;  ///< Root-mean-square residual of the fit.

  /// Predicted metric value at month t (>= 0).
  double predict(double month) const;

  /// First month at which the fitted trajectory reaches `threshold`;
  /// nullopt when the trajectory never does (non-degrading metric).
  std::optional<double> months_until(double threshold) const;
};

/// Fits the power law to (months, values). Requires >= 4 points with at
/// least 3 distinct positive months. Throws InvalidArgument otherwise.
AgingTrajectoryFit fit_aging_trajectory(std::span<const double> months,
                                        std::span<const double> values);

}  // namespace pufaging
