// Chaos-grid core: sweep specification and per-cell statistics.
//
// The paper's rig survived two unattended years on one fixed resilience
// policy. Before committing a fleet to a policy, an operator wants the
// inverse map: *at which fault intensity does this policy fall off a
// cliff?* A chaos grid answers that by sweeping the chaos campaign across
// a fault-rate-scale × retry-policy matrix, running N seeded repetitions
// per cell and aggregating coverage, quarantine churn and survivor-metric
// drift into mean/p5/p95 summaries.
//
// Determinism contract (inherited from the campaign engine, extended to
// the grid):
//
//  - The fleet seed of repetition k is split_seed(master, domain, k) —
//    a pure function of the spec, never of execution order. The same
//    fleet is reused across cells (and for the fault-free baseline), so
//    cell-to-cell differences measure the fault axis, not fleet luck.
//  - Every campaign inside the grid runs with threads == 1; grid-level
//    parallelism schedules whole (cell, seed) runs, and results are
//    indexed by coordinate. Any `--threads` value is bit-identical.
//  - Any single (cell, seed) run can be reproduced standalone from the
//    spec alone via `cell_campaign_config`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "io/json.hpp"
#include "testbed/campaign.hpp"
#include "testbed/faults.hpp"

namespace pufaging::chaoslab {

/// One retry-policy column of the grid.
struct PolicyVariant {
  std::string label;  ///< Display / report name, e.g. "hairtrigger".
  RetryPolicy policy;

  bool operator==(const PolicyVariant&) const = default;
};

/// The full sweep specification. A grid is (rate_scales × policies) cells;
/// each cell runs `seeds_per_cell` chaos campaigns plus shares
/// `seeds_per_cell` fault-free baselines.
struct GridSpec {
  std::string name = "chaos-grid";

  /// The fault plan at rate scale 1.0; each cell runs `scaled_plan(base,
  /// rate_scales[r])`. Dropouts and duration knobs are not scaled.
  FaultPlan base_plan;

  /// Fault-intensity axis, strictly ascending, each >= 0. A scale of 0 is
  /// a fault-free column (useful as an in-grid control).
  std::vector<double> rate_scales;

  /// Policy axis; labels must be unique and non-empty.
  std::vector<PolicyVariant> policies;

  std::size_t seeds_per_cell = 5;
  std::uint64_t master_seed = 0xC11FFULL;

  // Campaign shape shared by every run in the grid.
  std::size_t months = 6;
  std::size_t measurements_per_month = 120;
  std::size_t device_count = 16;
  std::size_t total_bits = 0;       ///< 0 = device-model default.
  std::size_t puf_window_bits = 0;  ///< 0 = device-model default.

  std::size_t rate_count() const { return rate_scales.size(); }
  std::size_t policy_count() const { return policies.size(); }
  std::size_t cell_count() const {
    return rate_scales.size() * policies.size();
  }

  /// Row-major cell numbering: one policy row is contiguous, scanned along
  /// ascending rate scale (the order the cliff detector walks).
  std::size_t cell_index(std::size_t rate_index,
                         std::size_t policy_index) const {
    return policy_index * rate_scales.size() + rate_index;
  }

  /// Throws InvalidArgument on an unrunnable grid: empty axes, duplicate
  /// or empty policy labels, non-ascending/negative/non-finite scales, an
  /// invalid base plan or policy, or zero seeds/months/measurements.
  void validate() const;
};

/// The grid behind `pufaging chaosgrid --demo` and the nightly job: a
/// composite fault plan swept over five intensity decades against three
/// policies (patient / default / hairtrigger). Sized so a full sweep
/// stays in CI budget while still crossing at least one coverage cliff.
GridSpec demo_grid_spec();

Json grid_spec_to_json(const GridSpec& spec);
GridSpec grid_spec_from_json(const Json& json);

/// Parses a spec from a JSON document (as produced by grid_spec_to_json);
/// validates the result.
GridSpec parse_grid_spec(const std::string& text);

/// SHA-256 (hex) of the canonical spec dump. Persistent sweep state and
/// poison bundles embed this and refuse to mix with a different spec.
std::string grid_fingerprint(const GridSpec& spec);

/// Every per-event rate multiplied by `scale` and clamped to 1.0;
/// hang_cycles, brownout_ramp_factor and dropouts pass through.
FaultPlan scaled_plan(const FaultPlan& base, double scale);

/// Fleet seed of repetition `seed_index` (counter-based split, so any
/// repetition is addressable without deriving the others).
std::uint64_t grid_fleet_seed(std::uint64_t master_seed,
                              std::size_t seed_index);

/// The exact campaign config of one (cell, seed) run: threads == 1,
/// no persistence, no observability. Rerunning this standalone
/// reproduces the grid's run bit-identically.
CampaignConfig cell_campaign_config(const GridSpec& spec,
                                    std::size_t rate_index,
                                    std::size_t policy_index,
                                    std::size_t seed_index);

/// The fault-free twin of repetition `seed_index` (same fleet, all-zero
/// plan); the drift reference shared by every cell.
CampaignConfig baseline_campaign_config(const GridSpec& spec,
                                        std::size_t seed_index);

/// Scalars extracted from one (cell, seed) campaign against its baseline.
struct RunStats {
  std::size_t seed_index = 0;

  double coverage_mean = 0.0;  ///< Mean per-month coverage over the series.
  double coverage_min = 0.0;   ///< Worst single month.
  std::uint64_t degraded_months = 0;  ///< Months flagged partial-data.
  std::uint64_t quarantine_entries = 0;  ///< Fleet-wide, whole campaign.
  std::uint64_t retries = 0;  ///< CRC retries + watchdog timeouts.
  std::uint64_t measurements_dropped = 0;

  // Survivor-metric drift: max over comparable months of |faulty - clean|.
  // A month with no reporting board contributes nothing (its survivor
  // stats are zeroed placeholders, not data); BCHD/entropy additionally
  // need >= 2 reporting boards. A cell so dead that no month qualifies
  // reports zero drift — read it next to coverage, which is what cliffs
  // are detected on.
  double wchd_drift = 0.0;
  double bchd_drift = 0.0;
  double entropy_drift = 0.0;
};

RunStats extract_run_stats(std::size_t seed_index,
                           const CampaignResult& faulty,
                           const CampaignResult& baseline);

/// Bit-exact round trip (doubles as IEEE-754 hex); the gridstate record.
Json run_stats_to_json(const RunStats& stats);
RunStats run_stats_from_json(const Json& json);

/// Mean / 5th / 95th percentile of one metric across a cell's seed runs.
/// Percentiles are nearest-rank on the sorted sample (index
/// round(q*(n-1))) — deterministic, no interpolation.
struct Aggregate {
  double mean = 0.0;
  double p5 = 0.0;
  double p95 = 0.0;
};

Aggregate aggregate_samples(std::vector<double> samples);

/// One completed grid cell: the per-seed runs plus their aggregates.
struct CellSummary {
  std::size_t rate_index = 0;
  std::size_t policy_index = 0;
  std::vector<RunStats> runs;  ///< seed order, seeds_per_cell entries.

  Aggregate coverage_mean;
  Aggregate coverage_min;
  Aggregate degraded_months;
  Aggregate quarantine_entries;
  Aggregate retries;
  Aggregate wchd_drift;
  Aggregate bchd_drift;
  Aggregate entropy_drift;

  /// The cell's poison run: the seed with the lowest coverage_min
  /// (ties: lowest coverage_mean, then lowest seed index).
  std::size_t worst_seed_index = 0;

  /// Recomputes every aggregate and worst_seed_index from `runs`.
  /// Requires at least one run.
  void recompute();
};

}  // namespace pufaging::chaoslab
