#include "analysis/monthly.hpp"

#include <algorithm>

#include "analysis/entropy.hpp"
#include "analysis/hamming.hpp"
#include "common/bitkernel.hpp"
#include "common/error.hpp"
#include "common/math.hpp"

namespace pufaging {

DeviceMonthAccumulator::DeviceMonthAccumulator(std::uint32_t device_id,
                                               const BitVector& reference)
    : device_id_(device_id),
      reference_(reference),
      ones_(reference.size(), 0) {
  if (reference.empty()) {
    throw InvalidArgument("DeviceMonthAccumulator: empty reference");
  }
}

void DeviceMonthAccumulator::add(const BitVector& measurement) {
  if (measurement.size() != reference_.size()) {
    throw InvalidArgument("DeviceMonthAccumulator::add: size mismatch");
  }
  if (!first_) {
    first_ = measurement;
  }
  // One fused sweep instead of three (HD vs reference, weight, per-cell
  // ones). The integer results are the exact counts the separate kernels
  // produce, and the divisions below are the exact expressions
  // fractional_hamming_distance / fractional_weight evaluate — so the
  // accumulated doubles are bit-identical to the unfused path.
  std::uint64_t dist = 0;
  std::uint64_t pop = 0;
  bitkernel::row_stats(measurement.words().data(), reference_.words().data(),
                       measurement.size(), ones_.data(), &dist, &pop);
  const double inv_bits = static_cast<double>(measurement.size());
  wchd_sum_ += static_cast<double>(dist) / inv_bits;
  fhw_sum_ += static_cast<double>(pop) / inv_bits;
  ++count_;
}

DeviceMonthMetrics DeviceMonthAccumulator::finalize() const {
  if (count_ == 0) {
    throw InvalidArgument("DeviceMonthAccumulator::finalize: no measurements");
  }
  DeviceMonthMetrics m;
  m.device_id = device_id_;
  m.measurement_count = count_;
  const double inv = 1.0 / static_cast<double>(count_);
  m.wchd_mean = wchd_sum_ * inv;
  m.fhw_mean = fhw_sum_ * inv;
  std::size_t stable = 0;
  double entropy_sum = 0.0;
  for (std::uint32_t c : ones_) {
    if (c == 0 || c == count_) {
      ++stable;
    }
    entropy_sum += binary_min_entropy(static_cast<double>(c) * inv);
  }
  m.stable_ratio = static_cast<double>(stable) /
                   static_cast<double>(ones_.size());
  m.noise_entropy = entropy_sum / static_cast<double>(ones_.size());
  m.first_pattern = *first_;
  return m;
}

namespace {

// Shared reduction used by both combine_fleet_month overloads. Tolerates
// any number of reporting devices; the strict overload enforces its >= 2
// precondition before calling. Accumulation order is identical in both
// paths so a fault-free chaos campaign is bit-identical to the legacy one.
FleetMonthMetrics combine_fleet_month_core(
    std::vector<DeviceMonthMetrics> devices, double month) {
  // The reduction must not depend on the order tasks finished in when the
  // campaign ran in parallel: canonicalize to device-id order first, so
  // every floating-point sum below (and the BCHD pair enumeration) sees
  // the devices in exactly the same sequence regardless of thread count.
  std::sort(devices.begin(), devices.end(),
            [](const DeviceMonthMetrics& a, const DeviceMonthMetrics& b) {
              return a.device_id < b.device_id;
            });

  FleetMonthMetrics fleet;
  fleet.month = month;
  fleet.devices_expected = devices.size();
  fleet.devices_reporting = devices.size();

  double wchd_sum = 0.0, fhw_sum = 0.0, stable_sum = 0.0, entropy_sum = 0.0;
  fleet.wchd_wc = 0.0;
  fleet.fhw_wc = 0.0;
  fleet.stable_wc = 0.0;
  fleet.noise_entropy_wc = 1.0;
  for (const DeviceMonthMetrics& d : devices) {
    wchd_sum += d.wchd_mean;
    fhw_sum += d.fhw_mean;
    stable_sum += d.stable_ratio;
    entropy_sum += d.noise_entropy;
    fleet.wchd_wc = std::max(fleet.wchd_wc, d.wchd_mean);
    fleet.fhw_wc = std::max(fleet.fhw_wc, d.fhw_mean);
    fleet.stable_wc = std::max(fleet.stable_wc, d.stable_ratio);
    fleet.noise_entropy_wc = std::min(fleet.noise_entropy_wc, d.noise_entropy);
  }
  if (!devices.empty()) {
    const double inv = 1.0 / static_cast<double>(devices.size());
    fleet.wchd_avg = wchd_sum * inv;
    fleet.fhw_avg = fhw_sum * inv;
    fleet.stable_avg = stable_sum * inv;
    fleet.noise_entropy_avg = entropy_sum * inv;
  } else {
    fleet.noise_entropy_wc = 0.0;
  }

  // BCHD and PUF entropy are cross-device comparisons; with fewer than two
  // reporting boards there are no pairs, so they stay zero (and the month
  // will be flagged degraded by the tolerant overload).
  if (devices.size() >= 2) {
    std::vector<BitVector> firsts;
    firsts.reserve(devices.size());
    for (const DeviceMonthMetrics& d : devices) {
      firsts.push_back(d.first_pattern);
    }
    const std::vector<double> bchds = between_class_hds(firsts);
    double bchd_sum = 0.0;
    fleet.bchd_wc = 1.0;
    for (double b : bchds) {
      bchd_sum += b;
      fleet.bchd_wc = std::min(fleet.bchd_wc, b);
    }
    fleet.bchd_avg = bchd_sum / static_cast<double>(bchds.size());
    fleet.puf_entropy = puf_min_entropy(firsts);
  }

  fleet.devices = std::move(devices);
  return fleet;
}

}  // namespace

FleetMonthMetrics combine_fleet_month(std::vector<DeviceMonthMetrics> devices,
                                      double month) {
  if (devices.size() < 2) {
    throw InvalidArgument("combine_fleet_month: need at least two devices");
  }
  return combine_fleet_month_core(std::move(devices), month);
}

FleetMonthMetrics combine_fleet_month(
    std::vector<DeviceMonthMetrics> devices, double month,
    std::size_t devices_expected,
    std::uint64_t expected_measurements_per_device) {
  if (devices.size() > devices_expected) {
    throw InvalidArgument(
        "combine_fleet_month: more reporting devices than expected");
  }
  FleetMonthMetrics fleet = combine_fleet_month_core(std::move(devices), month);
  fleet.devices_expected = devices_expected;

  std::uint64_t delivered = 0;
  for (const DeviceMonthMetrics& d : fleet.devices) {
    delivered += d.measurement_count;
  }
  const std::uint64_t expected_total =
      expected_measurements_per_device * static_cast<std::uint64_t>(devices_expected);
  if (expected_measurements_per_device == 0) {
    fleet.coverage = fleet.devices.empty() ? 0.0 : 1.0;
  } else if (expected_total == 0) {
    fleet.coverage = 1.0;
  } else {
    fleet.coverage = static_cast<double>(delivered) /
                     static_cast<double>(expected_total);
  }
  fleet.degraded = fleet.devices_reporting < fleet.devices_expected ||
                   fleet.coverage < 1.0 || fleet.devices_reporting < 2;
  return fleet;
}

}  // namespace pufaging
