file(REMOVE_RECURSE
  "CMakeFiles/fig3_power_waveform.dir/fig3_power_waveform.cpp.o"
  "CMakeFiles/fig3_power_waveform.dir/fig3_power_waveform.cpp.o.d"
  "fig3_power_waveform"
  "fig3_power_waveform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_power_waveform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
