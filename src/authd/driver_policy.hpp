// Client-side backpressure policy for the authd chaos/soak driver.
//
// The daemon answers overload with *typed* refusals (kRetryAfter, kShed,
// kRateLimited, kLockedOut...) precisely so that a well-behaved fleet can
// spread itself out instead of thundering back. The driver used to count
// those refusals and hammer on — every overload experiment measured a
// pathological herd. This policy is the compliant-client half of the
// contract, factored out of the CLI so the retry/abandon decisions are
// unit-testable without a socket:
//
//  - kRetryAfter / kRateLimited / kDeadline: capped exponential backoff
//    (base << attempt, capped) plus deterministic Philox jitter derived
//    from (seed, nonce) — two drivers with different seeds desynchronize,
//    one driver replays identically.
//  - kShed: the daemon already dropped every second request in the shed
//    band; retry exactly once after a short fixed delay, then abandon.
//  - kLockedOut / kDraining: abandon immediately (and the caller should
//    stop storming a locked-out device — the lockout ladder only grows).
//  - attempts beyond max_retries: abandon.
//
// Pure function of (status, attempt, nonce): no clock, no state.
#pragma once

#include <cstdint>

#include "authd/wire.hpp"

namespace pufaging::authd {

struct DriverBackoffConfig {
  /// First retry delay; also the jitter modulus. Must be > 0.
  std::uint64_t base_ns = 1'000'000;  // 1 ms
  /// Upper bound on any single delay (jitter included). Must be >= base.
  std::uint64_t cap_ns = 100'000'000;  // 100 ms
  /// Retries per request before abandoning (shed allows only 1).
  std::uint32_t max_retries = 6;
  /// Fixed delay for the single shed retry.
  std::uint64_t shed_delay_ns = 1'000'000;  // 1 ms
  /// Jitter key; the driver derives it from its fleet seed so a replay
  /// with the same seed backs off identically.
  std::uint64_t seed = 0;
};

enum class DriverAction : std::uint8_t {
  kDone,     ///< Terminal response; nothing to resend.
  kRetry,    ///< Resend the same request after delay_ns.
  kAbandon,  ///< Give up on this request (counted, never resent).
};

struct DriverStep {
  DriverAction action = DriverAction::kDone;
  std::uint64_t delay_ns = 0;  ///< Meaningful only for kRetry.
};

class DriverBackoff {
 public:
  /// Validates the config (throws InvalidArgument on base 0 or cap < base).
  explicit DriverBackoff(const DriverBackoffConfig& config);

  const DriverBackoffConfig& config() const { return config_; }

  /// Decides the next move after `status` arrived for a request on its
  /// `attempt`-th try (0 = the original send). `nonce` addresses the
  /// jitter stream — pass something unique per (request, attempt).
  DriverStep on_status(ResponseStatus status, std::uint32_t attempt,
                       std::uint64_t nonce) const;

 private:
  DriverBackoffConfig config_;
};

}  // namespace pufaging::authd
