#include "store/store.hpp"

#include <cstdio>
#include <sstream>

#include "io/json.hpp"

namespace pufaging {

namespace {

constexpr const char* kManifest = "MANIFEST";
constexpr const char* kManifestTmp = "MANIFEST.tmp";
constexpr const char* kLegacyState = "state.jsonl";
constexpr int kManifestVersion = 1;

/// Snapshot/manifest writes go through bounded chunks so a power cut can
/// land inside a large blob (more kill points = a stronger crash matrix)
/// and so a short-write-injecting FaultFs exercises the resume loop.
constexpr std::size_t kWriteChunk = 4096;

void write_file_chunked(Vfs& vfs, Vfs::FileId file, std::string_view data) {
  for (std::size_t at = 0; at < data.size(); at += kWriteChunk) {
    vfs.write_all(file, data.substr(at, kWriteChunk));
  }
}

}  // namespace

std::string StoreRecoveryReport::render() const {
  std::ostringstream os;
  if (!manifest_found && !legacy_migrated) {
    os << "store: empty (no MANIFEST, no legacy checkpoint)\n";
    return os.str();
  }
  if (legacy_migrated) {
    os << "store: migrated legacy state.jsonl checkpoint\n";
  } else {
    os << "store: generation " << generation << ", snapshot "
       << (snapshot_loaded ? "loaded" : "missing") << "\n";
  }
  os << "  wal: " << wal_records << " valid record(s)";
  if (torn_tail) {
    os << ", torn/corrupt tail truncated (" << wal_bytes_truncated
       << " byte(s) discarded)";
  }
  os << "\n";
  for (const std::string& name : swept) {
    os << "  swept stray file: " << name << "\n";
  }
  return os.str();
}

MeasurementStore::MeasurementStore(Vfs& vfs, const std::string& dir,
                                   StoreOptions opts)
    : vfs_(vfs), dir_(dir), opts_(opts) {
  if (opts_.fsync_every == 0) {
    opts_.fsync_every = 1;
  }
  vfs_.create_dirs(dir_);
  recover();
}

std::string MeasurementStore::path(const std::string& name) const {
  return dir_ + "/" + name;
}

std::string MeasurementStore::snapshot_name(std::uint32_t generation) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "snap-%08u", generation);
  return buf;
}

std::string MeasurementStore::wal_name(std::uint32_t generation) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "wal-%08u.log", generation);
  return buf;
}

bool MeasurementStore::present(Vfs& vfs, const std::string& dir) {
  return vfs.exists(dir + "/" + kManifest) ||
         vfs.exists(dir + "/" + kLegacyState);
}

void MeasurementStore::recover() {
  // An interrupted manifest publication leaves MANIFEST.tmp; it was never
  // renamed, so it is garbage by definition.
  if (vfs_.exists(path(kManifestTmp))) {
    vfs_.remove(path(kManifestTmp));
    report_.swept.push_back(kManifestTmp);
  }

  std::string snap_file;
  std::string wal_file;
  if (!vfs_.exists(path(kManifest))) {
    if (vfs_.exists(path(kLegacyState))) {
      // Pre-store checkpoint directory: adopt state.jsonl as the snapshot
      // of generation 0. The first publish_snapshot moves it into the
      // manifest scheme.
      snapshot_ = vfs_.read_file(path(kLegacyState));
      has_state_ = true;
      report_.legacy_migrated = true;
      report_.snapshot_loaded = true;
    }
  } else {
    report_.manifest_found = true;
    Json manifest;
    try {
      manifest = Json::parse(vfs_.read_file(path(kManifest)));
      if (manifest.at("version").as_int() != kManifestVersion) {
        throw StoreError(StoreError::Kind::kCorrupt,
                         "store: unsupported manifest version");
      }
      generation_ =
          static_cast<std::uint32_t>(manifest.at("generation").as_int());
      snap_file = manifest.at("snapshot").as_string();
      wal_file = manifest.at("wal").as_string();
    } catch (const StoreError&) {
      throw;
    } catch (const Error& e) {
      // The manifest is published atomically and fsynced — if it does not
      // parse, the medium itself corrupted it. That is beyond what the
      // crash protocol can repair.
      throw StoreError(StoreError::Kind::kCorrupt,
                       std::string("store: corrupt MANIFEST: ") + e.what());
    }
    // Protocol invariant: the snapshot named by the manifest was fsynced
    // before the manifest became visible.
    snapshot_ = vfs_.read_file(path(snap_file));
    has_state_ = true;
    report_.generation = generation_;
    report_.snapshot_loaded = true;

    // The WAL tail is the one place a crash is *expected* to leave damage:
    // scan, keep the valid prefix, cut the rest.
    std::uint64_t wal_bytes = 0;
    std::uint32_t next_seq = 0;
    if (vfs_.exists(path(wal_file))) {
      const std::string image = vfs_.read_file(path(wal_file));
      WalScanResult scan = scan_wal(image, generation_);
      if (scan.torn_tail) {
        vfs_.truncate(path(wal_file), scan.valid_bytes);
        report_.wal_bytes_truncated = image.size() - scan.valid_bytes;
        report_.torn_tail = true;
      }
      wal_payloads_ = std::move(scan.payloads);
      wal_bytes = scan.valid_bytes;
      next_seq = static_cast<std::uint32_t>(wal_payloads_.size());
    }
    // (A missing WAL file is possible when the cut separated the manifest
    // rename from the segment creation; the writer recreates it.)
    report_.wal_records = wal_payloads_.size();
    writer_.emplace(vfs_, path(wal_file), generation_, next_seq, wal_bytes,
                    opts_.fsync_every);
  }

  // Sweep strays: anything that is not the manifest, the live snapshot,
  // the live WAL or a migratable legacy file came from an interrupted
  // publication that never became visible.
  for (const std::string& name : vfs_.list_dir(dir_)) {
    if (name == kManifest || name == kLegacyState ||
        (!snap_file.empty() && name == snap_file) ||
        (!wal_file.empty() && name == wal_file)) {
      continue;
    }
    if (name.rfind("snap-", 0) == 0 || name.rfind("wal-", 0) == 0 ||
        name == kManifestTmp) {
      vfs_.remove(path(name));
      report_.swept.push_back(name);
    }
  }
}

void MeasurementStore::publish_snapshot(std::string_view blob) {
  const std::uint32_t next_gen = generation_ + 1;
  const std::string snap = snapshot_name(next_gen);
  const std::string wal = wal_name(next_gen);

  // 1. Write + fsync the snapshot under its (not yet referenced) name.
  {
    VfsFile file(vfs_, vfs_.open_append(path(snap), true));
    write_file_chunked(vfs_, file.id(), blob);
    vfs_.fsync(file.id());
  }
  // 2. Create the empty WAL segment for the new generation.
  {
    VfsFile file(vfs_, vfs_.open_append(path(wal), true));
    vfs_.fsync(file.id());
  }
  // 2b. Make the new files' *directory entries* durable before anything
  // references them. Without this, a drive that persists the manifest
  // rename ahead of the creations (legal: nothing orders independent
  // metadata) could boot into a manifest naming files that do not exist.
  vfs_.fsync_dir(dir_);
  // 3. Publish: manifest tmp → fsync → atomic rename → directory fsync.
  {
    Json manifest = Json::object();
    manifest.set("version", Json(kManifestVersion));
    manifest.set("generation", Json(next_gen));
    manifest.set("snapshot", Json(snap));
    manifest.set("wal", Json(wal));
    VfsFile file(vfs_, vfs_.open_append(path(kManifestTmp), true));
    write_file_chunked(vfs_, file.id(), manifest.dump());
    vfs_.fsync(file.id());
  }
  vfs_.rename(path(kManifestTmp), path(kManifest));
  vfs_.fsync_dir(dir_);

  // The new generation is durable; only now forget the old one.
  const std::string old_snap =
      generation_ > 0 ? snapshot_name(generation_) : std::string();
  const std::string old_wal =
      generation_ > 0 ? wal_name(generation_) : std::string();
  generation_ = next_gen;
  snapshot_.assign(blob.data(), blob.size());
  wal_payloads_.clear();
  has_state_ = true;
  writer_.emplace(vfs_, path(wal), next_gen, 0, 0, opts_.fsync_every);

  // Best-effort cleanup of the superseded generation and a migrated
  // legacy file; failure here is cosmetic (recovery sweeps strays).
  for (const std::string& stale : {old_snap, old_wal,
                                   std::string(kLegacyState)}) {
    if (!stale.empty() && vfs_.exists(path(stale))) {
      try {
        vfs_.remove(path(stale));
      } catch (const StoreError&) {
        // Leave it for the next recovery sweep.
      }
    }
  }
}

void MeasurementStore::append_record(std::string_view payload) {
  if (!writer_) {
    throw StoreError(StoreError::Kind::kIo,
                     "store: append_record before any published snapshot");
  }
  writer_->append(payload);
  wal_payloads_.emplace_back(payload);
}

void MeasurementStore::flush() {
  if (writer_) {
    writer_->flush();
  }
}

}  // namespace pufaging
