#include "testbed/rig.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "testbed/campaign.hpp"

namespace pufaging {
namespace {

TEST(BoardNumbering, MatchesPaperLayout) {
  // Layer 0: S0..S7; layer 1: S16..S23 (Fig. 2a).
  EXPECT_EQ(board_id_for_device(0), 0U);
  EXPECT_EQ(board_id_for_device(7), 7U);
  EXPECT_EQ(board_id_for_device(8), 16U);
  EXPECT_EQ(board_id_for_device(15), 23U);
  EXPECT_THROW(board_id_for_device(16), InvalidArgument);
  for (std::uint32_t d = 0; d < 16; ++d) {
    EXPECT_EQ(device_index_for_board(board_id_for_device(d)), d);
  }
  EXPECT_THROW(device_index_for_board(8), InvalidArgument);
  EXPECT_THROW(device_index_for_board(24), InvalidArgument);
}

class RigTest : public ::testing::Test {
 protected:
  static Rig& shared_rig() {
    static Rig rig{RigConfig{}};
    static const bool ran = [] {
      rig.run_cycles(4);
      return true;
    }();
    (void)ran;
    return rig;
  }
};

TEST_F(RigTest, EverySlaveDelivers) {
  Rig& rig = shared_rig();
  for (std::uint32_t d = 0; d < 16; ++d) {
    const auto ms =
        rig.collector().board_measurements(board_id_for_device(d));
    EXPECT_GE(ms.size(), 4U) << "device " << d;
    for (const BitVector& m : ms) {
      EXPECT_EQ(m.size(), 8192U);
    }
  }
}

TEST_F(RigTest, WaveformMatchesFig3) {
  // Fig. 3: period 5.4 s, on 3.8 s, off 1.6 s on all probed rails.
  Rig& rig = shared_rig();
  for (std::uint32_t channel : {3U, 4U, 19U, 20U}) {
    const WaveformStats stats = rig.scope().stats(channel);
    EXPECT_GE(stats.cycles, 2U);
    EXPECT_NEAR(stats.period_s, 5.4, 0.2) << "S" << channel;
    EXPECT_NEAR(stats.on_time_s, 3.8, 0.1) << "S" << channel;
    EXPECT_NEAR(stats.off_time_s, 1.6, 0.2) << "S" << channel;
  }
}

TEST_F(RigTest, SameLayerBoardsSwitchTogether) {
  Rig& rig = shared_rig();
  const auto s3 = rig.scope().channel_edges(3);
  const auto s4 = rig.scope().channel_edges(4);
  ASSERT_EQ(s3.size(), s4.size());
  for (std::size_t i = 0; i < s3.size(); ++i) {
    EXPECT_DOUBLE_EQ(s3[i].at, s4[i].at);
    EXPECT_EQ(s3[i].rising, s4[i].rising);
  }
}

TEST_F(RigTest, LayersAreAntiPhased) {
  // Layer 1 (S19) rises strictly between layer 0's (S3) rises, never
  // simultaneously (the paper staggers layers to avoid interference).
  Rig& rig = shared_rig();
  const auto s3 = rig.scope().channel_edges(3);
  const auto s19 = rig.scope().channel_edges(19);
  ASSERT_FALSE(s3.empty());
  ASSERT_FALSE(s19.empty());
  for (const ScopeEdge& a : s3) {
    for (const ScopeEdge& b : s19) {
      EXPECT_NE(a.at, b.at);
    }
  }
}

TEST_F(RigTest, MastersStayInLockstep) {
  Rig& rig = shared_rig();
  const auto c0 = rig.master(0).cycles_completed();
  const auto c1 = rig.master(1).cycles_completed();
  EXPECT_LE(c0 > c1 ? c0 - c1 : c1 - c0, 1U);
}

TEST(RigProtocol, DataPathIsBitExact) {
  // The full protocol path (power -> boot -> I2C -> collector) must
  // deliver exactly what the device would produce measured directly.
  Rig rig{RigConfig{}};
  const auto batches = collect_rig_batches(rig, 3);
  const auto fleet = make_fleet(paper_fleet_config());
  for (std::uint32_t d = 0; d < 16; ++d) {
    SramDevice twin = fleet[d];
    ASSERT_GE(batches[d].size(), 3U);
    for (std::size_t k = 0; k < 3; ++k) {
      EXPECT_EQ(batches[d][k], twin.measure())
          << "device " << d << " measurement " << k;
    }
  }
}

TEST(RigProtocol, CorruptFramesAreRetriedTransparently) {
  RigConfig config;
  config.i2c_fault_rate = 0.3;
  Rig rig(config);
  rig.run_cycles(3);
  const auto& m0 = rig.master(0);
  const auto& m1 = rig.master(1);
  EXPECT_GT(m0.crc_retries() + m1.crc_retries(), 0U);
  EXPECT_EQ(m0.frames_dropped() + m1.frames_dropped(), 0U)
      << "0.3 corruption with 3 retries should practically never drop";
  // Data is still bit-exact despite the noise on the bus.
  const auto fleet = make_fleet(paper_fleet_config());
  SramDevice twin = fleet[0];
  const auto ms = rig.collector().board_measurements(0);
  ASSERT_GE(ms.size(), 3U);
  EXPECT_EQ(ms[0], twin.measure());
}

TEST(RigProtocol, JsonlSurvivesRoundTrip) {
  Rig rig{RigConfig{}};
  rig.run_cycles(1);
  Collector back;
  back.load_jsonl(rig.collector().to_jsonl());
  EXPECT_EQ(back.record_count(), rig.collector().record_count());
  EXPECT_EQ(back.records()[0].data, rig.collector().records()[0].data);
}

TEST(RigProtocol, PublishMetricsBridgesHealthAndPerBoardSeries) {
  Rig rig{RigConfig{}};
  rig.run_cycles(2);

  obs::MetricsRegistry registry;
  rig.publish_metrics(registry);
  const obs::MetricsSnapshot snap = registry.snapshot();

  // Rig totals mirror the health ledger.
  const CampaignHealth ledger = rig.health();
  ASSERT_TRUE(snap.gauges.count("rig.coverage"));
  EXPECT_DOUBLE_EQ(snap.gauges.at("rig.coverage"),
                   ledger.months.front().coverage);
  ASSERT_TRUE(snap.gauges.count("rig.boards_reporting"));
  EXPECT_EQ(snap.gauges.at("rig.boards_reporting"), 16.0);

  // One record-count series per slave board, matching the collector.
  for (std::uint32_t d = 0; d < 16; ++d) {
    const std::uint32_t board = board_id_for_device(d);
    const std::string name =
        "rig.board.S" + std::to_string(board) + ".records";
    ASSERT_TRUE(snap.counters.count(name)) << name;
    EXPECT_EQ(snap.counters.at(name),
              rig.collector().board_measurements(board).size());
    EXPECT_GE(snap.counters.at(name), 2U);
  }

  // A pure observer: publishing twice just accumulates counters, and a
  // healthy fault-free rig reports no quarantined boards.
  rig.publish_metrics(registry);
  const obs::MetricsSnapshot twice = registry.snapshot();
  EXPECT_EQ(twice.counters.at("rig.board.S0.records"),
            2 * snap.counters.at("rig.board.S0.records"));
  EXPECT_DOUBLE_EQ(twice.gauges.at("rig.boards_quarantined"), 0.0);
}

TEST(RigProtocol, RequiresSixteenDevices) {
  RigConfig config;
  config.fleet.device_count = 8;
  EXPECT_THROW(Rig{config}, InvalidArgument);
}

// Property: the scope reproduces whatever duty cycle the rig is
// configured with, not just the paper's 3.8/1.6 split.
struct TimingCase {
  double on_s;
  double off_s;
};

class RigTimings : public ::testing::TestWithParam<TimingCase> {};

TEST_P(RigTimings, WaveformTracksConfiguredTiming) {
  const TimingCase timing = GetParam();
  RigConfig config;
  config.timing.on_time_s = timing.on_s;
  config.timing.off_time_s = timing.off_s;
  Rig rig(config);
  rig.run_cycles(3);
  const WaveformStats stats = rig.scope().stats(3);
  ASSERT_GE(stats.cycles, 2U);
  EXPECT_NEAR(stats.on_time_s, timing.on_s, 0.05);
  EXPECT_NEAR(stats.off_time_s, timing.off_s, 0.2);
  EXPECT_NEAR(stats.period_s, timing.on_s + timing.off_s, 0.2);
}

INSTANTIATE_TEST_SUITE_P(
    DutyCycles, RigTimings,
    ::testing::Values(TimingCase{3.8, 1.6},   // the paper's Fig. 3
                      TimingCase{2.5, 2.5},   // symmetric
                      TimingCase{5.0, 1.0},   // long-on
                      TimingCase{2.0, 4.0})); // long-off

}  // namespace
}  // namespace pufaging
