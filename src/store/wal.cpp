#include "store/wal.hpp"

#include "store/crc32c.hpp"

namespace pufaging {

namespace {

constexpr std::uint32_t kWalMagic = 0x4C415750;  // "PWAL" little-endian.
constexpr std::size_t kHeaderBytes = 20;

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

std::uint32_t get_u32(std::string_view bytes, std::size_t at) {
  return static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[at])) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[at + 1]))
          << 8) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[at + 2]))
          << 16) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[at + 3]))
          << 24);
}

}  // namespace

std::string encode_wal_frame(std::uint32_t generation, std::uint32_t sequence,
                             std::string_view payload) {
  if (payload.size() > kMaxWalRecordBytes) {
    throw StoreError(StoreError::Kind::kIo,
                     "wal: record exceeds the frame size bound");
  }
  // CRC covers gen|seq|len|payload: build those 12 bytes first.
  std::string covered;
  covered.reserve(12 + payload.size());
  put_u32(covered, generation);
  put_u32(covered, sequence);
  put_u32(covered, static_cast<std::uint32_t>(payload.size()));
  covered.append(payload);
  const std::uint32_t crc = crc32c(covered);

  std::string frame;
  frame.reserve(kHeaderBytes + payload.size());
  put_u32(frame, kWalMagic);
  frame.append(covered, 0, 12);
  put_u32(frame, crc);
  frame.append(payload);
  return frame;
}

WalScanResult scan_wal(std::string_view image, std::uint32_t generation) {
  WalScanResult result;
  std::size_t pos = 0;
  std::uint32_t expect_seq = 0;
  while (true) {
    if (image.size() - pos < kHeaderBytes) {
      break;  // No room for a header: clean end or torn tail.
    }
    if (get_u32(image, pos) != kWalMagic) {
      break;  // Corrupt frame start.
    }
    const std::uint32_t gen = get_u32(image, pos + 4);
    const std::uint32_t seq = get_u32(image, pos + 8);
    const std::uint32_t len = get_u32(image, pos + 12);
    const std::uint32_t crc = get_u32(image, pos + 16);
    if (len > kMaxWalRecordBytes) {
      break;  // A corrupted length, not a real record.
    }
    if (image.size() - pos - kHeaderBytes < len) {
      break;  // Torn tail: the payload never fully reached the disk.
    }
    // The covered bytes (gen|seq|len|payload) are not contiguous in the
    // frame — the crc field sits between them — so chain the CRC over the
    // two spans.
    const std::uint32_t actual =
        crc32c(image.data() + pos + kHeaderBytes, len,
               crc32c(image.data() + pos + 4, 12, 0));
    if (actual != crc) {
      break;  // Bit rot or a torn sector inside the frame.
    }
    if (gen != generation || seq != expect_seq) {
      break;  // Stale segment or replay discontinuity: stop trusting here.
    }
    result.payloads.emplace_back(image.substr(pos + kHeaderBytes, len));
    pos += kHeaderBytes + len;
    ++expect_seq;
  }
  result.valid_bytes = pos;
  result.torn_tail = pos < image.size();
  return result;
}

WalWriter::WalWriter(Vfs& vfs, std::string path, std::uint32_t generation,
                     std::uint32_t next_sequence, std::uint64_t start_bytes,
                     std::size_t fsync_every)
    : vfs_(vfs),
      path_(std::move(path)),
      file_(vfs, vfs.open_append(path_, false)),
      generation_(generation),
      sequence_(next_sequence),
      bytes_(start_bytes),
      fsync_every_(fsync_every == 0 ? 1 : fsync_every) {}

void WalWriter::append(std::string_view payload) {
  if (poisoned_) {
    throw StoreError(StoreError::Kind::kIo,
                     "wal: writer poisoned by an earlier partial append");
  }
  const std::string frame = encode_wal_frame(generation_, sequence_, payload);
  try {
    vfs_.write_all(file_.id(), frame);
  } catch (const StoreError&) {
    // Roll the file back to the last frame boundary so a half-written
    // frame cannot prefix later appends. (A PowerCutError skips this —
    // the "process" is gone and recovery will cut the torn tail.)
    try {
      vfs_.truncate(path_, bytes_);
    } catch (const StoreError&) {
      poisoned_ = true;
    }
    throw;
  }
  bytes_ += frame.size();
  ++sequence_;
  ++unsynced_;
  if (unsynced_ >= fsync_every_) {
    flush();
  }
}

void WalWriter::flush() {
  if (unsynced_ == 0) {
    return;
  }
  vfs_.fsync(file_.id());
  unsynced_ = 0;
}

}  // namespace pufaging
