#include "keygen/code.hpp"

#include "common/math.hpp"

namespace pufaging {

double BlockCode::failure_probability(double ber) const {
  return binomial_sf(block_length(), ber, correctable() + 1);
}

}  // namespace pufaging
