// Fuzz-style robustness sweep over the chaos-rig input parsers: the
// FaultPlan compact-spec and JSON parsers and the checkpoint JSONL
// loader. These parse operator-supplied CLI strings and on-disk state
// that survives crashes, so the bar is: mutated, truncated or garbage
// input must raise a clean pufaging::Error — never crash, never hang,
// and never be silently accepted when structurally broken.
//
// The corpus is bounded and seeded (no wall-clock dependence), so this
// runs as an ordinary ctest case; crank kRounds up locally for a deeper
// soak.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "testbed/campaign.hpp"
#include "testbed/checkpoint.hpp"
#include "testbed/faults.hpp"

namespace pufaging {
namespace {

constexpr int kRounds = 400;  // mutations per seed input

// Applies one seeded mutation: truncate, delete, insert, replace or
// duplicate at a random position, or append junk.
std::string mutate(Xoshiro256StarStar& rng, const std::string& input) {
  std::string s = input;
  const auto pos = [&](std::size_t extent) {
    return extent == 0 ? 0 : static_cast<std::size_t>(rng.below(extent));
  };
  const char junk[] = "{}[]\",=@:.-+eE0123456789xX\x01\x7f\xff corrupt";
  const char c = junk[rng.below(sizeof(junk) - 1)];
  switch (rng.below(6)) {
    case 0:  // truncate
      s.resize(pos(s.size() + 1));
      break;
    case 1:  // delete one char
      if (!s.empty()) {
        s.erase(pos(s.size()), 1);
      }
      break;
    case 2:  // insert junk
      s.insert(pos(s.size() + 1), 1, c);
      break;
    case 3:  // replace with junk
      if (!s.empty()) {
        s[pos(s.size())] = c;
      }
      break;
    case 4: {  // duplicate a slice
      if (!s.empty()) {
        const std::size_t begin = pos(s.size());
        const std::size_t len = 1 + pos(s.size() - begin);
        s.insert(pos(s.size() + 1), s.substr(begin, len));
      }
      break;
    }
    default: {  // stack a second mutation
      if (!s.empty()) {
        s[pos(s.size())] = c;
        s.resize(pos(s.size() + 1));
      }
      break;
    }
  }
  return s;
}

// A parse attempt may succeed (mutations can cancel out) or raise one of
// our Error types; anything else — a foreign exception or a crash — is a
// robustness bug. Returns true when the input was accepted.
template <typename Fn>
bool expect_clean(Fn&& fn, const std::string& label) {
  try {
    fn();
    return true;
  } catch (const Error&) {
    return false;  // clean rejection
  } catch (const std::exception& e) {
    ADD_FAILURE() << label << ": non-pufaging exception: " << e.what();
    return false;
  } catch (...) {
    ADD_FAILURE() << label << ": unknown exception type";
    return false;
  }
}

TEST(FaultPlanFuzz, CompactSpecMutationsNeverCrash) {
  const std::vector<std::string> seeds = {
      "corrupt=0.01,drop=0.005,nak=0.002,hang=0.001,hang-cycles=16,"
      "reset=0.001,brownout=0.004,brownout-ramp=0.1,stuck=0.002,"
      "dropout=3@6,dropout=0@12",
      "corrupt=0.5",
      "dropout=15@23",
      "",
  };
  Xoshiro256StarStar rng(0xF022001);
  std::size_t accepted = 0;
  for (const std::string& seed : seeds) {
    for (int round = 0; round < kRounds; ++round) {
      std::string input = seed;
      const int stacked = 1 + static_cast<int>(rng.below(4));
      for (int m = 0; m < stacked; ++m) {
        input = mutate(rng, input);
      }
      if (expect_clean([&] { parse_fault_plan(input).validate(); },
                       "compact spec: '" + input + "'")) {
        ++accepted;
      }
    }
  }
  // Sanity: the sweep must actually reject most mutants — if nearly all
  // parse, the mutator (or the parser) is too lax to mean anything.
  EXPECT_LT(accepted, static_cast<std::size_t>(kRounds) * seeds.size());
}

TEST(FaultPlanFuzz, JsonMutationsNeverCrashOrAcceptBrokenRates) {
  FaultPlan plan;
  plan.i2c_corrupt_rate = 0.01;
  plan.i2c_drop_rate = 0.005;
  plan.hang_rate = 0.002;
  plan.brownout_rate = 0.004;
  plan.dropouts.push_back({3, 6});
  const std::string seed = fault_plan_to_json(plan).dump();
  ASSERT_EQ(seed.front(), '{') << "JSON path must trigger on '{'";

  Xoshiro256StarStar rng(0xF022002);
  for (int round = 0; round < 2 * kRounds; ++round) {
    std::string input = seed;
    const int stacked = 1 + static_cast<int>(rng.below(4));
    for (int m = 0; m < stacked; ++m) {
      input = mutate(rng, input);
    }
    try {
      const FaultPlan parsed = parse_fault_plan(input);
      // Accepted plans must satisfy the documented invariants — a parser
      // that lets an out-of-range rate through "because the JSON was
      // well-formed" is accepting garbage.
      EXPECT_NO_THROW(parsed.validate())
          << "parser accepted an invalid plan from: " << input;
    } catch (const Error&) {
      // clean rejection
    } catch (const std::exception& e) {
      ADD_FAILURE() << "non-pufaging exception for '" << input
                    << "': " << e.what();
    }
  }
}

TEST(FaultPlanFuzz, PureGarbageNeverCrashes) {
  Xoshiro256StarStar rng(0xF022003);
  for (int round = 0; round < 2 * kRounds; ++round) {
    const std::size_t len = static_cast<std::size_t>(rng.below(64));
    std::string input;
    for (std::size_t i = 0; i < len; ++i) {
      input.push_back(static_cast<char>(rng.below(256)));
    }
    expect_clean([&] { parse_fault_plan(input).validate(); },
                 "garbage spec");
    if (!input.empty()) {
      input[0] = '{';  // force the JSON branch on raw bytes too
      expect_clean([&] { parse_fault_plan(input).validate(); },
                   "garbage json");
    }
  }
}

// ---------------------------------------------------------------------------
// RetryPolicy parsers and validator.
// ---------------------------------------------------------------------------

TEST(RetryPolicyFuzz, CompactSpecMutationsNeverCrashOrSkipValidation) {
  const std::vector<std::string> seeds = {
      "retries=5,backoff=0.004,watchdog=0.08,quarantine=16,probe=32,"
      "max-backoff=3",
      "retries=0,quarantine=1,probe=1",
      "backoff=0.001",
      "",
  };
  Xoshiro256StarStar rng(0xF022007);
  std::size_t accepted = 0;
  for (const std::string& seed : seeds) {
    for (int round = 0; round < kRounds; ++round) {
      std::string input = seed;
      const int stacked = 1 + static_cast<int>(rng.below(4));
      for (int m = 0; m < stacked; ++m) {
        input = mutate(rng, input);
      }
      try {
        const RetryPolicy parsed = parse_retry_policy(input);
        // The parser promises a validated result: whatever it accepts must
        // re-validate (no NaN backoff or zero quarantine sneaking through).
        EXPECT_NO_THROW(parsed.validate())
            << "parser accepted an unusable policy from: " << input;
        ++accepted;
      } catch (const Error&) {
        // clean rejection
      } catch (const std::exception& e) {
        ADD_FAILURE() << "non-pufaging exception for '" << input
                      << "': " << e.what();
      }
    }
  }
  EXPECT_LT(accepted, static_cast<std::size_t>(kRounds) * seeds.size());
}

TEST(RetryPolicyFuzz, JsonMutationsNeverCrashOrSkipValidation) {
  RetryPolicy policy;
  policy.max_retries = 5;
  policy.backoff_base_s = 0.004;
  policy.quarantine_after = 16;
  const std::string seed = retry_policy_to_json(policy).dump();
  ASSERT_EQ(seed.front(), '{') << "JSON path must trigger on '{'";

  Xoshiro256StarStar rng(0xF022008);
  for (int round = 0; round < 2 * kRounds; ++round) {
    std::string input = seed;
    const int stacked = 1 + static_cast<int>(rng.below(4));
    for (int m = 0; m < stacked; ++m) {
      input = mutate(rng, input);
    }
    try {
      const RetryPolicy parsed = parse_retry_policy(input);
      EXPECT_NO_THROW(parsed.validate())
          << "parser accepted an unusable policy from: " << input;
    } catch (const Error&) {
      // clean rejection
    } catch (const std::exception& e) {
      ADD_FAILURE() << "non-pufaging exception for '" << input
                    << "': " << e.what();
    }
  }
}

TEST(RetryPolicyFuzz, NumericEdgeValuesNeverCrashTheValidator) {
  // Direct field-level fuzz of validate(): every combination of edge
  // values must either pass or raise InvalidArgument — never UB, never a
  // foreign exception (e.g. from the shift in the probe backoff).
  const double doubles[] = {0.0,
                            -0.0,
                            1e-300,
                            -1e-300,
                            1e300,
                            std::numeric_limits<double>::quiet_NaN(),
                            std::numeric_limits<double>::infinity(),
                            -std::numeric_limits<double>::infinity(),
                            std::numeric_limits<double>::denorm_min(),
                            0.005};
  const int ints[] = {std::numeric_limits<int>::min(), -1, 0, 1, 999, 1000,
                      1001, std::numeric_limits<int>::max()};
  const std::uint32_t u32s[] = {0U, 1U, 31U, 32U, 64U,
                                std::numeric_limits<std::uint32_t>::max()};
  for (const double backoff : doubles) {
    for (const int retries : ints) {
      for (const std::uint32_t level : u32s) {
        RetryPolicy policy;
        policy.backoff_base_s = backoff;
        policy.watchdog_margin_s = backoff;
        policy.max_retries = retries;
        policy.quarantine_after = level;
        policy.probe_interval = level;
        policy.max_backoff_level = level;
        try {
          policy.validate();
          // Accepted: exercising the shift the cap protects must be safe.
          BoardFaultState state;
          for (std::uint32_t i = 0; i <= policy.quarantine_after + 2; ++i) {
            state.record_failure(policy);
          }
        } catch (const InvalidArgument&) {
          // clean rejection
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Checkpoint JSONL loader.
// ---------------------------------------------------------------------------

class CheckpointFuzz : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pufaging_ckpt_fuzz_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    // A real (small) campaign checkpoint as the seed corpus: run a
    // campaign against a store, then pull the published snapshot blob.
    CampaignConfig config;
    config.fleet.device_count = 2;
    config.months = 2;
    config.measurements_per_month = 5;
    config.threads = 1;
    config.checkpoint_dir = (dir_ / "seed").string();
    run_campaign(config);
    MeasurementStore store(RealFs::instance(), config.checkpoint_dir);
    ASSERT_TRUE(store.has_state());
    seed_ = store.snapshot();
    ASSERT_FALSE(seed_.empty());
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  // The parser under fuzz is pure (bytes in, checkpoint or Error out), so
  // mutants are fed in memory — no filesystem round trip per round.
  static bool load_mutant(const std::string& content,
                          const std::string& label) {
    return expect_clean([&] { checkpoint_from_jsonl(content); }, label);
  }

  std::filesystem::path dir_;
  std::string seed_;
};

TEST_F(CheckpointFuzz, SeedLoadsCleanly) {
  EXPECT_TRUE(load_mutant(seed_, "unmutated seed"));
}

TEST_F(CheckpointFuzz, ByteLevelMutationsNeverCrash) {
  Xoshiro256StarStar rng(0xF022004);
  for (int round = 0; round < kRounds; ++round) {
    std::string input = seed_;
    const int stacked = 1 + static_cast<int>(rng.below(3));
    for (int m = 0; m < stacked; ++m) {
      input = mutate(rng, input);
    }
    load_mutant(input, "mutated checkpoint");
  }
}

TEST_F(CheckpointFuzz, TruncationsAreRejected) {
  // Prefix truncation models a torn write. The parser is strict: the
  // writer terminates the blob with a health line and a newline, so EVERY
  // proper prefix — including one that only lost the final newline, and
  // including a cut inside the trailing health line — must be rejected as
  // a whole, never partially applied.
  Xoshiro256StarStar rng(0xF022005);
  for (int round = 0; round < kRounds; ++round) {
    const std::size_t cut = static_cast<std::size_t>(rng.below(seed_.size()));
    const bool accepted =
        load_mutant(seed_.substr(0, cut), "truncated checkpoint");
    EXPECT_FALSE(accepted) << "accepted a checkpoint truncated at byte "
                           << cut << " of " << seed_.size();
  }
  // Determinism guard, not just no-crash: cuts at line boundaries leave
  // a prefix of syntactically valid JSONL lines — exactly the truncation
  // a lax loader would partially apply (dropping the health line, or
  // trailing month lines, without noticing). All must be rejected.
  for (std::size_t at = seed_.find('\n'); at != std::string::npos;
       at = seed_.find('\n', at + 1)) {
    EXPECT_FALSE(load_mutant(seed_.substr(0, at), "cut before newline"))
        << "accepted a checkpoint cut at byte " << at;
    if (at + 1 < seed_.size()) {
      EXPECT_FALSE(load_mutant(seed_.substr(0, at + 1), "cut after newline"))
          << "accepted a checkpoint cut at byte " << at + 1;
    }
  }
}

TEST_F(CheckpointFuzz, LineShuffleDropAndGarbage) {
  // Structural mutations: drop a line, duplicate a line, swap two lines.
  std::vector<std::string> lines;
  {
    std::istringstream in(seed_);
    std::string line;
    while (std::getline(in, line)) {
      lines.push_back(line);
    }
  }
  ASSERT_GE(lines.size(), 3U);
  Xoshiro256StarStar rng(0xF022006);
  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::string> mutant = lines;
    switch (rng.below(3)) {
      case 0:
        mutant.erase(mutant.begin() +
                     static_cast<std::ptrdiff_t>(rng.below(mutant.size())));
        break;
      case 1:
        mutant.insert(
            mutant.begin() +
                static_cast<std::ptrdiff_t>(rng.below(mutant.size() + 1)),
            mutant[rng.below(mutant.size())]);
        break;
      default:
        std::swap(mutant[rng.below(mutant.size())],
                  mutant[rng.below(mutant.size())]);
        break;
    }
    std::string content;
    for (const std::string& line : mutant) {
      content += line;
      content += '\n';
    }
    load_mutant(content, "line-mutated checkpoint");
  }
  // And flat-out garbage files.
  for (int round = 0; round < kRounds; ++round) {
    const std::size_t len = static_cast<std::size_t>(rng.below(256));
    std::string content;
    for (std::size_t i = 0; i < len; ++i) {
      content.push_back(static_cast<char>(rng.below(256)));
    }
    const bool accepted = load_mutant(content, "garbage checkpoint");
    EXPECT_FALSE(accepted && !content.empty() && content[0] != '{')
        << "accepted non-JSONL garbage";
  }
}

}  // namespace
}  // namespace pufaging
