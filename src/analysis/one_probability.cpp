#include "analysis/one_probability.hpp"

#include <algorithm>

#include "common/bitkernel.hpp"
#include "common/error.hpp"
#include "common/math.hpp"

namespace pufaging {

OneProbabilityAccumulator::OneProbabilityAccumulator(std::size_t cell_count)
    : ones_(cell_count, 0) {
  if (cell_count == 0) {
    throw InvalidArgument("OneProbabilityAccumulator: cell_count must be > 0");
  }
}

void OneProbabilityAccumulator::add(const BitVector& measurement) {
  if (measurement.size() != ones_.size()) {
    throw InvalidArgument("OneProbabilityAccumulator::add: size mismatch");
  }
  bitkernel::accumulate_ones(measurement.words().data(), measurement.size(),
                             ones_.data());
  ++measurements_;
}

void OneProbabilityAccumulator::add_batch(
    std::span<const BitVector> measurements) {
  for (const BitVector& m : measurements) {
    if (m.size() != ones_.size()) {
      throw InvalidArgument(
          "OneProbabilityAccumulator::add_batch: size mismatch");
    }
  }
  const bitkernel::Kernels& k =
      bitkernel::kernels_for(bitkernel::active_level());
  for (const BitVector& m : measurements) {
    k.accumulate_ones(m.words().data(), m.size(), ones_.data());
  }
  measurements_ += measurements.size();
}

double OneProbabilityAccumulator::one_probability(std::size_t i) const {
  if (measurements_ == 0) {
    throw InvalidArgument(
        "OneProbabilityAccumulator::one_probability: no measurements");
  }
  return static_cast<double>(ones_.at(i)) /
         static_cast<double>(measurements_);
}

std::vector<double> OneProbabilityAccumulator::one_probabilities() const {
  if (measurements_ == 0) {
    throw InvalidArgument(
        "OneProbabilityAccumulator::one_probabilities: no measurements");
  }
  std::vector<double> out(ones_.size());
  const double inv = 1.0 / static_cast<double>(measurements_);
  for (std::size_t i = 0; i < ones_.size(); ++i) {
    out[i] = static_cast<double>(ones_[i]) * inv;
  }
  return out;
}

double OneProbabilityAccumulator::stable_cell_ratio() const {
  if (measurements_ == 0) {
    throw InvalidArgument(
        "OneProbabilityAccumulator::stable_cell_ratio: no measurements");
  }
  std::size_t stable = 0;
  for (std::uint32_t c : ones_) {
    if (c == 0 || c == measurements_) {
      ++stable;
    }
  }
  return static_cast<double>(stable) / static_cast<double>(ones_.size());
}

double OneProbabilityAccumulator::noise_min_entropy() const {
  if (measurements_ == 0) {
    throw InvalidArgument(
        "OneProbabilityAccumulator::noise_min_entropy: no measurements");
  }
  double sum = 0.0;
  const double inv = 1.0 / static_cast<double>(measurements_);
  for (std::uint32_t c : ones_) {
    sum += binary_min_entropy(static_cast<double>(c) * inv);
  }
  return sum / static_cast<double>(ones_.size());
}

void OneProbabilityAccumulator::reset() {
  std::fill(ones_.begin(), ones_.end(), 0U);
  measurements_ = 0;
}

}  // namespace pufaging
