// SP 800-22 test 2.5 (binary matrix rank).
#include <array>
#include <cstdint>

#include "common/math.hpp"
#include "stats/nist.hpp"

namespace pufaging {

namespace {

// Rank of a 32x32 matrix over GF(2); rows are 32-bit words.
int gf2_rank_32(std::array<std::uint32_t, 32>& rows) {
  int rank = 0;
  for (int col = 31; col >= 0 && rank < 32; --col) {
    const std::uint32_t mask = 1U << col;
    int pivot = -1;
    for (int r = rank; r < 32; ++r) {
      if (rows[static_cast<std::size_t>(r)] & mask) {
        pivot = r;
        break;
      }
    }
    if (pivot < 0) {
      continue;
    }
    std::swap(rows[static_cast<std::size_t>(pivot)],
              rows[static_cast<std::size_t>(rank)]);
    for (int r = 0; r < 32; ++r) {
      if (r != rank && (rows[static_cast<std::size_t>(r)] & mask)) {
        rows[static_cast<std::size_t>(r)] ^=
            rows[static_cast<std::size_t>(rank)];
      }
    }
    ++rank;
  }
  return rank;
}

}  // namespace

NistResult nist_matrix_rank(const BitVector& bits) {
  NistResult result;
  result.name = "matrix_rank";
  constexpr std::size_t kM = 32;
  constexpr std::size_t kBitsPerMatrix = kM * kM;
  const std::size_t matrices = bits.size() / kBitsPerMatrix;
  if (matrices < 38) {  // SP 800-22 requires n >= 38 * 1024
    result.applicable = false;
    return result;
  }
  std::size_t full = 0;
  std::size_t full_minus_1 = 0;
  for (std::size_t m = 0; m < matrices; ++m) {
    std::array<std::uint32_t, 32> rows{};
    for (std::size_t r = 0; r < kM; ++r) {
      std::uint32_t word = 0;
      for (std::size_t c = 0; c < kM; ++c) {
        if (bits.get(m * kBitsPerMatrix + r * kM + c)) {
          word |= 1U << c;
        }
      }
      rows[r] = word;
    }
    const int rank = gf2_rank_32(rows);
    if (rank == 32) {
      ++full;
    } else if (rank == 31) {
      ++full_minus_1;
    }
  }
  const std::size_t rest = matrices - full - full_minus_1;
  // Asymptotic rank probabilities for 32x32 GF(2) matrices.
  constexpr double kPFull = 0.2888;
  constexpr double kPFullMinus1 = 0.5776;
  constexpr double kPRest = 0.1336;
  const double n = static_cast<double>(matrices);
  const auto term = [n](double observed, double expected_p) {
    const double expected = n * expected_p;
    return (observed - expected) * (observed - expected) / expected;
  };
  const double chi2 = term(static_cast<double>(full), kPFull) +
                      term(static_cast<double>(full_minus_1), kPFullMinus1) +
                      term(static_cast<double>(rest), kPRest);
  result.statistic = chi2;
  result.p_value = gamma_q(1.0, chi2 / 2.0);  // 2 dof => igamc(1, x/2)
  return result;
}

}  // namespace pufaging
