// Key lifecycle: enroll a 128-bit device key at manufacturing, then
// regenerate it monthly across two years of silicon aging, tracking the
// error-correction margin (paper Section II-A1).
//
//   $ ./key_lifecycle
#include <cstdio>

#include "keygen/key_generator.hpp"
#include "silicon/device_factory.hpp"

using namespace pufaging;

int main() {
  SramDevice device = make_device(paper_fleet_config(), 7);
  KeyGenerator generator = KeyGenerator::standard();

  const Enrollment enrollment = generator.enroll(device);
  std::printf("enrolled 128-bit key on %s\n", device.name().c_str());
  std::printf("  code:           %s\n", generator.code().name().c_str());
  std::printf("  response bits:  %zu\n", enrollment.response_bits);
  std::printf("  helper data:    %zu bits (public)\n\n",
              enrollment.helper.code_offset.size());

  std::printf("%5s  %11s  %11s  %s\n", "month", "corrections",
              "capacity", "key");
  const std::size_t capacity =
      generator.code().correctable() * generator.config().blocks;
  std::size_t worst = 0;
  for (int month = 1; month <= 24; ++month) {
    device.age_months(1.0);
    const Regeneration r = generator.regenerate(device, enrollment);
    if (!r.success || !r.key_matches) {
      std::printf("%5d  key regeneration FAILED\n", month);
      return 1;
    }
    worst = std::max(worst, r.corrected);
    if (month % 3 == 0 || month == 1) {
      std::printf("%5d  %11zu  %11zu  OK\n", month, r.corrected, capacity);
    }
  }

  std::printf("\nkey regenerated correctly every month for two years.\n");
  std::printf("worst month used %zu corrections of %zu guaranteed "
              "capacity (%.0f%% margin remaining).\n",
              worst, capacity,
              100.0 * (1.0 - static_cast<double>(worst) /
                                 static_cast<double>(capacity)));
  std::printf("analytic failure bound at the paper's end-of-life WCHD "
              "(3.25%%): %.2e\n",
              generator.failure_probability(0.0325));
  return 0;
}
