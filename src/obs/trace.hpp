// Scoped-span tracer over the observability clock seam.
//
// A Span is an RAII handle: it stamps the start time when opened and
// records a SpanRecord into the calling thread's shard when it goes out
// of scope. Nesting is tracked per thread (a span opened while another is
// active on the same thread becomes its child), so a trace of the
// campaign reads as a tree: campaign → month → persist → ...
//
// Shares the metrics layer's two contracts: updates touch only
// thread-local state (merged when `finished()` is called), and nothing
// recorded here feeds back into results — under the FakeClock the whole
// trace is deterministic and golden-testable (tests/obs/export_test.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/clock.hpp"

namespace pufaging::obs {

/// One completed span.
struct SpanRecord {
  std::string name;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint32_t span_id = 0;    ///< Unique per tracer; open order.
  std::uint32_t parent_id = 0;  ///< 0 = a root span.

  std::uint64_t duration_ns() const { return end_ns - start_ns; }
};

/// Hard cap on retained spans per tracer — a decade-scale campaign must
/// not grow an unbounded trace; beyond the cap spans are counted but
/// dropped.
constexpr std::size_t kMaxSpansRetained = 1 << 20;

class Tracer {
 public:
  explicit Tracer(MonotonicClock& clock = RealClock::instance());
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Move-only RAII span handle; records on destruction. A default-
  /// constructed (or moved-from) span records nothing.
  class Span {
   public:
    Span() = default;
    Span(Span&& other) noexcept { *this = std::move(other); }
    Span& operator=(Span&& other) noexcept;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { finish(); }

    /// Ends the span now (idempotent).
    void finish();

   private:
    friend class Tracer;
    Tracer* tracer_ = nullptr;
    std::string name_;
    std::uint64_t start_ns_ = 0;
    std::uint32_t span_id_ = 0;
    std::uint32_t parent_id_ = 0;
  };

  /// Opens a span; the calling thread's innermost open span becomes its
  /// parent.
  Span span(std::string_view name);

  MonotonicClock& clock() { return clock_; }

  /// All finished spans, merged across threads and sorted by
  /// (start_ns, span_id) — a stable order under the FakeClock.
  std::vector<SpanRecord> finished() const;

  /// Spans dropped once kMaxSpansRetained was reached.
  std::uint64_t dropped() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::vector<SpanRecord> records;
  };

  Shard& local_shard();
  /// The calling thread's open-span stack for this tracer.
  std::vector<std::uint32_t>& local_stack();
  void record(SpanRecord record);

  MonotonicClock& clock_;
  const std::uint64_t id_;  ///< Unique per tracer instance, never reused.
  mutable std::mutex shards_mu_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::uint32_t next_span_id_ = 0;  ///< Guarded by shards_mu_.
  std::size_t retained_ = 0;        ///< Guarded by shards_mu_.
  std::uint64_t dropped_ = 0;       ///< Guarded by shards_mu_.
};

}  // namespace pufaging::obs
