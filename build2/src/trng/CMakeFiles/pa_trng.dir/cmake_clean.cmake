file(REMOVE_RECURSE
  "CMakeFiles/pa_trng.dir/conditioner.cpp.o"
  "CMakeFiles/pa_trng.dir/conditioner.cpp.o.d"
  "CMakeFiles/pa_trng.dir/estimators.cpp.o"
  "CMakeFiles/pa_trng.dir/estimators.cpp.o.d"
  "CMakeFiles/pa_trng.dir/harvester.cpp.o"
  "CMakeFiles/pa_trng.dir/harvester.cpp.o.d"
  "CMakeFiles/pa_trng.dir/health.cpp.o"
  "CMakeFiles/pa_trng.dir/health.cpp.o.d"
  "CMakeFiles/pa_trng.dir/pipeline.cpp.o"
  "CMakeFiles/pa_trng.dir/pipeline.cpp.o.d"
  "libpa_trng.a"
  "libpa_trng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pa_trng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
