#include "keygen/repetition.hpp"

#include "common/error.hpp"

namespace pufaging {

RepetitionCode::RepetitionCode(std::size_t n) : n_(n) {
  if (n == 0 || n % 2 == 0) {
    throw InvalidArgument("RepetitionCode: n must be odd and positive");
  }
}

std::string RepetitionCode::name() const {
  return "repetition(" + std::to_string(n_) + ",1)";
}

BitVector RepetitionCode::encode(const BitVector& message) const {
  if (message.size() != 1) {
    throw InvalidArgument("RepetitionCode::encode: message must be 1 bit");
  }
  BitVector out(n_);
  if (message.get(0)) {
    for (std::size_t i = 0; i < n_; ++i) {
      out.set(i, true);
    }
  }
  return out;
}

DecodeResult RepetitionCode::decode(const BitVector& word) const {
  if (word.size() != n_) {
    throw InvalidArgument("RepetitionCode::decode: wrong block length");
  }
  const std::size_t ones = word.count_ones();
  DecodeResult result;
  result.message = BitVector(1);
  const bool bit = ones * 2 > n_;
  result.message.set(0, bit);
  result.corrected = bit ? n_ - ones : ones;
  result.success = true;  // Majority decoding always yields a decision.
  return result;
}

}  // namespace pufaging
