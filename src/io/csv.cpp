#include "io/csv.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace pufaging {

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) {
    throw InvalidArgument("CsvWriter: header must not be empty");
  }
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  if (cells.size() != header_.size()) {
    throw InvalidArgument("CsvWriter::add_row: column count mismatch");
  }
  rows_.push_back(cells);
}

void CsvWriter::add_row(const std::vector<double>& cells) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double c : cells) {
    std::ostringstream ss;
    ss.precision(10);
    ss << c;
    text.push_back(ss.str());
  }
  add_row(text);
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quotes = cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) {
    return cell;
  }
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
  return out;
}

std::string CsvWriter::to_string() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

void CsvWriter::write(std::ostream& os) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i > 0) {
      os << ',';
    }
    os << escape(header_[i]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) {
        os << ',';
      }
      os << escape(row[i]);
    }
    os << '\n';
  }
}

void CsvWriter::save(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    throw Error("CsvWriter::save: cannot open " + path);
  }
  write(file);
  if (!file) {
    throw Error("CsvWriter::save: write failed for " + path);
  }
}

}  // namespace pufaging
