// Campaign checkpoint/resume: crash-tolerant long campaigns.
//
// The paper's rig ran for two wall-clock years; the one certainty about a
// two-year run is that the collector host reboots at some point — the
// authors' own setup "was interrupted several times e.g. due to a power
// cut of the building" (§IV). A checkpoint captures everything
// `run_campaign` needs to continue a campaign bit-identically: each
// device's measurement-RNG state and counter (aging is replayed — it is a
// pure function of the config and the month sequence), the resilience
// state machine of every board, the completed part of the fleet series,
// the month-0 references and the health ledger.
//
// Persistence goes through the crash-safe durable store (src/store/):
//
//  - the full state serializes to a JSONL *snapshot* blob (a header line,
//    one line per device, one line per completed month, one health line;
//    doubles that must survive bit-exactly are stored as IEEE-754 hex),
//    published atomically by the store (write → fsync → rename manifest);
//  - each completed month additionally serializes to a small *month
//    ledger* record appended to the store's CRC32C-framed WAL, so a
//    monthly persist is an append, not a full rewrite;
//  - recovery = snapshot + replay of the valid WAL prefix. A torn WAL
//    tail is truncated by the store; a torn snapshot cannot exist by the
//    publication protocol.
//
// The JSONL parser is strict: a blob whose final line is truncated
// mid-record — or that is missing the trailing health line or final
// newline — is rejected as a whole, never partially applied.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/monthly.hpp"
#include "store/store.hpp"
#include "testbed/faults.hpp"

namespace pufaging {

/// Resumable state of one device: the measurement RNG and how many
/// measurements it has produced. Aging state is deliberately absent — it
/// is replayed deterministically on resume.
struct DeviceCheckpoint {
  std::uint32_t device_id = 0;
  std::array<std::uint64_t, 4> rng_state{};
  std::uint64_t measurement_count = 0;
};

/// Everything needed to continue a campaign after the last completed month.
struct CampaignCheckpoint {
  /// First month that has NOT been completed yet (resume starts here).
  std::size_t next_month = 0;

  // Config fingerprint, validated on resume: resuming under a different
  // campaign configuration would silently produce garbage.
  std::uint64_t fleet_seed = 0;
  std::size_t device_count = 0;
  std::size_t months = 0;
  std::size_t measurements_per_month = 0;
  std::string fault_plan_json;  ///< Compact JSON dump of the FaultPlan.

  std::vector<DeviceCheckpoint> devices;
  std::vector<BoardFaultState> fault_states;

  /// Month-0 reference per device; empty BitVector = not yet established
  /// (the board has not delivered a single measurement).
  std::vector<BitVector> references;

  /// Completed monthly snapshots (next_month entries).
  std::vector<FleetMonthMetrics> series;

  CampaignHealth health;
};

/// One completed month, as appended to the store's WAL: the month's fleet
/// metrics plus the *post-month* device/resilience state. Self-contained,
/// so replay only needs the last record's state and every record's
/// metrics.
struct MonthLedger {
  std::size_t month = 0;  ///< The month this record completes.
  std::vector<DeviceCheckpoint> devices;
  std::vector<BoardFaultState> fault_states;
  std::vector<BitVector> references;
  FleetMonthMetrics metrics;
  std::optional<MonthHealth> health;  ///< Present when a fault plan ran.
};

// --- serialization ---------------------------------------------------------

/// Full checkpoint <-> JSONL snapshot blob. The parser is strict: it
/// requires the header first, the health line last, a trailing newline,
/// and exactly the promised number of device and month lines — a
/// truncated or reordered blob is rejected, never partially applied.
std::string checkpoint_to_jsonl(const CampaignCheckpoint& ckpt);
CampaignCheckpoint checkpoint_from_jsonl(const std::string& text);

/// Month ledger <-> single-line JSON (the WAL record payload).
std::string month_ledger_to_json(const MonthLedger& ledger);
MonthLedger month_ledger_from_json(const std::string& text);

/// Applies a replayed ledger to the checkpoint state. Throws ParseError
/// when the record does not continue the state (month discontinuity,
/// device-count mismatch).
void apply_month_ledger(CampaignCheckpoint& ckpt, const MonthLedger& ledger);

// --- store-backed persistence ----------------------------------------------

/// Reconstructs the checkpoint from a recovered store: snapshot blob +
/// WAL replay. Throws IoError when the store holds no state, ParseError
/// when the (CRC-clean) state does not deserialize.
CampaignCheckpoint checkpoint_from_store(const MeasurementStore& store);

/// What `pufaging recover` reports: the store-level recovery (torn-tail
/// truncation, swept files) plus which months were salvaged from where.
struct CheckpointRecovery {
  bool found = false;
  StoreRecoveryReport fs;
  std::size_t device_count = 0;
  std::size_t snapshot_months = 0;       ///< Months carried by the snapshot.
  std::vector<std::size_t> wal_months;   ///< Months salvaged from the WAL.
  std::size_t resume_month = 0;          ///< Where a resume continues.
  std::size_t planned_months = 0;        ///< Config: total campaign months.

  std::string render() const;
};

/// Opens + recovers the store at `dir` and summarizes what survived.
CheckpointRecovery inspect_store(Vfs& vfs, const std::string& dir);

// --- directory-level convenience (production filesystem) -------------------

/// True when `dir` holds checkpoint state (store manifest or legacy file).
bool has_checkpoint(const std::string& dir);

/// Publishes `ckpt` as a snapshot into the store at `dir` (created if
/// missing). Throws StoreError/IoError on filesystem failure.
void save_checkpoint(const std::string& dir, const CampaignCheckpoint& ckpt);

/// Recovers the checkpoint from the store at `dir`. Throws IoError when
/// absent, ParseError when malformed.
CampaignCheckpoint load_checkpoint(const std::string& dir);

/// Bit-exact double <-> hex helpers (IEEE-754 bit pattern as 16 hex
/// digits); used by the checkpoint serializer and its tests.
std::string double_to_hex_bits(double value);
double double_from_hex_bits(const std::string& hex);

/// FleetMonthMetrics round trip with bit-exact doubles (used per JSONL
/// month line).
Json fleet_month_to_json(const FleetMonthMetrics& m);
FleetMonthMetrics fleet_month_from_json(const Json& json);

}  // namespace pufaging
