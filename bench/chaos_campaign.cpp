// Chaos campaign: cost of the fault-injection layer.
//
// Two claims are audited, then timed:
//   1. an all-zero FaultPlan is free — the engine skips the fault path
//      entirely and the output is bit-identical to a fault-free run;
//   2. a composite ~1% fault plan keeps the campaign deterministic (bits
//      identical at any thread count) at a modest throughput cost.
#include <chrono>
#include <cstdlib>

#include "bench_common.hpp"
#include "testbed/campaign.hpp"
#include "testbed/faults.hpp"

namespace pufaging {
namespace {

CampaignConfig base_config(std::size_t threads) {
  CampaignConfig config;
  config.months = 6;
  config.measurements_per_month = 400;
  config.threads = threads;
  return config;
}

FaultPlan composite_plan() {
  // ~1% of transfer attempts fail somewhere in the stack.
  FaultPlan plan;
  plan.i2c_corrupt_rate = 0.005;
  plan.i2c_drop_rate = 0.0025;
  plan.i2c_nak_rate = 0.0025;
  plan.hang_rate = 0.0005;
  plan.reset_rate = 0.0005;
  plan.brownout_rate = 0.001;
  plan.stuck_relay_rate = 0.0005;
  return plan;
}

bool bit_identical(const CampaignResult& a, const CampaignResult& b) {
  if (a.references != b.references || a.series.size() != b.series.size()) {
    return false;
  }
  for (std::size_t m = 0; m < a.series.size(); ++m) {
    const FleetMonthMetrics& x = a.series[m];
    const FleetMonthMetrics& y = b.series[m];
    if (x.wchd_avg != y.wchd_avg || x.noise_entropy_avg != y.noise_entropy_avg ||
        x.puf_entropy != y.puf_entropy || x.coverage != y.coverage ||
        x.devices.size() != y.devices.size()) {
      return false;
    }
    for (std::size_t d = 0; d < x.devices.size(); ++d) {
      if (x.devices[d].device_id != y.devices[d].device_id ||
          x.devices[d].wchd_mean != y.devices[d].wchd_mean ||
          x.devices[d].first_pattern != y.devices[d].first_pattern) {
        return false;
      }
    }
  }
  return true;
}

double time_run(const CampaignConfig& config, CampaignResult& out) {
  const auto start = std::chrono::steady_clock::now();
  out = run_campaign(config);
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

void reproduce() {
  bench::banner("Chaos campaign - fault injection cost and determinism");
  const std::size_t threads = 4;
  std::printf("6 months x 16 devices x 400 measurements/month, %zu threads\n\n",
              threads);

  // Claim 1: the all-zero plan is skipped entirely.
  CampaignResult clean;
  const double clean_s = time_run(base_config(threads), clean);
  CampaignConfig zero_cfg = base_config(threads);
  zero_cfg.faults = FaultPlan{};  // explicit, still all-zero
  CampaignResult zero;
  const double zero_s = time_run(zero_cfg, zero);
  const bool zero_identical = bit_identical(clean, zero);
  std::printf("  fault-free          %6.2f s\n", clean_s);
  std::printf("  all-zero FaultPlan  %6.2f s  (%+5.1f%%, bit-identical: %s)\n",
              zero_s, 100.0 * (zero_s / clean_s - 1.0),
              zero_identical ? "yes" : "NO - BUG");

  // Claim 2: a ~1% composite plan is deterministic across thread counts.
  CampaignConfig chaos1 = base_config(1);
  chaos1.faults = composite_plan();
  CampaignResult faulty_serial;
  const double faulty_s = time_run(chaos1, faulty_serial);
  CampaignConfig chaos8 = base_config(8);
  chaos8.faults = composite_plan();
  CampaignResult faulty_parallel;
  time_run(chaos8, faulty_parallel);
  const bool faulty_identical = bit_identical(faulty_serial, faulty_parallel);
  std::printf("  ~1%% composite plan  %6.2f s  (threads 1 vs 8 identical: %s)\n",
              faulty_s, faulty_identical ? "yes" : "NO - BUG");
  std::printf("\nhealth ledger of the faulty run:\n%s",
              faulty_serial.health.render().c_str());

  if (!zero_identical || !faulty_identical) {
    std::exit(1);
  }
}

void BM_CampaignMonthClean(benchmark::State& state) {
  CampaignConfig config;
  config.months = 0;
  config.measurements_per_month = 200;
  config.threads = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_campaign(config));
  }
}
BENCHMARK(BM_CampaignMonthClean)->Unit(benchmark::kMillisecond);

void BM_CampaignMonthFaulty(benchmark::State& state) {
  CampaignConfig config;
  config.months = 0;
  config.measurements_per_month = 200;
  config.threads = 1;
  config.faults = composite_plan();
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_campaign(config));
  }
}
BENCHMARK(BM_CampaignMonthFaulty)->Unit(benchmark::kMillisecond);

void BM_AdvanceSlot(benchmark::State& state) {
  // The per-slot fault kernel alone, at the composite plan's rates.
  const FaultPlan plan = composite_plan();
  const RetryPolicy policy;
  Xoshiro256StarStar rng(0x5EED);
  BoardFaultState board;
  for (auto _ : state) {
    benchmark::DoNotOptimize(advance_slot(rng, board, plan, policy, false));
  }
}
BENCHMARK(BM_AdvanceSlot);

}  // namespace
}  // namespace pufaging

int main(int argc, char** argv) {
  return pufaging::bench::run(argc, argv, pufaging::reproduce);
}
