#include "keygen/concatenated.hpp"

#include "common/error.hpp"

namespace pufaging {

ConcatenatedCode::ConcatenatedCode(std::shared_ptr<const BlockCode> outer,
                                   std::shared_ptr<const BlockCode> inner)
    : outer_(std::move(outer)), inner_(std::move(inner)) {
  if (!outer_ || !inner_) {
    throw InvalidArgument("ConcatenatedCode: null stage");
  }
  if (inner_->message_length() != 1) {
    throw InvalidArgument(
        "ConcatenatedCode: inner code must carry 1-bit messages");
  }
}

std::size_t ConcatenatedCode::block_length() const {
  return outer_->block_length() * inner_->block_length();
}

std::size_t ConcatenatedCode::message_length() const {
  return outer_->message_length();
}

std::size_t ConcatenatedCode::correctable() const {
  return inner_->correctable() * outer_->block_length() +
         outer_->correctable();
}

std::string ConcatenatedCode::name() const {
  return outer_->name() + " o " + inner_->name();
}

BitVector ConcatenatedCode::encode(const BitVector& message) const {
  const BitVector outer_word = outer_->encode(message);
  const std::size_t n_in = inner_->block_length();
  BitVector out(outer_word.size() * n_in);
  BitVector bit(1);
  for (std::size_t i = 0; i < outer_word.size(); ++i) {
    bit.set(0, outer_word.get(i));
    const BitVector inner_word = inner_->encode(bit);
    for (std::size_t j = 0; j < n_in; ++j) {
      out.set(i * n_in + j, inner_word.get(j));
    }
  }
  return out;
}

double ConcatenatedCode::failure_probability(double ber) const {
  const double inner_fail = inner_->failure_probability(ber);
  return outer_->failure_probability(inner_fail);
}

DecodeResult ConcatenatedCode::decode(const BitVector& word) const {
  if (word.size() != block_length()) {
    throw InvalidArgument("ConcatenatedCode::decode: wrong block length");
  }
  const std::size_t n_in = inner_->block_length();
  const std::size_t n_out = outer_->block_length();
  BitVector outer_word(n_out);
  std::size_t inner_corrected = 0;
  for (std::size_t i = 0; i < n_out; ++i) {
    BitVector block(n_in);
    for (std::size_t j = 0; j < n_in; ++j) {
      block.set(j, word.get(i * n_in + j));
    }
    const DecodeResult inner_result = inner_->decode(block);
    inner_corrected += inner_result.corrected;
    outer_word.set(i, inner_result.success && inner_result.message.get(0));
  }
  DecodeResult result = outer_->decode(outer_word);
  result.corrected += inner_corrected;
  return result;
}

}  // namespace pufaging
