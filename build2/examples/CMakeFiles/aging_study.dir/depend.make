# Empty dependencies file for aging_study.
# This may be replaced when dependencies are built.
