// Operating conditions of a device under test.
//
// The paper runs its long-term test at room temperature and the nominal
// ATmega32u4 supply of 5 V (Section III); the accelerated-aging comparator
// (Maes & van der Leest, HOST 2014) stresses devices at elevated temperature
// and voltage. Both are expressed as operating points.
#pragma once

namespace pufaging {

/// Temperature, supply voltage and power-up ramp at which a device is
/// operated.
struct OperatingPoint {
  double temperature_c = 25.0;  ///< Ambient temperature in degrees Celsius.
  double vdd_v = 5.0;           ///< Supply voltage in volts.

  /// Supply ramp-up time in microseconds. A slower ramp lets each cell's
  /// latch settle closer to its static preference, reducing the effective
  /// power-up noise — the knob that [17] (Cortez et al., TCAD 2015)
  /// adapts at runtime to cancel temperature-induced noise. 50 us is the
  /// reference ramp of the paper's boards.
  double ramp_time_us = 50.0;

  bool operator==(const OperatingPoint&) const = default;
};

/// Room temperature, nominal 5 V supply — the paper's test condition.
OperatingPoint nominal_conditions();

/// A typical accelerated-aging stress point (elevated temperature and
/// overvoltage), as used by burn-in style reliability tests.
OperatingPoint accelerated_conditions();

}  // namespace pufaging
