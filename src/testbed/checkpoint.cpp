#include "testbed/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace pufaging {

namespace {

constexpr int kCheckpointVersion = 1;
constexpr const char* kStateFile = "state.jsonl";

std::string u64_to_hex(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

std::uint64_t u64_from_hex(const std::string& hex) {
  if (hex.empty() || hex.size() > 16) {
    throw ParseError("checkpoint: bad u64 hex '" + hex + "'");
  }
  std::uint64_t v = 0;
  for (char c : hex) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      v |= static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      throw ParseError("checkpoint: bad u64 hex '" + hex + "'");
    }
  }
  return v;
}

Json device_metrics_to_json(const DeviceMonthMetrics& d) {
  Json obj = Json::object();
  obj.set("id", Json(d.device_id));
  obj.set("count", Json(d.measurement_count));
  obj.set("wchd", Json(double_to_hex_bits(d.wchd_mean)));
  obj.set("fhw", Json(double_to_hex_bits(d.fhw_mean)));
  obj.set("stable", Json(double_to_hex_bits(d.stable_ratio)));
  obj.set("noise", Json(double_to_hex_bits(d.noise_entropy)));
  obj.set("first_bits", Json(static_cast<std::uint64_t>(d.first_pattern.size())));
  obj.set("first", Json(d.first_pattern.to_hex()));
  return obj;
}

DeviceMonthMetrics device_metrics_from_json(const Json& obj) {
  DeviceMonthMetrics d;
  d.device_id = static_cast<std::uint32_t>(obj.at("id").as_int());
  d.measurement_count = static_cast<std::uint64_t>(obj.at("count").as_int());
  d.wchd_mean = double_from_hex_bits(obj.at("wchd").as_string());
  d.fhw_mean = double_from_hex_bits(obj.at("fhw").as_string());
  d.stable_ratio = double_from_hex_bits(obj.at("stable").as_string());
  d.noise_entropy = double_from_hex_bits(obj.at("noise").as_string());
  const auto bits = static_cast<std::size_t>(obj.at("first_bits").as_int());
  d.first_pattern = BitVector::from_hex(obj.at("first").as_string(), bits);
  return d;
}

}  // namespace

std::string double_to_hex_bits(double value) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof value);
  std::memcpy(&bits, &value, sizeof bits);
  return u64_to_hex(bits);
}

double double_from_hex_bits(const std::string& hex) {
  const std::uint64_t bits = u64_from_hex(hex);
  double value;
  std::memcpy(&value, &bits, sizeof value);
  return value;
}

Json fleet_month_to_json(const FleetMonthMetrics& m) {
  Json obj = Json::object();
  obj.set("month", Json(double_to_hex_bits(m.month)));
  obj.set("wchd_avg", Json(double_to_hex_bits(m.wchd_avg)));
  obj.set("wchd_wc", Json(double_to_hex_bits(m.wchd_wc)));
  obj.set("fhw_avg", Json(double_to_hex_bits(m.fhw_avg)));
  obj.set("fhw_wc", Json(double_to_hex_bits(m.fhw_wc)));
  obj.set("stable_avg", Json(double_to_hex_bits(m.stable_avg)));
  obj.set("stable_wc", Json(double_to_hex_bits(m.stable_wc)));
  obj.set("noise_avg", Json(double_to_hex_bits(m.noise_entropy_avg)));
  obj.set("noise_wc", Json(double_to_hex_bits(m.noise_entropy_wc)));
  obj.set("bchd_avg", Json(double_to_hex_bits(m.bchd_avg)));
  obj.set("bchd_wc", Json(double_to_hex_bits(m.bchd_wc)));
  obj.set("puf_entropy", Json(double_to_hex_bits(m.puf_entropy)));
  obj.set("expected", Json(static_cast<std::uint64_t>(m.devices_expected)));
  obj.set("reporting", Json(static_cast<std::uint64_t>(m.devices_reporting)));
  obj.set("coverage", Json(double_to_hex_bits(m.coverage)));
  obj.set("degraded", Json(m.degraded));
  Json devices = Json::array();
  for (const DeviceMonthMetrics& d : m.devices) {
    devices.push_back(device_metrics_to_json(d));
  }
  obj.set("devices", std::move(devices));
  return obj;
}

FleetMonthMetrics fleet_month_from_json(const Json& json) {
  FleetMonthMetrics m;
  m.month = double_from_hex_bits(json.at("month").as_string());
  m.wchd_avg = double_from_hex_bits(json.at("wchd_avg").as_string());
  m.wchd_wc = double_from_hex_bits(json.at("wchd_wc").as_string());
  m.fhw_avg = double_from_hex_bits(json.at("fhw_avg").as_string());
  m.fhw_wc = double_from_hex_bits(json.at("fhw_wc").as_string());
  m.stable_avg = double_from_hex_bits(json.at("stable_avg").as_string());
  m.stable_wc = double_from_hex_bits(json.at("stable_wc").as_string());
  m.noise_entropy_avg = double_from_hex_bits(json.at("noise_avg").as_string());
  m.noise_entropy_wc = double_from_hex_bits(json.at("noise_wc").as_string());
  m.bchd_avg = double_from_hex_bits(json.at("bchd_avg").as_string());
  m.bchd_wc = double_from_hex_bits(json.at("bchd_wc").as_string());
  m.puf_entropy = double_from_hex_bits(json.at("puf_entropy").as_string());
  m.devices_expected = static_cast<std::size_t>(json.at("expected").as_int());
  m.devices_reporting = static_cast<std::size_t>(json.at("reporting").as_int());
  m.coverage = double_from_hex_bits(json.at("coverage").as_string());
  m.degraded = json.at("degraded").as_bool();
  for (const Json& d : json.at("devices").as_array()) {
    m.devices.push_back(device_metrics_from_json(d));
  }
  return m;
}

bool has_checkpoint(const std::string& dir) {
  std::error_code ec;
  return std::filesystem::is_regular_file(
      std::filesystem::path(dir) / kStateFile, ec);
}

void save_checkpoint(const std::string& dir, const CampaignCheckpoint& ckpt) {
  if (ckpt.devices.size() != ckpt.fault_states.size() ||
      ckpt.devices.size() != ckpt.references.size()) {
    throw InvalidArgument(
        "save_checkpoint: device/fault-state/reference counts differ");
  }
  const std::filesystem::path base(dir);
  std::error_code ec;
  std::filesystem::create_directories(base, ec);
  if (ec) {
    throw IoError("save_checkpoint: cannot create '" + dir +
                  "': " + ec.message());
  }

  std::ostringstream os;
  {
    Json header = Json::object();
    header.set("kind", Json("header"));
    header.set("version", Json(kCheckpointVersion));
    header.set("next_month", Json(static_cast<std::uint64_t>(ckpt.next_month)));
    header.set("fleet_seed", Json(u64_to_hex(ckpt.fleet_seed)));
    header.set("device_count",
               Json(static_cast<std::uint64_t>(ckpt.device_count)));
    header.set("months", Json(static_cast<std::uint64_t>(ckpt.months)));
    header.set("measurements_per_month",
               Json(static_cast<std::uint64_t>(ckpt.measurements_per_month)));
    header.set("fault_plan", Json(ckpt.fault_plan_json));
    os << header.dump() << "\n";
  }
  for (std::size_t d = 0; d < ckpt.devices.size(); ++d) {
    const DeviceCheckpoint& dev = ckpt.devices[d];
    Json line = Json::object();
    line.set("kind", Json("device"));
    line.set("id", Json(dev.device_id));
    Json rng = Json::array();
    for (std::uint64_t word : dev.rng_state) {
      rng.push_back(Json(u64_to_hex(word)));
    }
    line.set("rng", std::move(rng));
    line.set("count", Json(dev.measurement_count));
    line.set("fault_state", board_fault_state_to_json(ckpt.fault_states[d]));
    line.set("reference_bits",
             Json(static_cast<std::uint64_t>(ckpt.references[d].size())));
    line.set("reference", Json(ckpt.references[d].to_hex()));
    os << line.dump() << "\n";
  }
  for (const FleetMonthMetrics& m : ckpt.series) {
    Json line = fleet_month_to_json(m);
    line.set("kind", Json("month"));
    os << line.dump() << "\n";
  }
  {
    Json line = Json::object();
    line.set("kind", Json("health"));
    line.set("months", campaign_health_to_json(ckpt.health));
    os << line.dump() << "\n";
  }

  const std::filesystem::path tmp = base / (std::string(kStateFile) + ".tmp");
  const std::filesystem::path final_path = base / kStateFile;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw IoError("save_checkpoint: cannot write '" + tmp.string() + "'");
    }
    out << os.str();
    out.flush();
    if (!out) {
      throw IoError("save_checkpoint: write failed for '" + tmp.string() +
                    "'");
    }
  }
  std::filesystem::rename(tmp, final_path, ec);
  if (ec) {
    throw IoError("save_checkpoint: cannot rename into '" +
                  final_path.string() + "': " + ec.message());
  }
}

CampaignCheckpoint load_checkpoint(const std::string& dir) {
  const std::filesystem::path path = std::filesystem::path(dir) / kStateFile;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw IoError("load_checkpoint: cannot open '" + path.string() + "'");
  }
  CampaignCheckpoint ckpt;
  bool have_header = false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    const Json obj = Json::parse(line);
    const std::string& kind = obj.at("kind").as_string();
    if (kind == "header") {
      if (obj.at("version").as_int() != kCheckpointVersion) {
        throw ParseError("load_checkpoint: unsupported checkpoint version");
      }
      ckpt.next_month = static_cast<std::size_t>(obj.at("next_month").as_int());
      ckpt.fleet_seed = u64_from_hex(obj.at("fleet_seed").as_string());
      ckpt.device_count =
          static_cast<std::size_t>(obj.at("device_count").as_int());
      ckpt.months = static_cast<std::size_t>(obj.at("months").as_int());
      ckpt.measurements_per_month = static_cast<std::size_t>(
          obj.at("measurements_per_month").as_int());
      ckpt.fault_plan_json = obj.at("fault_plan").as_string();
      have_header = true;
    } else if (kind == "device") {
      DeviceCheckpoint dev;
      dev.device_id = static_cast<std::uint32_t>(obj.at("id").as_int());
      const Json::Array& rng = obj.at("rng").as_array();
      if (rng.size() != dev.rng_state.size()) {
        throw ParseError("load_checkpoint: bad RNG state length");
      }
      for (std::size_t i = 0; i < rng.size(); ++i) {
        dev.rng_state[i] = u64_from_hex(rng[i].as_string());
      }
      dev.measurement_count =
          static_cast<std::uint64_t>(obj.at("count").as_int());
      ckpt.devices.push_back(dev);
      ckpt.fault_states.push_back(
          board_fault_state_from_json(obj.at("fault_state")));
      const auto bits =
          static_cast<std::size_t>(obj.at("reference_bits").as_int());
      ckpt.references.push_back(
          BitVector::from_hex(obj.at("reference").as_string(), bits));
    } else if (kind == "month") {
      ckpt.series.push_back(fleet_month_from_json(obj));
    } else if (kind == "health") {
      ckpt.health = campaign_health_from_json(obj.at("months"));
    } else {
      throw ParseError("load_checkpoint: unknown record kind '" + kind + "'");
    }
  }
  if (!have_header) {
    throw ParseError("load_checkpoint: missing header line");
  }
  if (ckpt.devices.size() != ckpt.device_count) {
    throw ParseError("load_checkpoint: device line count mismatch");
  }
  if (ckpt.series.size() != ckpt.next_month) {
    throw ParseError("load_checkpoint: month line count mismatch");
  }
  return ckpt;
}

}  // namespace pufaging
