// SP 800-22 tests 2.3 (runs), 2.4 (longest run of ones in a block).
#include <array>
#include <cmath>

#include "common/math.hpp"
#include "stats/nist.hpp"

namespace pufaging {

NistResult nist_runs(const BitVector& bits) {
  NistResult r;
  r.name = "runs";
  const std::size_t n = bits.size();
  if (n < 100) {
    r.applicable = false;
    return r;
  }
  const double pi =
      static_cast<double>(bits.count_ones()) / static_cast<double>(n);
  // Prerequisite frequency check from the SP 800-22 specification.
  const double tau = 2.0 / std::sqrt(static_cast<double>(n));
  if (std::fabs(pi - 0.5) >= tau) {
    r.applicable = true;
    r.p_value = 0.0;  // Fails by prerequisite: sequence is too biased.
    return r;
  }
  std::size_t v_obs = 1;
  for (std::size_t i = 1; i < n; ++i) {
    if (bits.get(i) != bits.get(i - 1)) {
      ++v_obs;
    }
  }
  const double nn = static_cast<double>(n);
  const double num =
      std::fabs(static_cast<double>(v_obs) - 2.0 * nn * pi * (1.0 - pi));
  const double den = 2.0 * std::sqrt(2.0 * nn) * pi * (1.0 - pi);
  r.statistic = static_cast<double>(v_obs);
  r.p_value = std::erfc(num / den);
  return r;
}

NistResult nist_longest_run(const BitVector& bits) {
  NistResult r;
  r.name = "longest_run";
  const std::size_t n = bits.size();
  if (n < 128) {
    r.applicable = false;
    return r;
  }

  // Parameter selection per SP 800-22 Table 2-4.
  std::size_t m;           // block length
  std::size_t k;           // degrees of freedom
  std::array<double, 7> pi{};
  std::array<std::size_t, 7> v_edges{};  // category boundaries (lowest..highest)
  if (n < 6272) {
    m = 8;
    k = 3;
    pi = {0.2148, 0.3672, 0.2305, 0.1875, 0, 0, 0};
    v_edges = {1, 2, 3, 4, 0, 0, 0};
  } else if (n < 750000) {
    m = 128;
    k = 5;
    pi = {0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124, 0};
    v_edges = {4, 5, 6, 7, 8, 9, 0};
  } else {
    m = 10000;
    k = 6;
    pi = {0.0882, 0.2092, 0.2483, 0.1933, 0.1208, 0.0675, 0.0727};
    v_edges = {10, 11, 12, 13, 14, 15, 16};
  }

  const std::size_t blocks = n / m;
  std::array<std::size_t, 7> v{};
  for (std::size_t b = 0; b < blocks; ++b) {
    std::size_t longest = 0;
    std::size_t current = 0;
    for (std::size_t i = 0; i < m; ++i) {
      if (bits.get(b * m + i)) {
        ++current;
        longest = std::max(longest, current);
      } else {
        current = 0;
      }
    }
    // Clamp into categories.
    std::size_t cat = 0;
    if (longest <= v_edges[0]) {
      cat = 0;
    } else if (longest >= v_edges[k]) {
      cat = k;
    } else {
      cat = longest - v_edges[0];
    }
    ++v[cat];
  }

  double chi2 = 0.0;
  const double nb = static_cast<double>(blocks);
  for (std::size_t i = 0; i <= k; ++i) {
    const double expect = nb * pi[i];
    chi2 += (static_cast<double>(v[i]) - expect) *
            (static_cast<double>(v[i]) - expect) / expect;
  }
  r.statistic = chi2;
  r.p_value = gamma_q(static_cast<double>(k) / 2.0, chi2 / 2.0);
  return r;
}

}  // namespace pufaging
