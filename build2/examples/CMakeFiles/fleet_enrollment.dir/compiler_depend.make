# Empty compiler generated dependencies file for fleet_enrollment.
# This may be replaced when dependencies are built.
