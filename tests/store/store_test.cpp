// MeasurementStore: atomic snapshot publication, WAL appends, recovery
// (torn tails, stray sweeps, legacy migration) and typed failure modes.
#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"
#include "store/faultfs.hpp"
#include "store/store.hpp"

namespace pufaging {
namespace {

TEST(Store, FreshDirectoryHasNoState) {
  FaultFs fs;
  MeasurementStore store(fs, "db");
  EXPECT_FALSE(store.has_state());
  EXPECT_FALSE(MeasurementStore::present(fs, "db"));
  EXPECT_EQ(store.generation(), 0U);
  EXPECT_THROW(store.append_record("r"), StoreError);
}

TEST(Store, PublishAppendReopenRoundTrip) {
  FaultFs fs;
  {
    MeasurementStore store(fs, "db");
    store.publish_snapshot("SNAP-1");
    store.append_record("month-0");
    store.append_record("month-1");
    store.flush();
  }
  MeasurementStore store(fs, "db");
  EXPECT_TRUE(store.has_state());
  EXPECT_EQ(store.generation(), 1U);
  EXPECT_EQ(store.snapshot(), "SNAP-1");
  ASSERT_EQ(store.wal_records().size(), 2U);
  EXPECT_EQ(store.wal_records()[0], "month-0");
  EXPECT_EQ(store.wal_records()[1], "month-1");
  EXPECT_FALSE(store.recovery().torn_tail);
}

TEST(Store, SnapshotCompactionStartsAFreshGeneration) {
  FaultFs fs;
  MeasurementStore store(fs, "db");
  store.publish_snapshot("SNAP-1");
  store.append_record("a");
  store.publish_snapshot("SNAP-2");
  EXPECT_EQ(store.generation(), 2U);
  EXPECT_TRUE(store.wal_records().empty());
  store.append_record("b");
  store.flush();
  MeasurementStore reopened(fs, "db");
  EXPECT_EQ(reopened.snapshot(), "SNAP-2");
  ASSERT_EQ(reopened.wal_records().size(), 1U);
  EXPECT_EQ(reopened.wal_records()[0], "b");
  // The superseded generation's files were cleaned up.
  for (const std::string& name : fs.list_dir("db")) {
    EXPECT_EQ(name.find("00000001"), std::string::npos)
        << "stale generation file survived: " << name;
  }
}

TEST(Store, RecoveryTruncatesATornWalTail) {
  FaultFs fs;
  {
    MeasurementStore store(fs, "db");
    store.publish_snapshot("S");
    store.append_record("good-0");
    store.append_record("good-1");
    store.flush();
  }
  // Simulate a torn final append: extra garbage bytes after the frames.
  {
    VfsFile file(fs, fs.open_append("db/wal-00000001.log", false));
    fs.write_all(file.id(), "PWALgarbage-that-is-not-a-frame");
  }
  MeasurementStore store(fs, "db");
  EXPECT_TRUE(store.recovery().torn_tail);
  EXPECT_GT(store.recovery().wal_bytes_truncated, 0U);
  ASSERT_EQ(store.wal_records().size(), 2U);
  // The truncation is physical: a second recovery sees a clean log.
  MeasurementStore again(fs, "db");
  EXPECT_FALSE(again.recovery().torn_tail);
  EXPECT_EQ(again.wal_records().size(), 2U);
}

TEST(Store, BitRotInTheWalCutsFromTheFlippedRecord) {
  FaultFs fs;
  {
    MeasurementStore store(fs, "db");
    store.publish_snapshot("S");
    store.append_record(std::string(200, 'a'));
    store.append_record(std::string(200, 'b'));
    store.flush();
  }
  fs.fsync_dir("db");
  // Flip one durable bit inside the FIRST record's payload.
  fs.corrupt_durable("db/wal-00000001.log", 30, 0x10);
  MeasurementStore store(fs, "db");
  EXPECT_TRUE(store.recovery().torn_tail);
  EXPECT_EQ(store.wal_records().size(), 0U);
  EXPECT_TRUE(store.has_state());  // the snapshot itself is intact
}

TEST(Store, CorruptManifestIsATypedCorruptionError) {
  FaultFs fs;
  {
    MeasurementStore store(fs, "db");
    store.publish_snapshot("S");
  }
  fs.fsync_dir("db");
  fs.corrupt_durable("db/MANIFEST", 3, 0xFF);
  fs.power_cut();
  try {
    MeasurementStore store(fs, "db");
    FAIL() << "expected StoreError(kCorrupt)";
  } catch (const StoreError& e) {
    EXPECT_EQ(e.kind(), StoreError::Kind::kCorrupt);
  }
}

TEST(Store, StrayFilesFromInterruptedPublicationsAreSwept) {
  FaultFs fs;
  {
    MeasurementStore store(fs, "db");
    store.publish_snapshot("S");
  }
  // Leftovers of a publication that never reached the manifest rename.
  {
    VfsFile a(fs, fs.open_append("db/snap-00000007", true));
    fs.write_all(a.id(), "half-written");
    VfsFile b(fs, fs.open_append("db/wal-00000007.log", true));
    VfsFile c(fs, fs.open_append("db/MANIFEST.tmp", true));
  }
  MeasurementStore store(fs, "db");
  EXPECT_EQ(store.recovery().swept.size(), 3U);
  EXPECT_FALSE(fs.exists("db/snap-00000007"));
  EXPECT_FALSE(fs.exists("db/wal-00000007.log"));
  EXPECT_FALSE(fs.exists("db/MANIFEST.tmp"));
  EXPECT_EQ(store.snapshot(), "S");  // the live generation is untouched
}

TEST(Store, LegacyStateFileIsMigrated) {
  FaultFs fs;
  fs.create_dirs("db");
  {
    VfsFile file(fs, fs.open_append("db/state.jsonl", true));
    fs.write_all(file.id(), "LEGACY-CHECKPOINT");
    fs.fsync(file.id());
  }
  fs.fsync_dir("db");
  EXPECT_TRUE(MeasurementStore::present(fs, "db"));
  MeasurementStore store(fs, "db");
  EXPECT_TRUE(store.has_state());
  EXPECT_TRUE(store.recovery().legacy_migrated);
  EXPECT_EQ(store.snapshot(), "LEGACY-CHECKPOINT");
  EXPECT_EQ(store.generation(), 0U);
  // The first publication moves it into the manifest scheme and removes
  // the legacy file.
  store.publish_snapshot("MODERN");
  EXPECT_FALSE(fs.exists("db/state.jsonl"));
  MeasurementStore reopened(fs, "db");
  EXPECT_EQ(reopened.snapshot(), "MODERN");
  EXPECT_FALSE(reopened.recovery().legacy_migrated);
}

TEST(Store, FailedPublishLeavesThePreviousGenerationLive) {
  FsFaultPlan plan;
  FaultFs fs(plan);
  MeasurementStore store(fs, "db");
  store.publish_snapshot("GOOD");
  store.append_record("r0");
  store.flush();
  // Exhaust the disk, then try to compact: the publish must fail with a
  // typed error and the old generation must stay fully usable.
  plan.enospc_after_bytes = fs.bytes_written() + 8;
  fs.set_plan(plan);
  try {
    store.publish_snapshot(std::string(4096, 'x'));
    FAIL() << "expected StoreError(kNoSpace)";
  } catch (const StoreError& e) {
    EXPECT_EQ(e.kind(), StoreError::Kind::kNoSpace);
  }
  EXPECT_EQ(store.generation(), 1U);
  EXPECT_EQ(store.snapshot(), "GOOD");
  // The WAL of the old generation still accepts appends.
  plan.enospc_after_bytes = 0;
  fs.set_plan(plan);
  store.append_record("r1");
  store.flush();
  MeasurementStore reopened(fs, "db");
  EXPECT_EQ(reopened.snapshot(), "GOOD");
  ASSERT_EQ(reopened.wal_records().size(), 2U);
  EXPECT_EQ(reopened.wal_records()[1], "r1");
}

TEST(Store, DroppedFsyncsSurfaceAsTypedCorruptionNeverSilentGarbage) {
  // A lying drive: every fsync is acknowledged but persists nothing. No
  // protocol can make that durable — the guarantee under test is honesty:
  // after the cut, the manifest *name* survived (fsync_dir captures the
  // namespace) with none of its bytes, and the store must refuse it with
  // a typed corruption error instead of loading a partial state.
  FsFaultPlan plan;
  plan.drop_fsync_rate = 1.0;
  FaultFs fs(plan);
  {
    MeasurementStore store(fs, "db");
    store.publish_snapshot("S");
    store.append_record("r0");
    store.flush();
  }
  EXPECT_GT(fs.fsyncs_dropped(), 0U);
  fs.power_cut();
  EXPECT_TRUE(MeasurementStore::present(fs, "db"));
  try {
    MeasurementStore store(fs, "db");
    FAIL() << "expected StoreError(kCorrupt)";
  } catch (const StoreError& e) {
    EXPECT_EQ(e.kind(), StoreError::Kind::kCorrupt);
  }
}

TEST(Store, FsyncBatchingHonoursFsyncEvery) {
  FaultFs fs;
  StoreOptions opts;
  opts.fsync_every = 3;
  MeasurementStore store(fs, "db", opts);
  store.publish_snapshot("S");
  store.append_record("r0");
  store.append_record("r1");
  // Two appends, batch of three: not durable yet.
  EXPECT_EQ(scan_wal(fs.durable_contents("db/wal-00000001.log"), 1)
                .payloads.size(),
            0U);
  store.append_record("r2");  // completes the batch
  EXPECT_EQ(scan_wal(fs.durable_contents("db/wal-00000001.log"), 1)
                .payloads.size(),
            3U);
  store.append_record("r3");
  store.flush();  // explicit flush for the tail
  EXPECT_EQ(scan_wal(fs.durable_contents("db/wal-00000001.log"), 1)
                .payloads.size(),
            4U);
}

}  // namespace
}  // namespace pufaging
