file(REMOVE_RECURSE
  "CMakeFiles/pa_testbed_test.dir/testbed/boards_test.cpp.o"
  "CMakeFiles/pa_testbed_test.dir/testbed/boards_test.cpp.o.d"
  "CMakeFiles/pa_testbed_test.dir/testbed/clock_test.cpp.o"
  "CMakeFiles/pa_testbed_test.dir/testbed/clock_test.cpp.o.d"
  "CMakeFiles/pa_testbed_test.dir/testbed/collector_test.cpp.o"
  "CMakeFiles/pa_testbed_test.dir/testbed/collector_test.cpp.o.d"
  "CMakeFiles/pa_testbed_test.dir/testbed/faults_fuzz_test.cpp.o"
  "CMakeFiles/pa_testbed_test.dir/testbed/faults_fuzz_test.cpp.o.d"
  "CMakeFiles/pa_testbed_test.dir/testbed/faults_test.cpp.o"
  "CMakeFiles/pa_testbed_test.dir/testbed/faults_test.cpp.o.d"
  "CMakeFiles/pa_testbed_test.dir/testbed/i2c_test.cpp.o"
  "CMakeFiles/pa_testbed_test.dir/testbed/i2c_test.cpp.o.d"
  "CMakeFiles/pa_testbed_test.dir/testbed/power_test.cpp.o"
  "CMakeFiles/pa_testbed_test.dir/testbed/power_test.cpp.o.d"
  "CMakeFiles/pa_testbed_test.dir/testbed/rig_test.cpp.o"
  "CMakeFiles/pa_testbed_test.dir/testbed/rig_test.cpp.o.d"
  "pa_testbed_test"
  "pa_testbed_test.pdb"
  "pa_testbed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pa_testbed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
