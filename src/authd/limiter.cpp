#include "authd/limiter.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/sha256.hpp"

namespace pufaging::authd {
namespace {

constexpr char kEventMagic[5] = {'P', 'A', 'L', 'K', '1'};
constexpr char kSnapshotMagic[5] = {'P', 'A', 'L', 'S', '1'};

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

/// Little-endian cursor; every shortfall names the failing offset so a
/// corrupt ladder WAL is diagnosable from the daemon log alone.
class Reader {
 public:
  Reader(std::string_view bytes, const char* what)
      : bytes_(bytes), what_(what) {}

  void magic(const char (&expect)[5]) {
    need(5);
    if (bytes_.compare(pos_, 5, expect, 5) != 0) {
      throw ParseError(std::string(what_) + ": bad magic at offset " +
                       std::to_string(pos_));
    }
    pos_ += 5;
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<std::uint8_t>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<std::uint8_t>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  void done() const {
    if (pos_ != bytes_.size()) {
      throw ParseError(std::string(what_) + ": " +
                       std::to_string(bytes_.size() - pos_) +
                       " trailing byte(s) at offset " + std::to_string(pos_));
    }
  }

 private:
  void need(std::size_t n) const {
    if (bytes_.size() - pos_ < n) {
      throw ParseError(std::string(what_) + ": truncated (need " +
                       std::to_string(n) + " byte(s) at offset " +
                       std::to_string(pos_) + ", have " +
                       std::to_string(bytes_.size() - pos_) + ")");
    }
  }

  std::string_view bytes_;
  const char* what_;
  std::size_t pos_ = 0;
};

void put_entry(std::string& out, std::uint64_t device_id,
               const LockoutEntry& entry) {
  put_u64(out, device_id);
  put_u32(out, entry.strikes);
  put_u32(out, entry.level);
  put_u64(out, entry.locked_until_ns);
}

}  // namespace

RateLimiter::RateLimiter(const RateLimiterConfig& config) : config_(config) {
  if (config_.tokens_per_sec < 0.0 || !std::isfinite(config_.tokens_per_sec)) {
    throw InvalidArgument("RateLimiter: tokens_per_sec must be finite >= 0");
  }
}

std::uint64_t RateLimiter::try_acquire(std::uint64_t device_id,
                                       std::uint64_t now_ns) {
  if (config_.burst == 0) {
    return 0;  // Limiting disabled.
  }
  auto it = buckets_.find(device_id);
  if (it == buckets_.end()) {
    // Bound the table before inserting: evict the stalest bucket. A
    // forgotten bucket refills to full, which only admits more.
    if (buckets_.size() >= config_.max_tracked && !buckets_.empty()) {
      auto stalest = buckets_.begin();
      for (auto b = buckets_.begin(); b != buckets_.end(); ++b) {
        if (b->second.refilled_ns < stalest->second.refilled_ns) {
          stalest = b;
        }
      }
      buckets_.erase(stalest);
    }
    Bucket fresh;
    fresh.tokens = static_cast<double>(config_.burst);
    fresh.refilled_ns = now_ns;
    it = buckets_.emplace(device_id, fresh).first;
  }
  Bucket& bucket = it->second;
  if (now_ns > bucket.refilled_ns) {
    const double elapsed_s =
        static_cast<double>(now_ns - bucket.refilled_ns) * 1e-9;
    bucket.tokens = std::min(static_cast<double>(config_.burst),
                             bucket.tokens +
                                 elapsed_s * config_.tokens_per_sec);
    bucket.refilled_ns = now_ns;
  } else if (now_ns < bucket.refilled_ns) {
    // The clock regressed below the last refill mark (suspend/resume,
    // clock reuse across restarts). Left alone, the bucket would not
    // refill until the clock catches back up to the stale future mark —
    // a rewound clock must never freeze a bucket, so resynchronize the
    // mark instead. No tokens are granted for the rewind itself.
    bucket.refilled_ns = now_ns;
  }
  if (bucket.tokens >= 1.0) {
    bucket.tokens -= 1.0;
    return 0;
  }
  if (config_.tokens_per_sec == 0.0) {
    return ~0ULL;  // Never refills: effectively a permanent limit.
  }
  const double deficit_s = (1.0 - bucket.tokens) / config_.tokens_per_sec;
  return now_ns + static_cast<std::uint64_t>(std::ceil(deficit_s * 1e9));
}

std::string serialize_lockout_event(const LockoutEvent& event) {
  std::string out;
  out.reserve(5 + 24);
  out.append(kEventMagic, 5);
  put_entry(out, event.device_id, event.entry);
  return out;
}

LockoutEvent parse_lockout_event(std::string_view bytes) {
  Reader r(bytes, "LockoutEvent");
  r.magic(kEventMagic);
  LockoutEvent event;
  event.device_id = r.u64();
  event.entry.strikes = r.u32();
  event.entry.level = r.u32();
  event.entry.locked_until_ns = r.u64();
  r.done();
  return event;
}

LockoutLadder::LockoutLadder(const LockoutConfig& config) : config_(config) {
  if (config_.retry_budget == 0) {
    throw InvalidArgument("LockoutLadder: retry_budget must be > 0");
  }
  if (config_.max_level > 31) {
    throw InvalidArgument("LockoutLadder: max_level must be <= 31");
  }
  if (config_.base_lockout_ns == 0) {
    throw InvalidArgument("LockoutLadder: base_lockout_ns must be > 0");
  }
}

std::uint64_t LockoutLadder::check(std::uint64_t device_id,
                                   std::uint64_t now_ns) const {
  const auto it = entries_.find(device_id);
  if (it == entries_.end() || it->second.locked_until_ns <= now_ns) {
    return 0;
  }
  return it->second.locked_until_ns;
}

std::optional<LockoutEvent> LockoutLadder::on_decision(
    std::uint64_t device_id, bool accepted, bool strike,
    std::uint64_t now_ns) {
  auto it = entries_.find(device_id);
  if (accepted) {
    if (it == entries_.end()) {
      return std::nullopt;  // Clean device stayed clean: nothing durable.
    }
    entries_.erase(it);
    // Resetting to the implicit clean state is itself a transition the
    // WAL must carry, or a replayed log would revive the old lockout.
    return LockoutEvent{device_id, LockoutEntry{}};
  }
  if (!strike) {
    // Unknown-device rejects (and decode rejects when the caller doesn't
    // count them) don't walk the ladder: there is no enrolled identity
    // being guessed at, or the caller treats them as channel noise.
    return std::nullopt;
  }
  LockoutEntry entry = it != entries_.end() ? it->second : LockoutEntry{};
  entry.strikes += 1;
  if (entry.strikes >= config_.retry_budget) {
    const std::uint32_t shift = std::min(entry.level, config_.max_level);
    entry.locked_until_ns = now_ns + (config_.base_lockout_ns << shift);
    entry.level = std::min(entry.level + 1, config_.max_level);
    entry.strikes = 0;
  }
  entries_[device_id] = entry;
  return LockoutEvent{device_id, entry};
}

std::size_t LockoutLadder::locked(std::uint64_t now_ns) const {
  std::size_t n = 0;
  for (const auto& [id, entry] : entries_) {
    if (entry.locked_until_ns > now_ns) {
      ++n;
    }
  }
  return n;
}

const LockoutEntry* LockoutLadder::find(std::uint64_t device_id) const {
  const auto it = entries_.find(device_id);
  return it != entries_.end() ? &it->second : nullptr;
}

void LockoutLadder::apply_event(const LockoutEvent& event) {
  if (event.entry == LockoutEntry{}) {
    entries_.erase(event.device_id);
  } else {
    entries_[event.device_id] = event.entry;
  }
}

std::string LockoutLadder::serialize_snapshot() const {
  std::string out;
  out.reserve(5 + 8 + entries_.size() * 24);
  out.append(kSnapshotMagic, 5);
  put_u64(out, entries_.size());
  for (const auto& [id, entry] : entries_) {  // std::map: ids ascending.
    put_entry(out, id, entry);
  }
  return out;
}

LockoutLadder LockoutLadder::from_snapshot(std::string_view blob,
                                           const LockoutConfig& config) {
  Reader r(blob, "LockoutSnapshot");
  r.magic(kSnapshotMagic);
  const std::uint64_t count = r.u64();
  if (count > blob.size()) {  // Each entry needs >= 24 bytes.
    throw ParseError("LockoutSnapshot: entry count " + std::to_string(count) +
                     " impossible for a " + std::to_string(blob.size()) +
                     "-byte blob at offset 5");
  }
  LockoutLadder ladder(config);
  std::uint64_t previous = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t id = r.u64();
    if (i > 0 && id <= previous) {
      throw ParseError("LockoutSnapshot: device ids not strictly ascending "
                       "at entry " + std::to_string(i));
    }
    previous = id;
    LockoutEntry entry;
    entry.strikes = r.u32();
    entry.level = r.u32();
    entry.locked_until_ns = r.u64();
    ladder.entries_[id] = entry;
  }
  r.done();
  return ladder;
}

std::string LockoutLadder::state_hash() const {
  return Sha256::to_hex(Sha256::hash(serialize_snapshot()));
}

LockoutLadder load_lockouts(const MeasurementStore& store,
                            const LockoutConfig& config) {
  LockoutLadder ladder = store.has_state() && !store.snapshot().empty()
                             ? LockoutLadder::from_snapshot(store.snapshot(),
                                                            config)
                             : LockoutLadder(config);
  for (const std::string& payload : store.wal_records()) {
    ladder.apply_event(parse_lockout_event(payload));
  }
  return ladder;
}

void publish_lockouts(MeasurementStore& store, const LockoutLadder& ladder) {
  store.publish_snapshot(ladder.serialize_snapshot());
}

}  // namespace pufaging::authd
