// Admission-policy proofs: the token bucket throttles volume with exact
// retry times, the lockout ladder walks bounded-retry -> lockout ->
// backed-off probe deterministically, its durable form round-trips
// bit-identically, and a kill-point sweep over the FaultFs proves the
// ladder recovers to an exact transition prefix after any power cut.
#include "authd/limiter.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "store/faultfs.hpp"
#include "store/store.hpp"

namespace pufaging::authd {
namespace {

constexpr std::uint64_t kSecond = 1'000'000'000;

TEST(RateLimiter, BurstAdmitsThenLimitsWithExactRetryTime) {
  RateLimiterConfig config;
  config.burst = 3;
  config.tokens_per_sec = 2.0;
  RateLimiter limiter(config);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(limiter.try_acquire(7, kSecond), 0U) << i;
  }
  // Bucket empty: one token exists half a second later.
  const std::uint64_t at = limiter.try_acquire(7, kSecond);
  EXPECT_EQ(at, kSecond + kSecond / 2);
  // At that exact time the request is admitted.
  EXPECT_EQ(limiter.try_acquire(7, at), 0U);
}

TEST(RateLimiter, BucketsAreIndependentPerDevice) {
  RateLimiterConfig config;
  config.burst = 1;
  RateLimiter limiter(config);
  EXPECT_EQ(limiter.try_acquire(1, 0), 0U);
  EXPECT_NE(limiter.try_acquire(1, 0), 0U);
  EXPECT_EQ(limiter.try_acquire(2, 0), 0U);  // Device 2 unaffected.
}

TEST(RateLimiter, ZeroBurstDisablesLimiting) {
  RateLimiterConfig config;
  config.burst = 0;
  RateLimiter limiter(config);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(limiter.try_acquire(1, 0), 0U);
  }
}

TEST(RateLimiter, ZeroRefillIsAPermanentLimit) {
  RateLimiterConfig config;
  config.burst = 1;
  config.tokens_per_sec = 0.0;
  RateLimiter limiter(config);
  EXPECT_EQ(limiter.try_acquire(1, 0), 0U);
  EXPECT_EQ(limiter.try_acquire(1, kSecond * 3600), ~0ULL);
}

TEST(RateLimiter, TrackingIsBoundedByEvictingStalestBucket) {
  RateLimiterConfig config;
  config.burst = 1;
  config.max_tracked = 4;
  RateLimiter limiter(config);
  for (std::uint64_t d = 0; d < 16; ++d) {
    limiter.try_acquire(d, d * kSecond);
    EXPECT_LE(limiter.tracked(), 4U);
  }
  // The forgotten device refills to a full bucket: eviction can only err
  // toward admitting, never toward a phantom limit.
  EXPECT_EQ(limiter.try_acquire(0, 16 * kSecond), 0U);
}

// Regression: a clock that regresses below a bucket's refill mark (a
// reused FakeClock, a future suspend/resume seam) used to leave
// refilled_ns stranded in the future — no refill could happen until the
// clock caught back up, freezing the bucket solid. The mark must clamp
// back to now_ns so refill resumes from the rewound time.
TEST(RateLimiter, ClockRegressionCannotFreezeABucket) {
  RateLimiterConfig config;
  config.burst = 1;
  config.tokens_per_sec = 1.0;
  RateLimiter limiter(config);
  // Drain the bucket far in the future; the refill mark is now 100 s.
  EXPECT_EQ(limiter.try_acquire(7, 100 * kSecond), 0U);
  EXPECT_NE(limiter.try_acquire(7, 100 * kSecond), 0U);
  // The clock rewinds to 1 s. Still empty (no free tokens for rewinding),
  // but the mark must clamp to now rather than stay at 100 s.
  EXPECT_NE(limiter.try_acquire(7, kSecond), 0U);
  // One second of (rewound) time refills one token. Pre-fix this was
  // denied until the clock re-reached 100 s.
  EXPECT_EQ(limiter.try_acquire(7, 2 * kSecond), 0U);
}

TEST(RateLimiter, RejectsNonFiniteRate) {
  RateLimiterConfig config;
  config.tokens_per_sec = -1.0;
  EXPECT_THROW(RateLimiter{config}, InvalidArgument);
}

LockoutConfig small_ladder() {
  LockoutConfig config;
  config.retry_budget = 3;
  config.base_lockout_ns = kSecond;
  config.max_level = 4;
  return config;
}

TEST(LockoutLadder, StrikesBelowBudgetDoNotLock) {
  LockoutLadder ladder(small_ladder());
  EXPECT_TRUE(ladder.on_decision(5, false, true, 0).has_value());
  EXPECT_TRUE(ladder.on_decision(5, false, true, 0).has_value());
  EXPECT_EQ(ladder.check(5, 0), 0U);
  EXPECT_EQ(ladder.find(5)->strikes, 2U);
}

TEST(LockoutLadder, BudgetExhaustionLocksForBaseWindow) {
  LockoutLadder ladder(small_ladder());
  for (int i = 0; i < 3; ++i) {
    ladder.on_decision(5, false, true, 100);
  }
  EXPECT_EQ(ladder.check(5, 100), 100 + kSecond);
  EXPECT_EQ(ladder.check(5, 100 + kSecond - 1), 100 + kSecond);
  // Expiry: the device is in probe (admitted, level retained).
  EXPECT_EQ(ladder.check(5, 100 + kSecond), 0U);
  EXPECT_EQ(ladder.find(5)->level, 1U);
}

TEST(LockoutLadder, RepeatLockoutsEscalateExponentiallyUpToCap) {
  const LockoutConfig config = small_ladder();
  LockoutLadder ladder(config);
  std::uint64_t now = 0;
  for (std::uint32_t round = 0; round < 7; ++round) {
    for (std::uint32_t s = 0; s < config.retry_budget; ++s) {
      ladder.on_decision(9, false, true, now);
    }
    const std::uint64_t until = ladder.check(9, now);
    const std::uint32_t shift = std::min(round, config.max_level);
    EXPECT_EQ(until, now + (kSecond << shift)) << "round " << round;
    EXPECT_EQ(ladder.find(9)->level, std::min(round + 1, config.max_level));
    now = until;  // Probe resumes exactly at expiry.
  }
}

TEST(LockoutLadder, AcceptResetsAndEmitsADurableResetEvent) {
  LockoutLadder ladder(small_ladder());
  ladder.on_decision(5, false, true, 0);
  ladder.on_decision(5, false, true, 0);
  const auto reset = ladder.on_decision(5, true, false, 0);
  ASSERT_TRUE(reset.has_value());
  EXPECT_EQ(reset->device_id, 5U);
  EXPECT_EQ(reset->entry, LockoutEntry{});
  EXPECT_EQ(ladder.tracked(), 0U);
  // A clean device accepting emits nothing (no durable state changed).
  EXPECT_FALSE(ladder.on_decision(5, true, false, 0).has_value());
}

TEST(LockoutLadder, NonStrikeRejectsDoNotWalkTheLadder) {
  LockoutLadder ladder(small_ladder());
  EXPECT_FALSE(ladder.on_decision(5, false, false, 0).has_value());
  EXPECT_EQ(ladder.tracked(), 0U);
}

TEST(LockoutLadder, ConstructorValidatesConfig) {
  LockoutConfig zero_budget = small_ladder();
  zero_budget.retry_budget = 0;
  EXPECT_THROW(LockoutLadder{zero_budget}, InvalidArgument);
  LockoutConfig wide_shift = small_ladder();
  wide_shift.max_level = 32;
  EXPECT_THROW(LockoutLadder{wide_shift}, InvalidArgument);
  LockoutConfig zero_base = small_ladder();
  zero_base.base_lockout_ns = 0;
  EXPECT_THROW(LockoutLadder{zero_base}, InvalidArgument);
}

TEST(LockoutEventWire, RoundTripsAndRejectsMalformedInput) {
  LockoutEvent event;
  event.device_id = 0xABCDEF;
  event.entry = {2, 3, 77 * kSecond};
  const std::string bytes = serialize_lockout_event(event);
  const LockoutEvent back = parse_lockout_event(bytes);
  EXPECT_EQ(back.device_id, event.device_id);
  EXPECT_EQ(back.entry, event.entry);

  try {
    parse_lockout_event(bytes.substr(0, bytes.size() - 3));
    FAIL() << "truncation not detected";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_THROW(parse_lockout_event(bad_magic), ParseError);
  EXPECT_THROW(parse_lockout_event(bytes + "x"), ParseError);
}

TEST(LockoutSnapshot, RoundTripsBitIdentically) {
  LockoutLadder ladder(small_ladder());
  for (std::uint64_t d : {9ULL, 2ULL, 5ULL}) {
    ladder.on_decision(d, false, true, d * kSecond);
  }
  for (int i = 0; i < 3; ++i) {
    ladder.on_decision(2, false, true, kSecond);
  }
  const std::string blob = ladder.serialize_snapshot();
  const LockoutLadder back =
      LockoutLadder::from_snapshot(blob, small_ladder());
  EXPECT_EQ(back.state_hash(), ladder.state_hash());
  EXPECT_EQ(back.serialize_snapshot(), blob);
}

TEST(LockoutSnapshot, RejectsUnorderedAndImpossibleInput) {
  LockoutLadder a(small_ladder());
  a.on_decision(1, false, true, 0);
  a.on_decision(2, false, true, 0);
  std::string blob = a.serialize_snapshot();
  // Swap the two entries' device ids: no longer strictly ascending.
  std::swap(blob[13], blob[37]);
  EXPECT_THROW(LockoutLadder::from_snapshot(blob, small_ladder()),
               ParseError);

  std::string huge_count = a.serialize_snapshot();
  huge_count[12] = 0x7F;  // count high byte: impossible for the blob size.
  EXPECT_THROW(LockoutLadder::from_snapshot(huge_count, small_ladder()),
               ParseError);
}

/// The deterministic "service day": a fixed decision sequence that walks
/// several devices through strikes, lockouts and resets.
struct Step {
  std::uint64_t device;
  bool accepted;
  bool strike;
};

std::vector<Step> service_day() {
  std::vector<Step> steps;
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t d = 1; d <= 3; ++d) {
      steps.push_back({d, false, true});
    }
    steps.push_back({2, true, false});  // Device 2 keeps recovering.
  }
  steps.push_back({1, false, true});  // Device 1 reaches its budget.
  return steps;
}

/// Applies `steps[0, count)` to a fresh in-memory ladder; the prefix
/// hashes are the legal recovery states of the kill sweep.
std::string prefix_hash(const std::vector<Step>& steps, std::size_t count) {
  LockoutLadder ladder(small_ladder());
  for (std::size_t i = 0; i < count; ++i) {
    ladder.on_decision(steps[i].device, steps[i].accepted, steps[i].strike,
                       (i + 1) * kSecond);
  }
  return ladder.state_hash();
}

constexpr char kDir[] = "lockouts";

/// One serving session against a (possibly fault-injected) store:
/// recover, then apply the remaining steps, appending each transition.
void run_session(FaultFs& fs, const std::vector<Step>& steps,
                 std::size_t from) {
  StoreOptions options;
  options.fsync_every = 1;
  MeasurementStore store(fs, kDir, options);
  LockoutLadder ladder = load_lockouts(store, small_ladder());
  if (!store.has_state()) {
    publish_lockouts(store, ladder);
  }
  for (std::size_t i = from; i < steps.size(); ++i) {
    if (const auto event = ladder.on_decision(
            steps[i].device, steps[i].accepted, steps[i].strike,
            (i + 1) * kSecond)) {
      store.append_record(serialize_lockout_event(*event));
    }
  }
  publish_lockouts(store, ladder);
  store.close();
}

std::string recovered_hash(FaultFs& fs) {
  MeasurementStore store(fs, kDir, StoreOptions{});
  return load_lockouts(store, small_ladder()).state_hash();
}

TEST(LockoutDurability, PublishAndEventReplayRecoverBitIdentically) {
  const std::vector<Step> steps = service_day();
  FaultFs fs;
  run_session(fs, steps, 0);
  EXPECT_EQ(recovered_hash(fs), prefix_hash(steps, steps.size()));
}

// The acceptance proof: cut power at EVERY mutating syscall boundary of
// a serving session. After each cut the recovered ladder must hash to
// the state after some exact prefix of the transition sequence — never a
// torn half-state — and the session must be resumable to the identical
// final state.
TEST(LockoutDurability, KillPointSweepRecoversAnExactPrefix) {
  const std::vector<Step> steps = service_day();

  // hash -> prefix length (identical states continue identically, so any
  // index with that hash works as the resume point).
  std::map<std::string, std::size_t> prefix_of;
  for (std::size_t i = 0; i <= steps.size(); ++i) {
    prefix_of[prefix_hash(steps, i)] = i;
  }
  const std::string final_hash = prefix_hash(steps, steps.size());

  std::uint64_t total_syscalls = 0;
  {
    FaultFs fs;
    run_session(fs, steps, 0);
    total_syscalls = fs.syscalls();
  }
  ASSERT_GT(total_syscalls, steps.size());

  for (std::uint64_t kill = 1; kill <= total_syscalls; ++kill) {
    FsFaultPlan plan;
    plan.kill_at_syscall = kill;
    plan.seed = kill;
    FaultFs fs(plan);
    try {
      run_session(fs, steps, 0);
      FAIL() << "kill point " << kill << " never fired";
    } catch (const PowerCutError&) {
      // Expected: power failed mid-session.
    }
    fs.power_cut();  // Collapse to durable state, revive for next boot.
    const std::string hash = recovered_hash(fs);
    const auto it = prefix_of.find(hash);
    ASSERT_TRUE(it != prefix_of.end())
        << "kill point " << kill << " recovered a non-prefix state";

    // Resume the day from the recovered prefix: the ladder is a Markov
    // state machine, so prefix state + remaining steps must converge to
    // the identical final state, bit for bit.
    run_session(fs, steps, it->second);
    ASSERT_EQ(recovered_hash(fs), final_hash) << "kill point " << kill;
  }
}

}  // namespace
}  // namespace pufaging::authd
