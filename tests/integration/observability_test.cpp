// Observability is a pure sink: the tentpole guarantee of src/obs/ is
// that attaching a MetricsRegistry and a Tracer to a campaign changes
// NOTHING about its results — across thread counts and SIMD dispatch
// tiers — while the recorded metrics faithfully describe what ran.
#include <gtest/gtest.h>

#include <string>

#include "common/bitkernel.hpp"
#include "obs/clock.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "store/faultfs.hpp"
#include "testbed/campaign.hpp"

namespace pufaging {
namespace {

CampaignConfig small_config() {
  CampaignConfig config;
  config.months = 2;
  config.measurements_per_month = 40;
  config.keep_first_month_batches = true;
  config.threads = 1;
  return config;
}

void expect_bit_identical(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.references.size(), b.references.size());
  for (std::size_t d = 0; d < a.references.size(); ++d) {
    EXPECT_EQ(a.references[d], b.references[d]) << "reference of device " << d;
  }
  ASSERT_EQ(a.first_month_batches.size(), b.first_month_batches.size());
  for (std::size_t d = 0; d < a.first_month_batches.size(); ++d) {
    EXPECT_EQ(a.first_month_batches[d], b.first_month_batches[d])
        << "month-0 batch of device " << d;
  }
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t m = 0; m < a.series.size(); ++m) {
    const FleetMonthMetrics& x = a.series[m];
    const FleetMonthMetrics& y = b.series[m];
    // Exact double comparisons on purpose: the guarantee is bit-identity.
    EXPECT_EQ(x.wchd_avg, y.wchd_avg) << "month " << m;
    EXPECT_EQ(x.wchd_wc, y.wchd_wc) << "month " << m;
    EXPECT_EQ(x.fhw_avg, y.fhw_avg) << "month " << m;
    EXPECT_EQ(x.fhw_wc, y.fhw_wc) << "month " << m;
    EXPECT_EQ(x.stable_avg, y.stable_avg) << "month " << m;
    EXPECT_EQ(x.noise_entropy_avg, y.noise_entropy_avg) << "month " << m;
    EXPECT_EQ(x.bchd_avg, y.bchd_avg) << "month " << m;
    EXPECT_EQ(x.puf_entropy, y.puf_entropy) << "month " << m;
  }
}

TEST(Observability, MetricsOnOrOffIsBitIdenticalAcrossThreadsAndSimd) {
  // The ISSUE's acceptance matrix: metrics {off, on} x threads {1, 4} x
  // SIMD {scalar, best}. Every cell must equal the uninstrumented
  // serial-scalar reference bit for bit.
  const std::vector<bitkernel::Level> levels = {
      bitkernel::Level::kScalar, bitkernel::available_levels().back()};
  CampaignConfig reference_config = small_config();
  const bitkernel::ScopedLevel pin_scalar(bitkernel::Level::kScalar);
  const CampaignResult reference = run_campaign(reference_config);
  for (const bitkernel::Level level : levels) {
    const bitkernel::ScopedLevel pin(level);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      for (const bool instrumented : {false, true}) {
        obs::MetricsRegistry metrics;
        obs::Tracer tracer;
        CampaignConfig config = small_config();
        config.threads = threads;
        if (instrumented) {
          config.metrics = &metrics;
          config.tracer = &tracer;
        }
        const CampaignResult run = run_campaign(config);
        SCOPED_TRACE("level=" + std::string(bitkernel::level_name(level)) +
                     " threads=" + std::to_string(threads) +
                     " metrics=" + (instrumented ? "on" : "off"));
        expect_bit_identical(reference, run);
        if (instrumented) {
          // The sink actually recorded the run it watched.
          const obs::MetricsSnapshot snap = metrics.snapshot();
          EXPECT_EQ(snap.counters.at("campaign.months"), 3U);
          EXPECT_GT(snap.counters.at(std::string("bitkernel.dispatch.") +
                                     bitkernel::level_name(level)),
                    0U);
          EXPECT_GT(snap.histograms.at("campaign.powerup_ns").count, 0U);
        }
      }
    }
  }
}

TEST(Observability, CampaignRecordsEngineStoreAndKernelMetrics) {
  FaultFs fs;
  obs::MetricsRegistry metrics;
  obs::Tracer tracer;
  CampaignConfig config = small_config();
  config.threads = 4;
  config.checkpoint_dir = "db";
  config.vfs = &fs;
  config.fsync_every = 2;
  config.checkpoint_every_months = 2;
  config.metrics = &metrics;
  config.tracer = &tracer;
  const CampaignResult result = run_campaign(config);
  ASSERT_TRUE(result.completed);

  const obs::MetricsSnapshot snap = metrics.snapshot();
  // Engine: months, per-device and per-powerup timing histograms.
  EXPECT_EQ(snap.counters.at("campaign.months"), 3U);
  EXPECT_EQ(snap.histograms.at("campaign.month_wall_ns").count, 3U);
  const obs::HistogramSnapshot device_h =
      snap.histograms.at("campaign.device_month_ns");
  EXPECT_EQ(device_h.count, 3U * 16U);  // 3 months x 16 devices
  EXPECT_EQ(snap.histograms.at("campaign.powerup_ns").count,
            3U * 16U * 40U);
  // Thread pool: gauges recorded at campaign end.
  EXPECT_EQ(snap.gauges.at("campaign.pool.threads"), 4.0);
  EXPECT_EQ(snap.gauges.at("campaign.pool.tasks_run"), 48.0);
  EXPECT_GE(snap.gauges.at("campaign.pool.max_queue_depth"), 1.0);
  // Store: recovery ran once, appends and fsyncs happened, snapshots
  // published (baseline + month 1 + final).
  EXPECT_EQ(snap.counters.at("store.recovery.opens"), 1U);
  EXPECT_EQ(snap.counters.at("store.snapshot.publishes"),
            result.persistence.snapshots);
  EXPECT_EQ(snap.counters.at("store.wal.appends"),
            result.persistence.wal_appends);
  EXPECT_GT(snap.counters.at("store.wal.fsyncs"), 0U);
  EXPECT_EQ(snap.histograms.at("store.snapshot.publish_ns").count,
            result.persistence.snapshots);
  // Bit kernels: the dispatch tier that served this campaign was tallied.
  const std::string tier_counter =
      std::string("bitkernel.dispatch.") + result.kernel_level;
  EXPECT_GT(snap.counters.at(tier_counter), 0U);

  // Tracer: one campaign span, one span per month, persists nested in.
  std::size_t campaign_spans = 0;
  std::size_t month_spans = 0;
  std::size_t persist_spans = 0;
  for (const obs::SpanRecord& span : tracer.finished()) {
    campaign_spans += span.name == "campaign" ? 1U : 0U;
    month_spans += span.name == "campaign.month" ? 1U : 0U;
    persist_spans += span.name == "campaign.persist" ? 1U : 0U;
  }
  EXPECT_EQ(campaign_spans, 1U);
  EXPECT_EQ(month_spans, 3U);
  EXPECT_EQ(persist_spans, 3U);
  EXPECT_EQ(tracer.dropped(), 0U);

  // The exports accept the real snapshot (smoke, not golden: timings are
  // from the real clock here).
  EXPECT_NE(obs::metrics_to_jsonl(snap).find("store.wal.appends"),
            std::string::npos);
  EXPECT_NE(obs::metrics_table(snap).find("campaign.powerup_ns"),
            std::string::npos);
}

TEST(Observability, ChaosHealthBridgesIntoMetrics) {
  obs::MetricsRegistry metrics;
  CampaignConfig config = small_config();
  config.faults.i2c_corrupt_rate = 0.05;
  config.faults.i2c_drop_rate = 0.05;
  config.metrics = &metrics;
  const CampaignResult result = run_campaign(config);
  const obs::MetricsSnapshot snap = metrics.snapshot();
  // The bridged counters must equal the campaign's own health ledger.
  EXPECT_EQ(snap.counters.at("chaos.crc_retries"),
            result.health.total_crc_retries());
  EXPECT_EQ(snap.counters.at("chaos.timeouts"),
            result.health.total_timeouts());
  EXPECT_EQ(snap.counters.at("chaos.measurements_dropped"),
            result.health.total_measurements_dropped());
  EXPECT_EQ(snap.gauges.at("chaos.coverage"),
            result.health.months.back().coverage);
}

TEST(Observability, FakeClockMakesCampaignTimingsDeterministic) {
  // The clock seam end-to-end: a FakeClock with a fixed auto-step yields
  // exactly reproducible latency histograms and span timings for a real
  // (single-threaded) campaign — the exporter output is stable enough to
  // diff across runs.
  const auto run_once = [](std::string* jsonl_metrics,
                           std::string* jsonl_trace) {
    obs::FakeClock clock(0, 7);
    obs::MetricsRegistry metrics;
    obs::Tracer tracer(clock);
    CampaignConfig config;
    config.months = 1;
    config.measurements_per_month = 10;
    config.threads = 1;
    config.metrics = &metrics;
    config.tracer = &tracer;
    config.clock = &clock;
    run_campaign(config);
    *jsonl_metrics = obs::metrics_to_jsonl(metrics.snapshot());
    *jsonl_trace = obs::trace_to_jsonl(tracer.finished());
  };
  std::string metrics_a;
  std::string trace_a;
  std::string metrics_b;
  std::string trace_b;
  run_once(&metrics_a, &trace_a);
  run_once(&metrics_b, &trace_b);
  EXPECT_EQ(metrics_a, metrics_b);
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_NE(trace_a.find("\"name\":\"campaign\""), std::string::npos);
  EXPECT_NE(metrics_a.find("campaign.powerup_ns"), std::string::npos);
}

}  // namespace
}  // namespace pufaging
