#include "stats/nist.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace pufaging {
namespace {

BitVector random_bits(std::size_t n, std::uint64_t seed, double p = 0.5) {
  Xoshiro256StarStar rng(seed);
  BitVector v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v.set(i, rng.bernoulli(p));
  }
  return v;
}

BitVector alternating_bits(std::size_t n) {
  BitVector v(n);
  for (std::size_t i = 0; i < n; i += 2) {
    v.set(i, true);
  }
  return v;
}

TEST(NistFrequency, PassesOnRandom) {
  const NistResult r = nist_frequency(random_bits(20000, 1));
  EXPECT_TRUE(r.applicable);
  EXPECT_TRUE(r.passed());
}

TEST(NistFrequency, FailsOnBiased) {
  const NistResult r = nist_frequency(random_bits(20000, 2, 0.6));
  EXPECT_TRUE(r.applicable);
  EXPECT_FALSE(r.passed());
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(NistFrequency, ExactStatisticOnCraftedInput) {
  // 53 ones out of 100: S = 6, s_obs = 0.6, P = erfc(0.6 / sqrt(2)).
  BitVector v(100);
  for (std::size_t i = 0; i < 53; ++i) {
    v.set(i * 100 / 53, true);
  }
  ASSERT_EQ(v.count_ones(), 53U);
  const NistResult r = nist_frequency(v);
  EXPECT_NEAR(r.statistic, 0.6, 1e-12);
  EXPECT_NEAR(r.p_value, std::erfc(0.6 / std::sqrt(2.0)), 1e-12);
  EXPECT_TRUE(r.passed());
}

TEST(NistFrequency, TooShortNotApplicable) {
  EXPECT_FALSE(nist_frequency(BitVector(50)).applicable);
}

TEST(NistBlockFrequency, PassesOnRandomFailsOnStructured) {
  EXPECT_TRUE(nist_block_frequency(random_bits(20000, 3)).passed());
  // First half ones, second half zeros: globally balanced, block-biased.
  BitVector v(20000);
  for (std::size_t i = 0; i < 10000; ++i) {
    v.set(i, true);
  }
  const NistResult r = nist_block_frequency(v);
  EXPECT_TRUE(nist_frequency(v).passed());  // monobit is fooled
  EXPECT_FALSE(r.passed());                 // block test is not
}

TEST(NistRuns, PassesOnRandom) {
  EXPECT_TRUE(nist_runs(random_bits(20000, 4)).passed());
}

TEST(NistRuns, FailsOnAlternating) {
  const NistResult r = nist_runs(alternating_bits(20000));
  EXPECT_TRUE(r.applicable);
  EXPECT_FALSE(r.passed());
}

TEST(NistRuns, FailsPrerequisiteOnHeavyBias) {
  const NistResult r = nist_runs(random_bits(20000, 5, 0.8));
  EXPECT_TRUE(r.applicable);
  EXPECT_DOUBLE_EQ(r.p_value, 0.0);
}

TEST(NistLongestRun, PassesOnRandomFailsOnStructured) {
  EXPECT_TRUE(nist_longest_run(random_bits(20000, 6)).passed());
  // Period-4 pattern "1100": every block's longest run is 2, far below
  // the expected distribution of longest runs in random data.
  BitVector v(20000);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v.set(i, (i % 4) < 2);
  }
  EXPECT_FALSE(nist_longest_run(v).passed());
  EXPECT_FALSE(nist_longest_run(BitVector(100)).applicable);
}

TEST(NistSerial, PassesOnRandomFailsOnPeriodic) {
  const auto random_results = nist_serial(random_bits(20000, 8));
  ASSERT_EQ(random_results.size(), 2U);
  EXPECT_TRUE(random_results[0].passed());
  EXPECT_TRUE(random_results[1].passed());

  const auto periodic = nist_serial(alternating_bits(20000));
  EXPECT_FALSE(periodic[0].passed());
}

TEST(NistApproximateEntropy, PassesOnRandomFailsOnPeriodic) {
  EXPECT_TRUE(nist_approximate_entropy(random_bits(20000, 9)).passed());
  EXPECT_FALSE(nist_approximate_entropy(alternating_bits(20000)).passed());
}

TEST(NistCusum, PassesOnRandomFailsOnDrifting) {
  EXPECT_TRUE(nist_cusum(random_bits(20000, 10), true).passed());
  EXPECT_TRUE(nist_cusum(random_bits(20000, 10), false).passed());
  EXPECT_FALSE(nist_cusum(random_bits(20000, 11, 0.55), true).passed());
}

TEST(NistCusum, SpecExample) {
  // SP 800-22 2.13.8: eps = "1011010111", n = 10 is too short for our
  // gate; verify the z statistic logic on a longer crafted input instead:
  // all ones drifts to z = n.
  BitVector ones(200);
  for (std::size_t i = 0; i < 200; ++i) {
    ones.set(i, true);
  }
  const NistResult r = nist_cusum(ones, true);
  EXPECT_DOUBLE_EQ(r.statistic, 200.0);
  EXPECT_LT(r.p_value, 1e-10);
}

TEST(NistSuite, AllPassOnGoodGenerator) {
  const auto results = nist_suite(random_bits(50000, 12));
  EXPECT_EQ(nist_failures(results), 0U)
      << "some SP 800-22 test rejected xoshiro output";
  // Full battery: 14 single-result tests + serial x2 + cusum x2 +
  // excursions x8 + variant x18.
  EXPECT_EQ(results.size(), 41U);
}

TEST(NistSuite, ManyFailuresOnConstant) {
  BitVector v(50000);
  const auto results = nist_suite(v);
  EXPECT_GE(nist_failures(results), 4U);
}

TEST(NistSuite, PValuesAreProbabilities) {
  for (const auto& r : nist_suite(random_bits(20000, 13))) {
    if (r.applicable) {
      EXPECT_GE(r.p_value, 0.0) << r.name;
      EXPECT_LE(r.p_value, 1.0 + 1e-12) << r.name;
    }
  }
}

// Property: across seeds, a good generator passes the full suite at
// alpha = 0.001 (suite-level false-positive chance is tiny).
class NistSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NistSeeds, SuitePassesAtLooseAlpha) {
  const auto results = nist_suite(random_bits(20000, GetParam() + 1000));
  std::size_t failures = 0;
  for (const auto& r : results) {
    if (r.applicable && !r.passed(0.001)) {
      ++failures;
    }
  }
  EXPECT_EQ(failures, 0U);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NistSeeds, ::testing::Range<std::uint64_t>(0, 8));

}  // namespace
}  // namespace pufaging
