# Empty dependencies file for trng_entropy.
# This may be replaced when dependencies are built.
