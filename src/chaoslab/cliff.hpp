// Risk-cliff detection over a completed chaos grid.
//
// Definition: a cliff is an adjacent-cell degradation along the
// fault-intensity axis of one policy row — coverage falling, or a
// survivor-metric drift rising, between rate scale r and the next scale
// r+1 (cell means over the seed repetitions). The detector reports every
// cliff above threshold plus the single largest coverage drop in the
// grid (the headline answer to "where does my policy break?"), whether
// or not it clears the threshold.
//
// `riskcliff_to_json` is the machine-readable artifact the nightly job
// uploads and trend-gates: plain doubles for humans, IEEE-754 hex twins
// for byte-exact comparison, and a `cliff_location_hash` that changes
// exactly when the *location set* of the cliffs moves — the signal that
// a code change shifted where the system breaks, even if every number
// wobbled within tolerance.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "chaoslab/grid.hpp"

namespace pufaging::chaoslab {

struct Cliff {
  /// Which aggregate degraded: "coverage", "bchd_drift" or
  /// "entropy_drift".
  std::string metric;
  std::size_t policy_index = 0;
  std::size_t from_rate_index = 0;  ///< Degradation from here to here + 1.
  double before = 0.0;  ///< Cell mean at from_rate_index.
  double after = 0.0;   ///< Cell mean at from_rate_index + 1.
  /// Degradation magnitude, always oriented positive-is-worse: coverage
  /// lost for "coverage", drift gained for the drift metrics.
  double drop = 0.0;
};

struct CliffReport {
  /// Cliffs above threshold, sorted by descending drop (ties: metric,
  /// policy, rate — fully deterministic).
  std::vector<Cliff> cliffs;

  /// The largest coverage drop anywhere in the grid, threshold or not;
  /// absent only when the grid has a single rate column.
  std::optional<Cliff> worst_coverage;
};

/// Scans every policy row of a *complete* cell set (cell_count entries,
/// cell-index order). Thresholds: absolute coverage lost / absolute
/// drift gained between adjacent scales.
CliffReport detect_cliffs(const GridSpec& spec,
                          const std::vector<CellSummary>& cells,
                          double coverage_threshold = 0.05,
                          double drift_threshold = 0.01);

/// Location signature of the report: SHA-256 over the ordered
/// "metric:policy_label:from->to" cliff coordinates (worst-coverage
/// cliff included). Numeric wobble does not move it; a cliff appearing,
/// vanishing or relocating does. Feeds the bench trend gate's `*_hash`
/// hard-fail path.
std::string cliff_location_hash(const GridSpec& spec,
                                const CliffReport& report);

/// The riskcliff.json document: spec echo, per-cell aggregates (values +
/// hex bit twins), the cliff list and the location hash.
Json riskcliff_to_json(const GridSpec& spec, const std::string& fingerprint,
                       const std::vector<CellSummary>& cells,
                       const CliffReport& report);

/// Human-readable rendering: one coverage table (policy rows × rate
/// columns), one quarantine-churn table, and the cliff list.
std::string render_grid_tables(const GridSpec& spec,
                               const std::vector<CellSummary>& cells,
                               const CliffReport& report);

}  // namespace pufaging::chaoslab
