#include "analysis/lifetime.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "stats/regression.hpp"

namespace pufaging {

double AgingTrajectoryFit::predict(double month) const {
  if (month < 0.0) {
    throw InvalidArgument("AgingTrajectoryFit::predict: negative month");
  }
  return baseline + amplitude * std::pow(month, exponent);
}

std::optional<double> AgingTrajectoryFit::months_until(
    double threshold) const {
  if (amplitude <= 0.0 || threshold <= baseline) {
    return threshold <= baseline ? std::optional<double>(0.0) : std::nullopt;
  }
  return std::pow((threshold - baseline) / amplitude, 1.0 / exponent);
}

AgingTrajectoryFit fit_aging_trajectory(std::span<const double> months,
                                        std::span<const double> values) {
  if (months.size() != values.size()) {
    throw InvalidArgument("fit_aging_trajectory: size mismatch");
  }
  if (months.size() < 4) {
    throw InvalidArgument("fit_aging_trajectory: need at least 4 points");
  }
  std::size_t distinct_positive = 0;
  double last = -1.0;
  for (double m : months) {
    if (m < 0.0) {
      throw InvalidArgument("fit_aging_trajectory: negative month");
    }
    if (m > 0.0 && m != last) {
      ++distinct_positive;
      last = m;
    }
  }
  if (distinct_positive < 3) {
    throw InvalidArgument(
        "fit_aging_trajectory: need >= 3 distinct positive months");
  }

  AgingTrajectoryFit best;
  double best_sse = 1e300;
  std::vector<double> basis(months.size());
  for (double c = 0.10; c <= 1.001; c += 0.025) {
    for (std::size_t i = 0; i < months.size(); ++i) {
      basis[i] = std::pow(months[i], c);
    }
    LinearFit ols;
    try {
      ols = linear_fit(basis, values);
    } catch (const InvalidArgument&) {
      continue;  // degenerate basis for this exponent
    }
    double sse = 0.0;
    for (std::size_t i = 0; i < months.size(); ++i) {
      const double r = values[i] - (ols.intercept + ols.slope * basis[i]);
      sse += r * r;
    }
    if (sse < best_sse) {
      best_sse = sse;
      best.baseline = ols.intercept;
      best.amplitude = ols.slope;
      best.exponent = c;
    }
  }
  best.rms_error = std::sqrt(best_sse / static_cast<double>(months.size()));
  return best;
}

}  // namespace pufaging
