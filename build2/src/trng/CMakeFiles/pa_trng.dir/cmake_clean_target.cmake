file(REMOVE_RECURSE
  "libpa_trng.a"
)
