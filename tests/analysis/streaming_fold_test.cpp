// Differential suite for the streaming monthly fold: fold_fleet_month
// must equal combine_fleet_month bitwise — every double, every field — at
// every adversarial tile shape, every SIMD tier, and any device arrival
// order, for both the strict and the missing-data-tolerant overloads.
#include "analysis/streaming_fold.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "analysis/monthly.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "support/bitgen.hpp"
#include "support/differential.hpp"
#include "support/tilegen.hpp"

namespace pufaging {
namespace {

using testsupport::adversarial_tile_shapes;
using testsupport::for_each_level;
using testsupport::random_bits;

std::vector<DeviceMonthMetrics> random_fleet(Xoshiro256StarStar& rng,
                                             std::size_t devices,
                                             std::size_t bits) {
  std::vector<DeviceMonthMetrics> out(devices);
  for (std::size_t d = 0; d < devices; ++d) {
    out[d].device_id = static_cast<std::uint32_t>(d);
    out[d].measurement_count = 1 + (rng.next() % 1000);
    out[d].wchd_mean = rng.uniform();
    out[d].fhw_mean = rng.uniform();
    out[d].stable_ratio = rng.uniform();
    out[d].noise_entropy = rng.uniform();
    out[d].first_pattern = random_bits(rng, bits);
  }
  // Arrival order must not matter: scramble before handing out.
  for (std::size_t i = out.size(); i > 1; --i) {
    std::swap(out[i - 1], out[rng.next() % i]);
  }
  return out;
}

void expect_bitwise_equal(const FleetMonthMetrics& a,
                          const FleetMonthMetrics& b) {
  EXPECT_EQ(a.month, b.month);
  EXPECT_EQ(a.wchd_avg, b.wchd_avg);
  EXPECT_EQ(a.wchd_wc, b.wchd_wc);
  EXPECT_EQ(a.fhw_avg, b.fhw_avg);
  EXPECT_EQ(a.fhw_wc, b.fhw_wc);
  EXPECT_EQ(a.stable_avg, b.stable_avg);
  EXPECT_EQ(a.stable_wc, b.stable_wc);
  EXPECT_EQ(a.noise_entropy_avg, b.noise_entropy_avg);
  EXPECT_EQ(a.noise_entropy_wc, b.noise_entropy_wc);
  EXPECT_EQ(a.bchd_avg, b.bchd_avg);
  EXPECT_EQ(a.bchd_wc, b.bchd_wc);
  EXPECT_EQ(a.puf_entropy, b.puf_entropy);
  EXPECT_EQ(a.devices_expected, b.devices_expected);
  EXPECT_EQ(a.devices_reporting, b.devices_reporting);
  EXPECT_EQ(a.coverage, b.coverage);
  EXPECT_EQ(a.degraded, b.degraded);
  ASSERT_EQ(a.devices.size(), b.devices.size());
  for (std::size_t i = 0; i < a.devices.size(); ++i) {
    EXPECT_EQ(a.devices[i].device_id, b.devices[i].device_id);
    EXPECT_EQ(a.devices[i].wchd_mean, b.devices[i].wchd_mean);
    EXPECT_EQ(a.devices[i].first_pattern, b.devices[i].first_pattern);
  }
}

TEST(StreamingFold, StrictOverloadBitIdenticalToCombineAtEveryShape) {
  Xoshiro256StarStar rng(0x57F01DULL);
  for (const std::size_t devices : {2UL, 3UL, 16UL, 17UL, 40UL}) {
    for (const std::size_t bits : {512UL, 1000UL, 8192UL}) {
      const std::vector<DeviceMonthMetrics> fleet =
          random_fleet(rng, devices, bits);
      const FleetMonthMetrics oracle = combine_fleet_month(fleet, 7.0);
      const std::size_t row_words = (bits + 63) / 64;
      for (const tilecol::TileShape shape :
           adversarial_tile_shapes(devices, row_words)) {
        const FleetMonthMetrics folded =
            fold_fleet_month(fleet, 7.0, FoldOptions{shape});
        expect_bitwise_equal(folded, oracle);
      }
    }
  }
}

TEST(StreamingFold, BitIdenticalAtEverySimdTier) {
  Xoshiro256StarStar rng(0x51D7ULL);
  const std::vector<DeviceMonthMetrics> fleet = random_fleet(rng, 16, 8192);
  // Oracle computed at whatever tier the process booted on (tier
  // invariance of the oracle itself is the kernel suite's job).
  const FleetMonthMetrics oracle = combine_fleet_month(fleet, 3.0);
  for_each_level([&](bitkernel::Level) {
    expect_bitwise_equal(fold_fleet_month(fleet, 3.0), oracle);
  });
}

TEST(StreamingFold, TolerantOverloadBitIdenticalIncludingCoverage) {
  Xoshiro256StarStar rng(0x70E1ULL);
  for (const std::size_t reporting : {0UL, 1UL, 2UL, 9UL, 16UL}) {
    const std::vector<DeviceMonthMetrics> fleet =
        random_fleet(rng, reporting, 1000);
    for (const std::uint64_t expected_meas : {0ULL, 50ULL, 1000ULL}) {
      const FleetMonthMetrics oracle =
          combine_fleet_month(fleet, 11.0, 16, expected_meas);
      for (const tilecol::TileShape shape :
           adversarial_tile_shapes(reporting, 16)) {
        expect_bitwise_equal(
            fold_fleet_month(fleet, 11.0, 16, expected_meas,
                             FoldOptions{shape}),
            oracle);
      }
    }
  }
}

TEST(StreamingFold, StrictOverloadEnforcesTwoDevices) {
  Xoshiro256StarStar rng(0x2DEFULL);
  EXPECT_THROW(fold_fleet_month(random_fleet(rng, 1, 64), 0.0),
               InvalidArgument);
  EXPECT_THROW(fold_fleet_month(random_fleet(rng, 18, 64), 0.0, 16, 10),
               InvalidArgument);  // more reporting than expected
}

TEST(FoldFootprint, StreamingStaysUnderMaterializedAtFleetScale) {
  // The 10,000-board what-if with the paper's 8192-bit patterns: the
  // materialized path's pair vectors alone are ~800 MB; the streaming
  // fold's scratch must come in far under it.
  const FoldFootprint fp = fold_footprint(10000, 8192);
  EXPECT_LT(fp.streaming_bytes, fp.materialized_bytes / 10);
  // And the accounting is deterministic arithmetic, not measurement.
  const FoldFootprint again = fold_footprint(10000, 8192);
  EXPECT_EQ(fp.streaming_bytes, again.streaming_bytes);
  EXPECT_EQ(fp.materialized_bytes, again.materialized_bytes);
}

}  // namespace
}  // namespace pufaging
