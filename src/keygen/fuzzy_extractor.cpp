#include "keygen/fuzzy_extractor.hpp"

#include "common/error.hpp"

namespace pufaging {

FuzzyExtractor::FuzzyExtractor(std::shared_ptr<const BlockCode> code)
    : code_(std::move(code)) {
  if (!code_) {
    throw InvalidArgument("FuzzyExtractor: null code");
  }
}

std::size_t FuzzyExtractor::response_bits(std::size_t blocks) const {
  return blocks * code_->block_length();
}

std::size_t FuzzyExtractor::secret_bits(std::size_t blocks) const {
  return blocks * code_->message_length();
}

HelperData FuzzyExtractor::enroll(const BitVector& response,
                                  std::size_t blocks, Xoshiro256StarStar& rng,
                                  BitVector& secret_out) const {
  if (blocks == 0) {
    throw InvalidArgument("FuzzyExtractor::enroll: blocks must be > 0");
  }
  if (response.size() != response_bits(blocks)) {
    throw InvalidArgument("FuzzyExtractor::enroll: response length mismatch");
  }
  const std::size_t n = code_->block_length();
  const std::size_t k = code_->message_length();
  secret_out = BitVector(blocks * k);
  HelperData helper;
  helper.code_offset = BitVector(blocks * n);
  for (std::size_t b = 0; b < blocks; ++b) {
    BitVector message(k);
    for (std::size_t i = 0; i < k; ++i) {
      const bool bit = (rng.next() & 1U) != 0;
      message.set(i, bit);
      secret_out.set(b * k + i, bit);
    }
    const BitVector codeword = code_->encode(message);
    for (std::size_t i = 0; i < n; ++i) {
      helper.code_offset.set(b * n + i,
                             codeword.get(i) ^ response.get(b * n + i));
    }
  }
  return helper;
}

ReconstructResult FuzzyExtractor::reconstruct(const BitVector& noisy_response,
                                              const HelperData& helper) const {
  if (noisy_response.size() != helper.code_offset.size()) {
    throw InvalidArgument(
        "FuzzyExtractor::reconstruct: response/helper size mismatch");
  }
  const std::size_t n = code_->block_length();
  if (noisy_response.size() % n != 0) {
    throw InvalidArgument(
        "FuzzyExtractor::reconstruct: length not a block multiple");
  }
  const std::size_t blocks = noisy_response.size() / n;
  const std::size_t k = code_->message_length();

  ReconstructResult result;
  result.message = BitVector(blocks * k);
  result.success = true;
  for (std::size_t b = 0; b < blocks; ++b) {
    BitVector word(n);
    for (std::size_t i = 0; i < n; ++i) {
      word.set(i, noisy_response.get(b * n + i) ^
                      helper.code_offset.get(b * n + i));
    }
    const DecodeResult decoded = code_->decode(word);
    if (!decoded.success) {
      result.success = false;
      return result;
    }
    result.corrected += decoded.corrected;
    for (std::size_t i = 0; i < k; ++i) {
      result.message.set(b * k + i, decoded.message.get(i));
    }
  }
  return result;
}

std::vector<std::uint8_t> derive_key(const BitVector& secret,
                                     const std::string& context,
                                     std::size_t key_bytes) {
  const std::vector<std::uint8_t> ikm = secret.to_bytes();
  const std::vector<std::uint8_t> info(context.begin(), context.end());
  return hkdf_sha256(ikm, /*salt=*/{}, info, key_bytes);
}

}  // namespace pufaging
