// Integration: full protocol rig -> JSON collector dump -> reload ->
// analysis pipeline. Mirrors the paper's actual data path (boards -> I2C
// -> masters -> Raspberry Pi -> JSON database -> offline evaluation).
#include <gtest/gtest.h>

#include "analysis/initial_quality.hpp"
#include "analysis/monthly.hpp"
#include "testbed/campaign.hpp"
#include "testbed/rig.hpp"

namespace pufaging {
namespace {

class RigPipeline : public ::testing::Test {
 protected:
  static Rig& rig() {
    static Rig instance{RigConfig{}};
    static const bool ran = [] {
      instance.run_cycles(6);
      return true;
    }();
    (void)ran;
    return instance;
  }
};

TEST_F(RigPipeline, JsonDatabaseDrivesInitialQuality) {
  // Serialize the collector to its JSON-lines database format, reload,
  // rebuild per-device batches and run the Section IV-A evaluation.
  Collector reloaded;
  reloaded.load_jsonl(rig().collector().to_jsonl());
  std::vector<std::vector<BitVector>> batches;
  for (std::uint32_t d = 0; d < 16; ++d) {
    batches.push_back(
        reloaded.board_measurements(board_id_for_device(d)));
    ASSERT_GE(batches.back().size(), 6U);
  }
  const InitialQualityReport report = evaluate_initial_quality(batches);
  // Fresh fleet at day 0: WCHD small, BCHD in band, FHW biased.
  for (double w : report.wchd_samples) {
    EXPECT_LT(w, 0.12);
  }
  for (double b : report.bchd_samples) {
    EXPECT_GT(b, 0.40);
    EXPECT_LT(b, 0.50);
  }
  for (double f : report.fhw_samples) {
    EXPECT_GT(f, 0.55);
    EXPECT_LT(f, 0.72);
  }
}

TEST_F(RigPipeline, CollectorRecordsCarryMonotonicTimestamps) {
  SimTime prev = -1.0;
  for (const MeasurementRecord& r : rig().collector().records()) {
    EXPECT_GE(r.time, prev);
    prev = r.time;
  }
}

TEST_F(RigPipeline, PerBoardSequencesAreConsecutive) {
  for (std::uint32_t d = 0; d < 16; ++d) {
    const std::uint32_t board = board_id_for_device(d);
    std::uint32_t expected = 1;
    for (const MeasurementRecord& r : rig().collector().records()) {
      if (r.board_id == board) {
        EXPECT_EQ(r.sequence, expected) << "board " << board;
        ++expected;
      }
    }
    EXPECT_GE(expected, 6U);
  }
}

TEST_F(RigPipeline, MonthAccumulatorMatchesDirectAnalysis) {
  // Feeding the collector's replayed measurements through the monthly
  // accumulator must equal analysing them directly.
  const auto ms = rig().collector().board_measurements(0);
  ASSERT_GE(ms.size(), 3U);
  DeviceMonthAccumulator acc(0, ms.front());
  for (const BitVector& m : ms) {
    acc.add(m);
  }
  const DeviceMonthMetrics metrics = acc.finalize();
  EXPECT_EQ(metrics.measurement_count, ms.size());
  EXPECT_EQ(metrics.first_pattern, ms.front());
  double wchd_sum = 0.0;
  for (const BitVector& m : ms) {
    wchd_sum += fractional_hamming_distance(ms.front(), m);
  }
  EXPECT_NEAR(metrics.wchd_mean, wchd_sum / static_cast<double>(ms.size()),
              1e-12);
}

TEST(RigPipelineFaults, NoisyBusStillYieldsCleanDatabase) {
  RigConfig config;
  config.i2c_fault_rate = 0.2;
  Rig rig(config);
  rig.run_cycles(3);
  // Every record in the database decodes to exactly 8192 bits and matches
  // a direct twin-device measurement (CRC+retry filtered the corruption).
  const auto fleet = make_fleet(paper_fleet_config());
  for (std::uint32_t d = 0; d < 16; ++d) {
    SramDevice twin = fleet[d];
    const auto ms =
        rig.collector().board_measurements(board_id_for_device(d));
    ASSERT_GE(ms.size(), 3U);
    for (std::size_t k = 0; k < 3; ++k) {
      EXPECT_EQ(ms[k], twin.measure());
    }
  }
}

}  // namespace
}  // namespace pufaging
