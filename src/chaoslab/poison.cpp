#include "chaoslab/poison.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "testbed/checkpoint.hpp"

namespace pufaging::chaoslab {
namespace {

constexpr char kPoisonFile[] = "poison.json";
constexpr char kExpectedFile[] = "expected.jsonl";
constexpr char kObsFile[] = "obs.jsonl";
constexpr char kStoreDir[] = "store";

std::string u64_to_hex(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

std::uint64_t u64_from_hex(const std::string& hex) {
  if (hex.size() != 16 ||
      hex.find_first_not_of("0123456789abcdefABCDEF") != std::string::npos) {
    throw ParseError("poison bundle: bad u64 hex field '" + hex + "'");
  }
  return std::strtoull(hex.c_str(), nullptr, 16);
}

std::uint64_t u64_field(const Json& obj, const char* key) {
  const std::int64_t v = obj.at(key).as_int();
  if (v < 0) {
    throw ParseError(std::string("poison bundle: negative field ") + key);
  }
  return static_cast<std::uint64_t>(v);
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw IoError("poison bundle: cannot read " + path.string());
  }
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::filesystem::path& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw IoError("poison bundle: cannot write " + path.string());
  }
  out << text;
  out.flush();
  if (!out) {
    throw IoError("poison bundle: short write to " + path.string());
  }
}

/// The deterministic slice of a run's metric stream: chaos.* counters and
/// gauges are pure functions of the campaign (timing metrics are not and
/// stay out).
std::string chaos_obs_jsonl(const obs::MetricsSnapshot& snapshot) {
  std::string out;
  const auto is_chaos = [](const std::string& name) {
    return name.rfind("chaos.", 0) == 0;
  };
  for (const auto& [name, value] : snapshot.counters) {
    if (!is_chaos(name)) {
      continue;
    }
    Json line = Json::object();
    line.set("type", Json("counter"));
    line.set("name", Json(name));
    line.set("value", Json(value));
    out += line.dump();
    out += '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    if (!is_chaos(name)) {
      continue;
    }
    Json line = Json::object();
    line.set("type", Json("gauge"));
    line.set("name", Json(name));
    line.set("value", Json(value));
    line.set("value_bits", Json(double_to_hex_bits(value)));
    out += line.dump();
    out += '\n';
  }
  return out;
}

}  // namespace

PoisonBundle poison_bundle_for(const GridSpec& spec,
                               const CellSummary& cell) {
  if (cell.rate_index >= spec.rate_scales.size() ||
      cell.policy_index >= spec.policies.size()) {
    throw InvalidArgument("poison_bundle_for: cell outside the grid");
  }
  PoisonBundle bundle;
  bundle.grid_name = spec.name;
  bundle.fingerprint = grid_fingerprint(spec);
  bundle.rate_index = cell.rate_index;
  bundle.policy_index = cell.policy_index;
  bundle.seed_index = cell.worst_seed_index;
  bundle.rate_scale = spec.rate_scales[cell.rate_index];
  bundle.policy_label = spec.policies[cell.policy_index].label;
  bundle.plan = scaled_plan(spec.base_plan, bundle.rate_scale);
  bundle.policy = spec.policies[cell.policy_index].policy;
  bundle.fleet_seed = grid_fleet_seed(spec.master_seed, bundle.seed_index);
  bundle.months = spec.months;
  bundle.measurements_per_month = spec.measurements_per_month;
  bundle.device_count = spec.device_count;
  bundle.total_bits = spec.total_bits;
  bundle.puf_window_bits = spec.puf_window_bits;
  return bundle;
}

Json poison_bundle_to_json(const PoisonBundle& bundle) {
  Json obj = Json::object();
  obj.set("kind", Json("poison_bundle"));
  obj.set("version", Json(1));
  obj.set("grid", Json(bundle.grid_name));
  obj.set("fingerprint", Json(bundle.fingerprint));
  obj.set("rate_index", Json(bundle.rate_index));
  obj.set("policy_index", Json(bundle.policy_index));
  obj.set("seed_index", Json(bundle.seed_index));
  obj.set("rate_scale", Json(bundle.rate_scale));
  obj.set("rate_scale_bits", Json(double_to_hex_bits(bundle.rate_scale)));
  obj.set("policy_label", Json(bundle.policy_label));
  obj.set("plan", fault_plan_to_json(bundle.plan));
  obj.set("policy", retry_policy_to_json(bundle.policy));
  obj.set("fleet_seed", Json(u64_to_hex(bundle.fleet_seed)));
  obj.set("months", Json(bundle.months));
  obj.set("measurements_per_month", Json(bundle.measurements_per_month));
  obj.set("device_count", Json(bundle.device_count));
  obj.set("total_bits", Json(bundle.total_bits));
  obj.set("puf_window_bits", Json(bundle.puf_window_bits));
  return obj;
}

PoisonBundle poison_bundle_from_json(const Json& json) {
  if (!json.is_object() || !json.contains("kind") ||
      json.at("kind").as_string() != "poison_bundle") {
    throw ParseError("poison bundle: not a poison_bundle document");
  }
  PoisonBundle bundle;
  bundle.grid_name = json.at("grid").as_string();
  bundle.fingerprint = json.at("fingerprint").as_string();
  bundle.rate_index = u64_field(json, "rate_index");
  bundle.policy_index = u64_field(json, "policy_index");
  bundle.seed_index = u64_field(json, "seed_index");
  bundle.rate_scale =
      double_from_hex_bits(json.at("rate_scale_bits").as_string());
  bundle.policy_label = json.at("policy_label").as_string();
  bundle.plan = fault_plan_from_json(json.at("plan"));
  bundle.policy = retry_policy_from_json(json.at("policy"));
  bundle.policy.validate();
  bundle.fleet_seed = u64_from_hex(json.at("fleet_seed").as_string());
  bundle.months = u64_field(json, "months");
  bundle.measurements_per_month = u64_field(json, "measurements_per_month");
  bundle.device_count = u64_field(json, "device_count");
  bundle.total_bits = u64_field(json, "total_bits");
  bundle.puf_window_bits = u64_field(json, "puf_window_bits");
  return bundle;
}

CampaignConfig poison_campaign_config(const PoisonBundle& bundle) {
  CampaignConfig cfg;
  cfg.fleet = paper_fleet_config();
  cfg.fleet.device_count = bundle.device_count;
  cfg.fleet.seed = bundle.fleet_seed;
  if (bundle.total_bits != 0) {
    cfg.fleet.device.total_bits = bundle.total_bits;
    cfg.fleet.device.puf_window_bits = bundle.puf_window_bits;
  }
  cfg.months = bundle.months;
  cfg.measurements_per_month = bundle.measurements_per_month;
  cfg.threads = 1;
  cfg.faults = bundle.plan;
  cfg.retry = bundle.policy;
  return cfg;
}

std::string result_identity_jsonl(const CampaignResult& result) {
  std::string out;
  for (const FleetMonthMetrics& m : result.series) {
    Json line = Json::object();
    line.set("kind", Json("month"));
    line.set("metrics", fleet_month_to_json(m));
    out += line.dump();
    out += '\n';
  }
  Json refs = Json::object();
  refs.set("kind", Json("references"));
  Json patterns = Json::array();
  for (const BitVector& r : result.references) {
    Json p = Json::object();
    p.set("bits", Json(r.size()));
    p.set("hex", Json(r.to_hex()));
    patterns.push_back(std::move(p));
  }
  refs.set("patterns", std::move(patterns));
  out += refs.dump();
  out += '\n';
  Json health = Json::object();
  health.set("kind", Json("health"));
  health.set("health", campaign_health_to_json(result.health));
  out += health.dump();
  out += '\n';
  return out;
}

PoisonBundle export_poison_bundle(const GridSpec& spec,
                                  const CellSummary& cell,
                                  const std::string& dir) {
  const PoisonBundle bundle = poison_bundle_for(spec, cell);
  const std::filesystem::path root(dir);
  std::filesystem::create_directories(root);

  CampaignConfig cfg = poison_campaign_config(bundle);
  cfg.checkpoint_dir = (root / kStoreDir).string();
  obs::MetricsRegistry metrics;
  cfg.metrics = &metrics;

  const CampaignResult result = run_campaign(cfg);

  write_file(root / kPoisonFile, poison_bundle_to_json(bundle).dump() + "\n");
  write_file(root / kExpectedFile, result_identity_jsonl(result));
  write_file(root / kObsFile, chaos_obs_jsonl(metrics.snapshot()));
  return bundle;
}

std::string ReplayReport::render() const {
  if (identical) {
    return "replay OK: " + std::to_string(lines_compared) +
           " identity lines byte-identical\n";
  }
  return "replay MISMATCH after " + std::to_string(lines_compared) +
         " matching lines:\n" + first_diff;
}

ReplayReport replay_poison_bundle(const std::string& dir,
                                  std::size_t threads) {
  const std::filesystem::path root(dir);
  const PoisonBundle bundle =
      poison_bundle_from_json(Json::parse(read_file(root / kPoisonFile)));
  const std::string expected = read_file(root / kExpectedFile);

  CampaignConfig cfg = poison_campaign_config(bundle);
  cfg.threads = threads;
  const std::string actual = result_identity_jsonl(run_campaign(cfg));

  ReplayReport report;
  if (actual == expected) {
    report.identical = true;
    for (const char c : expected) {
      report.lines_compared += c == '\n';
    }
    return report;
  }
  std::istringstream want(expected);
  std::istringstream got(actual);
  std::string want_line;
  std::string got_line;
  while (true) {
    const bool have_want = static_cast<bool>(std::getline(want, want_line));
    const bool have_got = static_cast<bool>(std::getline(got, got_line));
    if (!have_want && !have_got) {
      break;  // only possible difference left: trailing bytes
    }
    if (!have_want || !have_got || want_line != got_line) {
      report.first_diff = "  expected: " +
                          (have_want ? want_line : "<end of file>") +
                          "\n  actual:   " +
                          (have_got ? got_line : "<end of file>") + "\n";
      break;
    }
    ++report.lines_compared;
  }
  if (report.first_diff.empty()) {
    report.first_diff = "  files differ only in trailing bytes\n";
  }
  return report;
}

}  // namespace pufaging::chaoslab
