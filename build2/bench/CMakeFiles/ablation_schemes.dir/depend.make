# Empty dependencies file for ablation_schemes.
# This may be replaced when dependencies are built.
