// Special functions used by the silicon model and the statistics suite.
//
// The silicon model needs the normal CDF and quantile (one-probability of a
// cell is p = Phi(v / sigma_n)); the NIST-style randomness tests need the
// regularized incomplete gamma function for chi-square p-values.
#pragma once

#include <cstdint>

namespace pufaging {

/// Standard normal cumulative distribution function Phi(x).
double normal_cdf(double x);

/// Inverse of the standard normal CDF (quantile function).
/// Uses Acklam's rational approximation refined by one Halley step;
/// |relative error| < 1e-9 over (0, 1). Throws InvalidArgument outside (0,1).
double normal_quantile(double p);

/// Regularized lower incomplete gamma function P(a, x) = gamma(a,x)/Gamma(a).
/// Preconditions: a > 0, x >= 0.
double gamma_p(double a, double x);

/// Regularized upper incomplete gamma function Q(a, x) = 1 - P(a, x).
double gamma_q(double a, double x);

/// Natural log of the binomial coefficient C(n, k).
double log_binomial(std::uint64_t n, std::uint64_t k);

/// Survival function of Binomial(n, p): Pr(X >= k). Exact summation in log
/// space; used for key-generator failure-probability estimates.
double binomial_sf(std::uint64_t n, double p, std::uint64_t k);

/// Binary min-entropy of a Bernoulli(p) source: -log2(max(p, 1-p)).
/// This is the per-bit quantity behind both PUF entropy (Section IV-B4 of
/// the paper) and noise entropy (Section IV-C2).
double binary_min_entropy(double p);

/// Binary Shannon entropy of a Bernoulli(p) source, in bits.
double binary_shannon_entropy(double p);

}  // namespace pufaging
