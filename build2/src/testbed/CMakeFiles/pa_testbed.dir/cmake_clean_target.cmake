file(REMOVE_RECURSE
  "libpa_testbed.a"
)
