#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace pufaging {

Histogram::Histogram(double lo, double hi, std::size_t bin_count)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bin_count)),
      counts_(bin_count, 0) {
  if (!(hi > lo)) {
    throw InvalidArgument("Histogram: hi must exceed lo");
  }
  if (bin_count == 0) {
    throw InvalidArgument("Histogram: bin_count must be > 0");
  }
}

void Histogram::add(double x) {
  const double scaled = (x - lo_) / width_;
  std::ptrdiff_t idx = static_cast<std::ptrdiff_t>(std::floor(scaled));
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

void Histogram::add_all(std::span<const double> xs) {
  for (double x : xs) {
    add(x);
  }
}

double Histogram::percent(std::size_t i) const {
  if (total_ == 0) {
    return 0.0;
  }
  return 100.0 * static_cast<double>(counts_.at(i)) /
         static_cast<double>(total_);
}

double Histogram::bin_center(std::size_t i) const {
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

double Histogram::bin_lower(std::size_t i) const {
  return lo_ + static_cast<double>(i) * width_;
}

std::string Histogram::to_ascii(std::size_t max_bar_width) const {
  std::ostringstream out;
  const std::size_t peak =
      counts_.empty() ? 0 : *std::max_element(counts_.begin(), counts_.end());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) {
      continue;
    }
    const std::size_t bar =
        peak == 0 ? 0 : (counts_[i] * max_bar_width + peak - 1) / peak;
    out << "  [";
    out.precision(4);
    out << std::fixed << bin_lower(i) << ", " << bin_lower(i) + width_
        << ")  ";
    out << std::string(bar, '#') << "  " << counts_[i] << " ("
        << percent(i) << "%)\n";
  }
  return out.str();
}

}  // namespace pufaging
