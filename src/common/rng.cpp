#include "common/rng.hpp"

#include <bit>
#include <cmath>

#include "common/error.hpp"

namespace pufaging {

Xoshiro256StarStar::Xoshiro256StarStar(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : state_) {
    s = sm.next();
  }
  // An all-zero state is a fixed point; SplitMix64 cannot produce four zero
  // words from any seed, but guard anyway for safety.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 0x9E3779B97F4A7C15ULL;
  }
}

std::uint64_t Xoshiro256StarStar::next() {
  const std::uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = std::rotl(state_[3], 45);
  return result;
}

double Xoshiro256StarStar::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256StarStar::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

double Xoshiro256StarStar::gaussian() {
  if (cached_gaussian_) {
    const double g = *cached_gaussian_;
    cached_gaussian_.reset();
    return g;
  }
  // Marsaglia polar method.
  double u;
  double v;
  double s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  return u * factor;
}

double Xoshiro256StarStar::gaussian(double mean, double stddev) {
  return mean + stddev * gaussian();
}

bool Xoshiro256StarStar::bernoulli(double p) {
  return bernoulli_u64(bernoulli_threshold(p));
}

void Xoshiro256StarStar::set_state(const std::array<std::uint64_t, 4>& state) {
  if ((state[0] | state[1] | state[2] | state[3]) == 0) {
    throw InvalidArgument("Xoshiro256StarStar::set_state: all-zero state");
  }
  state_ = state;
  cached_gaussian_.reset();
}

std::uint64_t Xoshiro256StarStar::below(std::uint64_t bound) {
  if (bound == 0) {
    throw InvalidArgument("Xoshiro256StarStar::below: bound must be > 0");
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = bound * (UINT64_MAX / bound);
  std::uint64_t draw;
  do {
    draw = next();
  } while (draw >= limit);
  return draw % bound;
}

std::uint64_t bernoulli_threshold(double p) {
  if (p <= 0.0) {
    return 0;
  }
  if (p >= 1.0) {
    return UINT64_MAX;
  }
  // ldexp(p, 64) may round to 2^64 for p just below 1; clamp via long double.
  const long double scaled = std::ldexp(static_cast<long double>(p), 64);
  if (scaled >= static_cast<long double>(UINT64_MAX)) {
    return UINT64_MAX;
  }
  return static_cast<std::uint64_t>(scaled);
}

namespace {
constexpr std::uint32_t kPhiloxM0 = 0xD2511F53U;
constexpr std::uint32_t kPhiloxM1 = 0xCD9E8D57U;
constexpr std::uint32_t kPhiloxW0 = 0x9E3779B9U;
constexpr std::uint32_t kPhiloxW1 = 0xBB67AE85U;

inline void philox_round(Philox4x32::Counter& ctr, Philox4x32::Key& key) {
  const std::uint64_t p0 = std::uint64_t{kPhiloxM0} * ctr[0];
  const std::uint64_t p1 = std::uint64_t{kPhiloxM1} * ctr[2];
  const auto hi0 = static_cast<std::uint32_t>(p0 >> 32);
  const auto lo0 = static_cast<std::uint32_t>(p0);
  const auto hi1 = static_cast<std::uint32_t>(p1 >> 32);
  const auto lo1 = static_cast<std::uint32_t>(p1);
  ctr = {hi1 ^ ctr[1] ^ key[0], lo1, hi0 ^ ctr[3] ^ key[1], lo0};
  key[0] += kPhiloxW0;
  key[1] += kPhiloxW1;
}
}  // namespace

Philox4x32::Counter Philox4x32::block(Counter counter, Key key) {
  for (int round = 0; round < 10; ++round) {
    philox_round(counter, key);
  }
  return counter;
}

std::uint64_t Philox4x32::at(std::uint64_t key64, std::uint64_t index) {
  const Counter in = {static_cast<std::uint32_t>(index),
                      static_cast<std::uint32_t>(index >> 32), 0, 0};
  const Key key = {static_cast<std::uint32_t>(key64),
                   static_cast<std::uint32_t>(key64 >> 32)};
  const Counter out = block(in, key);
  return (std::uint64_t{out[1]} << 32) | out[0];
}

std::uint64_t split_seed(std::uint64_t root, std::uint64_t domain,
                         std::uint64_t index) {
  return Philox4x32::at(root ^ domain, index);
}

double Philox4x32::gaussian_at(std::uint64_t key64, std::uint64_t index) {
  const Counter in = {static_cast<std::uint32_t>(index),
                      static_cast<std::uint32_t>(index >> 32), 0x5EED5EEDU, 0};
  const Key key = {static_cast<std::uint32_t>(key64),
                   static_cast<std::uint32_t>(key64 >> 32)};
  const Counter out = block(in, key);
  const std::uint64_t a = (std::uint64_t{out[1]} << 32) | out[0];
  const std::uint64_t b = (std::uint64_t{out[3]} << 32) | out[2];
  // Box-Muller. u1 in (0,1], u2 in [0,1).
  const double u1 =
      (static_cast<double>(a >> 11) + 1.0) * 0x1.0p-53;
  const double u2 = static_cast<double>(b >> 11) * 0x1.0p-53;
  const double r = std::sqrt(-2.0 * std::log(u1));
  return r * std::cos(2.0 * 3.14159265358979323846 * u2);
}

}  // namespace pufaging
