# Empty dependencies file for fig6_timeseries.
# This may be replaced when dependencies are built.
