#include "analysis/monthly.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace pufaging {
namespace {

TEST(DeviceMonthAccumulator, MatchesManualComputation) {
  const BitVector ref = BitVector::from_string("1100");
  DeviceMonthAccumulator acc(7, ref);
  acc.add(BitVector::from_string("1100"));  // HD 0, HW 0.5
  acc.add(BitVector::from_string("1101"));  // HD 1, HW 0.75
  acc.add(BitVector::from_string("0100"));  // HD 1, HW 0.25
  const DeviceMonthMetrics m = acc.finalize();
  EXPECT_EQ(m.device_id, 7U);
  EXPECT_EQ(m.measurement_count, 3U);
  EXPECT_NEAR(m.wchd_mean, (0.0 + 0.25 + 0.25) / 3.0, 1e-12);
  EXPECT_NEAR(m.fhw_mean, 0.5, 1e-12);
  // Ones per cell: c0: 2/3 unstable, c1: 3/3 stable, c2: 0/3 stable,
  // c3: 1/3 unstable -> stable ratio 0.5.
  EXPECT_DOUBLE_EQ(m.stable_ratio, 0.5);
  const double expected_entropy =
      (-std::log2(2.0 / 3.0) + 0.0 + 0.0 + -std::log2(2.0 / 3.0)) / 4.0;
  EXPECT_NEAR(m.noise_entropy, expected_entropy, 1e-12);
  EXPECT_EQ(m.first_pattern, BitVector::from_string("1100"));
}

TEST(DeviceMonthAccumulator, Validation) {
  EXPECT_THROW(DeviceMonthAccumulator(0, BitVector()), InvalidArgument);
  DeviceMonthAccumulator acc(0, BitVector(4));
  EXPECT_THROW(acc.add(BitVector(5)), InvalidArgument);
  EXPECT_THROW(acc.finalize(), InvalidArgument);
}

std::vector<DeviceMonthMetrics> three_devices() {
  std::vector<DeviceMonthMetrics> devices(3);
  for (std::uint32_t d = 0; d < 3; ++d) {
    devices[d].device_id = d;
    devices[d].measurement_count = 10;
  }
  devices[0].wchd_mean = 0.02;
  devices[1].wchd_mean = 0.03;
  devices[2].wchd_mean = 0.025;
  devices[0].fhw_mean = 0.60;
  devices[1].fhw_mean = 0.65;
  devices[2].fhw_mean = 0.62;
  devices[0].stable_ratio = 0.85;
  devices[1].stable_ratio = 0.88;
  devices[2].stable_ratio = 0.86;
  devices[0].noise_entropy = 0.030;
  devices[1].noise_entropy = 0.027;
  devices[2].noise_entropy = 0.033;
  devices[0].first_pattern = BitVector::from_string("0000");
  devices[1].first_pattern = BitVector::from_string("1111");
  devices[2].first_pattern = BitVector::from_string("1100");
  return devices;
}

TEST(CombineFleetMonth, AveragesAndWorstCaseDirections) {
  const FleetMonthMetrics fleet = combine_fleet_month(three_devices(), 5.0);
  EXPECT_DOUBLE_EQ(fleet.month, 5.0);
  EXPECT_NEAR(fleet.wchd_avg, 0.025, 1e-12);
  EXPECT_DOUBLE_EQ(fleet.wchd_wc, 0.03);   // worst = max
  EXPECT_DOUBLE_EQ(fleet.fhw_wc, 0.65);    // worst bias = max
  EXPECT_DOUBLE_EQ(fleet.stable_wc, 0.88); // worst for TRNG = max stable
  EXPECT_DOUBLE_EQ(fleet.noise_entropy_wc, 0.027);  // worst = min
  // BCHD pairs: (0,1)=1.0, (0,2)=0.5, (1,2)=0.5.
  EXPECT_NEAR(fleet.bchd_avg, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(fleet.bchd_wc, 0.5);  // worst uniqueness = min
  EXPECT_EQ(fleet.devices.size(), 3U);
}

TEST(CombineFleetMonth, PufEntropyOverFirstPatterns) {
  const FleetMonthMetrics fleet = combine_fleet_month(three_devices(), 0.0);
  // Locations: [0,1,1], [0,1,1], [0,1,0], [0,1,0] -> p in {1/3, 2/3}
  // everywhere -> H = -log2(2/3).
  EXPECT_NEAR(fleet.puf_entropy, -std::log2(2.0 / 3.0), 1e-12);
}

TEST(CombineFleetMonth, ReductionIsOrderIndependent) {
  // The parallel campaign engine may deliver device metrics in any
  // completion order; the combined fleet view must be bit-identical.
  std::vector<DeviceMonthMetrics> in_order = three_devices();
  std::vector<DeviceMonthMetrics> shuffled = {in_order[2], in_order[0],
                                              in_order[1]};
  const FleetMonthMetrics a = combine_fleet_month(std::move(in_order), 3.0);
  const FleetMonthMetrics b = combine_fleet_month(std::move(shuffled), 3.0);
  EXPECT_EQ(a.wchd_avg, b.wchd_avg);
  EXPECT_EQ(a.wchd_wc, b.wchd_wc);
  EXPECT_EQ(a.fhw_avg, b.fhw_avg);
  EXPECT_EQ(a.stable_avg, b.stable_avg);
  EXPECT_EQ(a.noise_entropy_avg, b.noise_entropy_avg);
  EXPECT_EQ(a.bchd_avg, b.bchd_avg);
  EXPECT_EQ(a.bchd_wc, b.bchd_wc);
  EXPECT_EQ(a.puf_entropy, b.puf_entropy);
  ASSERT_EQ(a.devices.size(), b.devices.size());
  for (std::size_t d = 0; d < a.devices.size(); ++d) {
    // Canonicalized to ascending device-id order in both cases.
    EXPECT_EQ(a.devices[d].device_id, b.devices[d].device_id);
    EXPECT_EQ(a.devices[d].device_id, d);
  }
}

TEST(CombineFleetMonth, RequiresTwoDevices) {
  std::vector<DeviceMonthMetrics> one(1);
  one[0].first_pattern = BitVector(4);
  EXPECT_THROW(combine_fleet_month(std::move(one), 0.0), InvalidArgument);
}

}  // namespace
}  // namespace pufaging
