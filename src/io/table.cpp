#include "io/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace pufaging {

TablePrinter::TablePrinter(std::vector<std::string> header,
                           std::vector<Align> alignments)
    : header_(std::move(header)), alignments_(std::move(alignments)) {
  if (header_.empty()) {
    throw InvalidArgument("TablePrinter: header must not be empty");
  }
  if (alignments_.empty()) {
    alignments_.assign(header_.size(), Align::kLeft);
  }
  if (alignments_.size() != header_.size()) {
    throw InvalidArgument("TablePrinter: alignment count mismatch");
  }
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  if (cells.size() > header_.size()) {
    throw InvalidArgument("TablePrinter::add_row: too many cells");
  }
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::to_string(std::size_t gap) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const std::string spacer(gap, ' ');
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) {
        os << spacer;
      }
      const std::size_t pad = widths[c] - row[c].size();
      if (alignments_[c] == Align::kRight) {
        os << std::string(pad, ' ') << row[c];
      } else {
        os << row[c];
        if (c + 1 < row.size()) {
          os << std::string(pad, ' ');
        }
      }
    }
    os << '\n';
  };
  emit(header_);
  std::vector<std::string> rule;
  rule.reserve(header_.size());
  for (std::size_t w : widths) {
    rule.emplace_back(w, '-');
  }
  emit(rule);
  for (const auto& row : rows_) {
    emit(row);
  }
  return os.str();
}

std::string TablePrinter::percent(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string TablePrinter::signed_percent(double fraction, int decimals,
                                         bool negligible_label) {
  if (negligible_label && std::fabs(fraction) < 1e-4) {
    return "negligible";
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%+.*f%%", decimals, fraction * 100.0);
  return buf;
}

}  // namespace pufaging
