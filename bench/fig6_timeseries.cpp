// Reproduces paper Fig. 6: development of (a) WCHD, (b) Hamming weight,
// (c) noise entropy and (d) PUF entropy over the two-year aging test.
// Expected shapes: (a) rises ~2.5% -> ~3.0% sub-linearly, (b) flat per
// device in the 60-70% band, (c) rises ~3.0% -> ~3.6%, (d) flat ~65%.
// Full series are written to fig6a..fig6d CSV files.
#include <functional>

#include "analysis/timeseries.hpp"
#include "bench_common.hpp"
#include "common/thread_pool.hpp"
#include "testbed/campaign.hpp"

namespace pufaging {
namespace {

// A representative subset of device lines keeps the ASCII panels readable;
// the CSVs carry all 16 devices.
constexpr std::uint32_t kShownDevices[] = {0, 3, 7, 11, 15};

void panel(const std::vector<FleetMonthMetrics>& series, const char* title,
           const std::function<double(const DeviceMonthMetrics&)>& device_acc,
           const char* csv_name) {
  std::printf("\n%s\n", title);
  std::vector<MetricSeries> shown;
  for (std::uint32_t d : kShownDevices) {
    shown.push_back(extract_device_series(series, d,
                                          "S" + std::to_string(d),
                                          device_acc));
  }
  std::printf("%s", render_chart(shown, 76, 14).c_str());

  std::vector<MetricSeries> all;
  for (std::uint32_t d = 0; d < 16; ++d) {
    all.push_back(extract_device_series(series, d, "S" + std::to_string(d),
                                        device_acc));
  }
  series_to_csv(all).save(csv_name);
  std::printf("full per-device series written to %s\n", csv_name);
}

void reproduce() {
  bench::banner("Fig. 6 - Development of PUF qualities over two years");
  CampaignConfig config;
  config.threads = 0;  // fan the 16 devices out over all cores
  std::printf("running the 24-month, 16-device, 1000-measurements/month "
              "campaign on %zu threads...\n",
              ThreadPool::resolve_thread_count(config.threads));
  const CampaignResult r = run_campaign(config);

  panel(r.series, "(a) Within-class Hamming distance per device",
        [](const DeviceMonthMetrics& d) { return d.wchd_mean; },
        "fig6a_wchd.csv");
  panel(r.series, "(b) Hamming weight per device",
        [](const DeviceMonthMetrics& d) { return d.fhw_mean; },
        "fig6b_hw.csv");
  panel(r.series, "(c) Noise entropy per device",
        [](const DeviceMonthMetrics& d) { return d.noise_entropy; },
        "fig6c_noise_entropy.csv");

  std::printf("\n(d) PUF entropy (fleet)\n");
  const MetricSeries puf = extract_series(
      r.series, "puf_entropy",
      [](const FleetMonthMetrics& m) { return m.puf_entropy; });
  std::printf("%s", render_chart({puf}, 76, 10).c_str());
  series_to_csv({puf}).save("fig6d_puf_entropy.csv");
  std::printf("series written to fig6d_puf_entropy.csv\n");

  std::printf("\nshape check vs paper:\n");
  std::printf("  (a) WCHD avg %.2f%% -> %.2f%% (paper 2.49%% -> 2.97%%)\n",
              100.0 * r.series.front().wchd_avg,
              100.0 * r.series.back().wchd_avg);
  std::printf("  (b) HW avg %.2f%% -> %.2f%% (paper flat at 62.70%%)\n",
              100.0 * r.series.front().fhw_avg,
              100.0 * r.series.back().fhw_avg);
  std::printf("  (c) noise entropy avg %.2f%% -> %.2f%% "
              "(paper 3.05%% -> 3.64%%)\n",
              100.0 * r.series.front().noise_entropy_avg,
              100.0 * r.series.back().noise_entropy_avg);
  std::printf("  (d) PUF entropy %.2f%% -> %.2f%% (paper flat ~64.9%%)\n",
              100.0 * r.series.front().puf_entropy,
              100.0 * r.series.back().puf_entropy);
}

void BM_DeviceMonthSnapshot(benchmark::State& state) {
  // One device-month of the campaign: N measurements through the
  // streaming accumulator.
  SramDevice d = make_device(paper_fleet_config(), 0);
  const BitVector reference = d.measure();
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    DeviceMonthAccumulator acc(0, reference);
    for (std::size_t i = 0; i < n; ++i) {
      acc.add(d.measure());
    }
    benchmark::DoNotOptimize(acc.finalize());
  }
}
BENCHMARK(BM_DeviceMonthSnapshot)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_AgeOneMonth(benchmark::State& state) {
  SramDevice d = make_device(paper_fleet_config(), 0);
  for (auto _ : state) {
    d.age_months(1.0);
  }
}
BENCHMARK(BM_AgeOneMonth)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pufaging

int main(int argc, char** argv) {
  return pufaging::bench::run(argc, argv, pufaging::reproduce);
}
