// Checkpoint/resume: a campaign killed after any month and resumed from
// its checkpoint must be bit-identical to the uninterrupted run — that is
// the whole point of serializing the measurement-RNG state instead of
// approximating it.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "testbed/campaign.hpp"
#include "testbed/checkpoint.hpp"

namespace pufaging {
namespace {

/// Unique scratch dir under the gtest temp root, removed on destruction.
struct ScratchDir {
  explicit ScratchDir(const std::string& name)
      : path(std::filesystem::path(::testing::TempDir()) /
             ("pufaging_" + name)) {
    std::filesystem::remove_all(path);
  }
  ~ScratchDir() { std::filesystem::remove_all(path); }
  std::string str() const { return path.string(); }
  std::filesystem::path path;
};

CampaignConfig chaos_config() {
  CampaignConfig config;
  config.months = 3;
  config.measurements_per_month = 40;
  config.threads = 2;
  config.faults.i2c_corrupt_rate = 0.02;
  config.faults.i2c_drop_rate = 0.01;
  config.faults.brownout_rate = 0.01;
  config.faults.dropouts.push_back({7, 2});
  return config;
}

void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.references.size(), b.references.size());
  for (std::size_t d = 0; d < a.references.size(); ++d) {
    EXPECT_EQ(a.references[d], b.references[d]) << "reference of device " << d;
  }
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t m = 0; m < a.series.size(); ++m) {
    const FleetMonthMetrics& x = a.series[m];
    const FleetMonthMetrics& y = b.series[m];
    EXPECT_EQ(x.wchd_avg, y.wchd_avg) << "month " << m;
    EXPECT_EQ(x.noise_entropy_avg, y.noise_entropy_avg) << "month " << m;
    EXPECT_EQ(x.bchd_avg, y.bchd_avg) << "month " << m;
    EXPECT_EQ(x.puf_entropy, y.puf_entropy) << "month " << m;
    EXPECT_EQ(x.coverage, y.coverage) << "month " << m;
    ASSERT_EQ(x.devices.size(), y.devices.size()) << "month " << m;
    for (std::size_t d = 0; d < x.devices.size(); ++d) {
      EXPECT_EQ(x.devices[d].device_id, y.devices[d].device_id);
      EXPECT_EQ(x.devices[d].wchd_mean, y.devices[d].wchd_mean)
          << "month " << m << " device " << d;
      EXPECT_EQ(x.devices[d].noise_entropy, y.devices[d].noise_entropy)
          << "month " << m << " device " << d;
      EXPECT_EQ(x.devices[d].first_pattern, y.devices[d].first_pattern);
    }
  }
  ASSERT_EQ(a.health.months.size(), b.health.months.size());
  for (std::size_t m = 0; m < a.health.months.size(); ++m) {
    EXPECT_EQ(a.health.months[m].crc_retries, b.health.months[m].crc_retries);
    EXPECT_EQ(a.health.months[m].measurements_dropped,
              b.health.months[m].measurements_dropped);
    EXPECT_EQ(a.health.months[m].coverage, b.health.months[m].coverage);
  }
}

TEST(Checkpoint, DoubleHexBitsRoundTripIsExact) {
  for (const double v : {0.0, -0.0, 1.0, -1.0, 1.0 / 3.0, 2.970000000000001e-2,
                         1e-308, 1.7976931348623157e308}) {
    const std::string hex = double_to_hex_bits(v);
    EXPECT_EQ(hex.size(), 16U);
    const double back = double_from_hex_bits(hex);
    // Bit-pattern comparison: distinguishes -0.0 from 0.0.
    EXPECT_EQ(double_to_hex_bits(back), hex);
  }
  EXPECT_THROW(double_from_hex_bits("xyz"), ParseError);
}

TEST(Checkpoint, SaveLoadRoundTrip) {
  ScratchDir dir("ckpt_roundtrip");
  EXPECT_FALSE(has_checkpoint(dir.str()));
  EXPECT_THROW(load_checkpoint(dir.str()), IoError);

  CampaignCheckpoint ckpt;
  ckpt.next_month = 2;
  ckpt.fleet_seed = 0xABCD;
  ckpt.device_count = 2;
  ckpt.months = 5;
  ckpt.measurements_per_month = 40;
  ckpt.fault_plan_json = fault_plan_to_json(FaultPlan{}).dump();
  for (std::uint32_t d = 0; d < 2; ++d) {
    DeviceCheckpoint dev;
    dev.device_id = d;
    dev.rng_state = {1 + d, 2, 3, 4};
    dev.measurement_count = 80 + d;
    ckpt.devices.push_back(dev);
  }
  ckpt.fault_states.resize(2);
  ckpt.fault_states[1].quarantined = true;
  ckpt.fault_states[1].cooldown_remaining = 7;
  ckpt.references.resize(2);
  ckpt.references[0] = BitVector::from_string("10110011");
  // references[1] left empty: board never delivered.
  for (std::size_t m = 0; m < 2; ++m) {
    FleetMonthMetrics fm;
    fm.month = static_cast<double>(m);
    fm.wchd_avg = 0.01 * static_cast<double>(m + 1) / 3.0;
    fm.devices_expected = 2;
    fm.devices_reporting = 1;
    fm.coverage = 0.5;
    fm.degraded = true;
    DeviceMonthMetrics dm;
    dm.device_id = 0;
    dm.wchd_mean = 0.0123456789012345678;
    dm.first_pattern = ckpt.references[0];
    dm.measurement_count = 40;
    fm.devices.push_back(dm);
    ckpt.series.push_back(fm);
  }
  MonthHealth mh;
  mh.month = 1.0;
  mh.timeouts = 3;
  ckpt.health.months.push_back(mh);

  save_checkpoint(dir.str(), ckpt);
  EXPECT_TRUE(has_checkpoint(dir.str()));
  const CampaignCheckpoint back = load_checkpoint(dir.str());
  EXPECT_EQ(back.next_month, 2U);
  EXPECT_EQ(back.fleet_seed, 0xABCDU);
  EXPECT_EQ(back.device_count, 2U);
  EXPECT_EQ(back.months, 5U);
  EXPECT_EQ(back.measurements_per_month, 40U);
  EXPECT_EQ(back.fault_plan_json, ckpt.fault_plan_json);
  ASSERT_EQ(back.devices.size(), 2U);
  EXPECT_EQ(back.devices[1].rng_state, (std::array<std::uint64_t, 4>{2, 2, 3, 4}));
  EXPECT_EQ(back.devices[1].measurement_count, 81U);
  ASSERT_EQ(back.fault_states.size(), 2U);
  EXPECT_TRUE(back.fault_states[1].quarantined);
  EXPECT_EQ(back.fault_states[1].cooldown_remaining, 7U);
  ASSERT_EQ(back.references.size(), 2U);
  EXPECT_EQ(back.references[0], ckpt.references[0]);
  EXPECT_TRUE(back.references[1].empty());
  ASSERT_EQ(back.series.size(), 2U);
  EXPECT_EQ(back.series[1].wchd_avg, ckpt.series[1].wchd_avg);  // bit-exact
  EXPECT_EQ(back.series[1].devices_reporting, 1U);
  EXPECT_TRUE(back.series[1].degraded);
  ASSERT_EQ(back.series[1].devices.size(), 1U);
  EXPECT_EQ(back.series[1].devices[0].wchd_mean,
            ckpt.series[1].devices[0].wchd_mean);
  EXPECT_EQ(back.series[1].devices[0].first_pattern, ckpt.references[0]);
  ASSERT_EQ(back.health.months.size(), 1U);
  EXPECT_EQ(back.health.months[0].timeouts, 3U);
}

TEST(Checkpoint, KillAndResumeIsBitIdentical) {
  // Reference: the uninterrupted chaotic campaign.
  const CampaignResult reference = run_campaign(chaos_config());
  ASSERT_TRUE(reference.completed);

  // Same campaign, killed after month 1 and resumed from disk.
  ScratchDir dir("ckpt_resume");
  CampaignConfig first_leg = chaos_config();
  first_leg.checkpoint_dir = dir.str();
  first_leg.halt_after_month = 1;
  const CampaignResult partial = run_campaign(first_leg);
  EXPECT_FALSE(partial.completed);
  EXPECT_EQ(partial.series.size(), 2U);
  EXPECT_TRUE(has_checkpoint(dir.str()));

  CampaignConfig second_leg = chaos_config();
  second_leg.checkpoint_dir = dir.str();
  second_leg.resume = true;
  second_leg.threads = 8;  // thread count may change across the restart
  const CampaignResult resumed = run_campaign(second_leg);
  EXPECT_TRUE(resumed.completed);
  expect_identical(reference, resumed);
}

TEST(Checkpoint, FaultFreeCampaignResumesBitIdentically) {
  CampaignConfig config;
  config.months = 2;
  config.measurements_per_month = 30;
  config.threads = 1;
  const CampaignResult reference = run_campaign(config);

  ScratchDir dir("ckpt_clean_resume");
  CampaignConfig first_leg = config;
  first_leg.checkpoint_dir = dir.str();
  first_leg.halt_after_month = 0;
  const CampaignResult partial = run_campaign(first_leg);
  EXPECT_FALSE(partial.completed);

  CampaignConfig second_leg = config;
  second_leg.checkpoint_dir = dir.str();
  second_leg.resume = true;
  const CampaignResult resumed = run_campaign(second_leg);
  EXPECT_TRUE(resumed.completed);
  ASSERT_EQ(resumed.series.size(), reference.series.size());
  for (std::size_t m = 0; m < reference.series.size(); ++m) {
    EXPECT_EQ(resumed.series[m].wchd_avg, reference.series[m].wchd_avg);
    EXPECT_EQ(resumed.series[m].puf_entropy, reference.series[m].puf_entropy);
  }
  EXPECT_EQ(resumed.references, reference.references);
}

TEST(Checkpoint, ResumeAtLastMonthReturnsTheStoredSeries) {
  ScratchDir dir("ckpt_done");
  CampaignConfig config;
  config.months = 1;
  config.measurements_per_month = 20;
  config.threads = 1;
  config.checkpoint_dir = dir.str();
  const CampaignResult finished = run_campaign(config);
  ASSERT_TRUE(finished.completed);

  // Resuming a completed campaign re-runs nothing and returns the series.
  config.resume = true;
  const CampaignResult again = run_campaign(config);
  EXPECT_TRUE(again.completed);
  ASSERT_EQ(again.series.size(), finished.series.size());
  for (std::size_t m = 0; m < finished.series.size(); ++m) {
    EXPECT_EQ(again.series[m].wchd_avg, finished.series[m].wchd_avg);
  }
}

TEST(Checkpoint, TruncatedCheckpointIsRejectedNotPartiallyApplied) {
  // Regression: the loader used to apply whatever prefix of a truncated
  // checkpoint still parsed line-by-line, silently resuming from a state
  // that mixed restored and default-initialized fields. Any proper prefix
  // must be rejected as a whole.
  ScratchDir dir("ckpt_truncated");
  CampaignConfig config;
  config.months = 2;
  config.measurements_per_month = 20;
  config.threads = 1;
  config.checkpoint_dir = dir.str();
  ASSERT_TRUE(run_campaign(config).completed);

  // Pull the snapshot blob the store holds and re-plant every proper
  // line-boundary prefix as a legacy `state.jsonl` checkpoint — the
  // ad-hoc layout the old loader consumed.
  MeasurementStore store(RealFs::instance(), dir.str());
  const std::string blob = store.snapshot();
  ASSERT_FALSE(blob.empty());
  ASSERT_NO_THROW(checkpoint_from_jsonl(blob));

  ScratchDir legacy("ckpt_truncated_legacy");
  std::filesystem::create_directories(legacy.path);
  for (std::size_t at = blob.find('\n'); at + 1 < blob.size();
       at = blob.find('\n', at + 1)) {
    std::ofstream(legacy.path / "state.jsonl", std::ios::binary)
        << blob.substr(0, at + 1);
    EXPECT_TRUE(has_checkpoint(legacy.str()));
    EXPECT_THROW(load_checkpoint(legacy.str()), ParseError)
        << "prefix of " << (at + 1) << " bytes was partially applied";
    // A resume over the truncated file must refuse up front, not run.
    CampaignConfig resume = config;
    resume.checkpoint_dir = legacy.str();
    resume.resume = true;
    EXPECT_THROW(run_campaign(resume), ParseError)
        << "prefix of " << (at + 1) << " bytes";
    std::filesystem::remove_all(legacy.path);
    std::filesystem::create_directories(legacy.path);
  }
}

TEST(Checkpoint, ResumeRejectsMismatchedConfig) {
  ScratchDir dir("ckpt_mismatch");
  CampaignConfig config = chaos_config();
  config.checkpoint_dir = dir.str();
  config.halt_after_month = 0;
  ASSERT_FALSE(run_campaign(config).completed);

  CampaignConfig wrong = chaos_config();
  wrong.checkpoint_dir = dir.str();
  wrong.resume = true;
  wrong.months = 7;
  EXPECT_THROW(run_campaign(wrong), InvalidArgument);

  wrong = chaos_config();
  wrong.checkpoint_dir = dir.str();
  wrong.resume = true;
  wrong.fleet.seed ^= 1;
  EXPECT_THROW(run_campaign(wrong), InvalidArgument);

  wrong = chaos_config();
  wrong.checkpoint_dir = dir.str();
  wrong.resume = true;
  wrong.faults.i2c_corrupt_rate = 0.5;
  EXPECT_THROW(run_campaign(wrong), InvalidArgument);

  // Resume without a checkpoint directory is a usage error; resume from an
  // empty directory is an I/O error.
  wrong = chaos_config();
  wrong.resume = true;
  EXPECT_THROW(run_campaign(wrong), InvalidArgument);
  ScratchDir empty("ckpt_empty");
  wrong.checkpoint_dir = empty.str();
  EXPECT_THROW(run_campaign(wrong), IoError);
}

}  // namespace
}  // namespace pufaging
