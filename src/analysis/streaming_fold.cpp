#include "analysis/streaming_fold.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/math.hpp"
#include "tilecol/kernels.hpp"

namespace pufaging {

namespace {

// Mirror of combine_fleet_month_core with the cross-device block swapped
// for the tile-streamed kernels. Every floating-point operation below
// happens in the same order, on the same values, as the materialized
// path — the differential suite holds the two bitwise-equal.
FleetMonthMetrics fold_fleet_month_core(std::vector<DeviceMonthMetrics> devices,
                                        double month, const FoldOptions& opts) {
  std::sort(devices.begin(), devices.end(),
            [](const DeviceMonthMetrics& a, const DeviceMonthMetrics& b) {
              return a.device_id < b.device_id;
            });

  FleetMonthMetrics fleet;
  fleet.month = month;
  fleet.devices_expected = devices.size();
  fleet.devices_reporting = devices.size();

  double wchd_sum = 0.0, fhw_sum = 0.0, stable_sum = 0.0, entropy_sum = 0.0;
  fleet.wchd_wc = 0.0;
  fleet.fhw_wc = 0.0;
  fleet.stable_wc = 0.0;
  fleet.noise_entropy_wc = 1.0;
  for (const DeviceMonthMetrics& d : devices) {
    wchd_sum += d.wchd_mean;
    fhw_sum += d.fhw_mean;
    stable_sum += d.stable_ratio;
    entropy_sum += d.noise_entropy;
    fleet.wchd_wc = std::max(fleet.wchd_wc, d.wchd_mean);
    fleet.fhw_wc = std::max(fleet.fhw_wc, d.fhw_mean);
    fleet.stable_wc = std::max(fleet.stable_wc, d.stable_ratio);
    fleet.noise_entropy_wc = std::min(fleet.noise_entropy_wc, d.noise_entropy);
  }
  if (!devices.empty()) {
    const double inv = 1.0 / static_cast<double>(devices.size());
    fleet.wchd_avg = wchd_sum * inv;
    fleet.fhw_avg = fhw_sum * inv;
    fleet.stable_avg = stable_sum * inv;
    fleet.noise_entropy_avg = entropy_sum * inv;
  } else {
    fleet.noise_entropy_wc = 0.0;
  }

  if (devices.size() >= 2) {
    const std::size_t n = devices.size();
    const std::size_t bits = devices.front().first_pattern.size();
    if (bits == 0) {
      throw InvalidArgument("fold_fleet_month: empty first pattern");
    }
    for (const DeviceMonthMetrics& d : devices) {
      if (d.first_pattern.size() != bits) {
        throw InvalidArgument("fold_fleet_month: first pattern size mismatch");
      }
    }
    // Pack the first patterns straight out of the device metrics — no
    // intermediate BitVector vector, no pair vector.
    const std::size_t row_words = devices.front().first_pattern.words().size();
    tilecol::TileBuffer tiles(
        tilecol::TileLayout(n, row_words, opts.shape));
    for (std::size_t i = 0; i < n; ++i) {
      tiles.pack_row(i, devices[i].first_pattern.words().data());
    }

    const tilecol::PairHammingFold bchd = tilecol::fold_pair_fractional_hds(
        tiles.layout(), tiles.data(), bits);
    fleet.bchd_wc = bchd.wc;
    fleet.bchd_avg = bchd.sum / static_cast<double>(bchd.pairs);

    // PUF entropy off the same tile buffer: integer column counts, then
    // the historical per-bit loop (multiply by 1/n, fixed bit order).
    std::vector<std::uint32_t> ones(bits);
    tilecol::column_ones(tiles.layout(), tiles.data(), bits, ones.data());
    const double inv_devices = 1.0 / static_cast<double>(n);
    double sum = 0.0;
    for (std::size_t i = 0; i < bits; ++i) {
      sum += binary_min_entropy(static_cast<double>(ones[i]) * inv_devices);
    }
    fleet.puf_entropy = sum / static_cast<double>(bits);
  }

  fleet.devices = std::move(devices);
  return fleet;
}

}  // namespace

FleetMonthMetrics fold_fleet_month(std::vector<DeviceMonthMetrics> devices,
                                   double month, FoldOptions opts) {
  if (devices.size() < 2) {
    throw InvalidArgument("fold_fleet_month: need at least two devices");
  }
  return fold_fleet_month_core(std::move(devices), month, opts);
}

FleetMonthMetrics fold_fleet_month(
    std::vector<DeviceMonthMetrics> devices, double month,
    std::size_t devices_expected,
    std::uint64_t expected_measurements_per_device, FoldOptions opts) {
  if (devices.size() > devices_expected) {
    throw InvalidArgument(
        "fold_fleet_month: more reporting devices than expected");
  }
  FleetMonthMetrics fleet =
      fold_fleet_month_core(std::move(devices), month, opts);
  fleet.devices_expected = devices_expected;

  std::uint64_t delivered = 0;
  for (const DeviceMonthMetrics& d : fleet.devices) {
    delivered += d.measurement_count;
  }
  const std::uint64_t expected_total =
      expected_measurements_per_device *
      static_cast<std::uint64_t>(devices_expected);
  if (expected_measurements_per_device == 0) {
    fleet.coverage = fleet.devices.empty() ? 0.0 : 1.0;
  } else if (expected_total == 0) {
    fleet.coverage = 1.0;
  } else {
    fleet.coverage = static_cast<double>(delivered) /
                     static_cast<double>(expected_total);
  }
  fleet.degraded = fleet.devices_reporting < fleet.devices_expected ||
                   fleet.coverage < 1.0 || fleet.devices_reporting < 2;
  return fleet;
}

FoldFootprint fold_footprint(std::size_t devices, std::size_t pattern_bits,
                             tilecol::TileShape shape) {
  FoldFootprint fp;
  const std::size_t row_words = (pattern_bits + 63) / 64;
  const tilecol::TileLayout layout(devices, row_words, shape);
  const std::size_t pairs =
      devices < 2 ? 0 : devices * (devices - 1) / 2;
  fp.streaming_bytes =
      layout.storage_words() * sizeof(std::uint64_t) +        // tiles
      layout.tile_rows() * devices * sizeof(std::uint32_t) +  // stripe
      pattern_bits * sizeof(std::uint32_t);                   // column ones
  fp.materialized_bytes =
      devices * row_words * sizeof(std::uint64_t) +  // packed rows
      pairs * sizeof(std::size_t) +                  // integer distances
      pairs * sizeof(double);                        // fractional HDs
  return fp;
}

}  // namespace pufaging
