#include "chaoslab/poison.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "chaoslab/test_support.hpp"
#include "common/error.hpp"
#include "testbed/checkpoint.hpp"

namespace pufaging::chaoslab {
namespace {

std::string read_text(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_text(const std::filesystem::path& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

/// A cell summary pointing at a concrete (rate, policy, worst-seed)
/// coordinate; export only reads those three fields.
CellSummary cell_at(std::size_t rate, std::size_t policy,
                    std::size_t worst_seed) {
  CellSummary cell;
  cell.rate_index = rate;
  cell.policy_index = policy;
  RunStats best;
  best.seed_index = worst_seed == 0 ? 1 : 0;
  best.coverage_mean = 0.9;
  best.coverage_min = 0.9;
  RunStats worst;
  worst.seed_index = worst_seed;
  worst.coverage_mean = 0.4;
  worst.coverage_min = 0.3;
  cell.runs = {best, worst};
  cell.recompute();
  return cell;
}

TEST(PoisonBundle, CapsuleIsDenormalizedAndRoundTrips) {
  const GridSpec spec = tiny_grid_spec();
  const CellSummary cell = cell_at(2, 1, 1);
  const PoisonBundle bundle = poison_bundle_for(spec, cell);

  EXPECT_EQ(bundle.grid_name, spec.name);
  EXPECT_EQ(bundle.fingerprint, grid_fingerprint(spec));
  EXPECT_EQ(bundle.seed_index, 1u);
  EXPECT_EQ(bundle.policy_label, "brittle");
  EXPECT_EQ(bundle.fleet_seed, grid_fleet_seed(spec.master_seed, 1));
  // The plan is materialized (already scaled), not a scale factor.
  EXPECT_DOUBLE_EQ(bundle.plan.i2c_drop_rate,
                   spec.base_plan.i2c_drop_rate * spec.rate_scales[2]);
  EXPECT_EQ(bundle.policy, spec.policies[1].policy);

  const PoisonBundle back =
      poison_bundle_from_json(poison_bundle_to_json(bundle));
  EXPECT_EQ(back.grid_name, bundle.grid_name);
  EXPECT_EQ(back.fingerprint, bundle.fingerprint);
  EXPECT_EQ(back.rate_index, bundle.rate_index);
  EXPECT_EQ(back.policy_index, bundle.policy_index);
  EXPECT_EQ(back.seed_index, bundle.seed_index);
  EXPECT_EQ(double_to_hex_bits(back.rate_scale),
            double_to_hex_bits(bundle.rate_scale));
  EXPECT_EQ(back.fleet_seed, bundle.fleet_seed);
  EXPECT_EQ(back.policy, bundle.policy);
  EXPECT_EQ(double_to_hex_bits(back.plan.i2c_drop_rate),
            double_to_hex_bits(bundle.plan.i2c_drop_rate));
  EXPECT_EQ(back.total_bits, bundle.total_bits);
  EXPECT_EQ(back.puf_window_bits, bundle.puf_window_bits);

  CellSummary outside = cell;
  outside.rate_index = spec.rate_scales.size();
  EXPECT_THROW(poison_bundle_for(spec, outside), InvalidArgument);

  Json bad = poison_bundle_to_json(bundle);
  bad.set("kind", Json("not_a_bundle"));
  EXPECT_THROW(poison_bundle_from_json(bad), ParseError);
}

TEST(PoisonBundle, ReplayConfigIsSerialAndSelfContained) {
  const GridSpec spec = tiny_grid_spec();
  const PoisonBundle bundle = poison_bundle_for(spec, cell_at(0, 0, 0));
  const CampaignConfig cfg = poison_campaign_config(bundle);
  EXPECT_EQ(cfg.threads, 1u);
  EXPECT_EQ(cfg.months, spec.months);
  EXPECT_EQ(cfg.fleet.device_count, spec.device_count);
  EXPECT_EQ(cfg.fleet.device.total_bits, spec.total_bits);
  EXPECT_EQ(cfg.fleet.seed, bundle.fleet_seed);
  EXPECT_EQ(cfg.retry, bundle.policy);
}

TEST(PoisonBundle, ExportedBundleReplaysBitIdentically) {
  const GridSpec spec = tiny_grid_spec();
  ScratchDir dir("poison_export");
  const PoisonBundle bundle =
      export_poison_bundle(spec, cell_at(2, 1, 1), dir.str());
  EXPECT_EQ(bundle.seed_index, 1u);

  // The full bundle layout is on disk.
  EXPECT_TRUE(std::filesystem::exists(dir.path / "poison.json"));
  EXPECT_TRUE(std::filesystem::exists(dir.path / "expected.jsonl"));
  EXPECT_TRUE(std::filesystem::exists(dir.path / "obs.jsonl"));
  EXPECT_TRUE(std::filesystem::is_directory(dir.path / "store"));

  const std::string expected = read_text(dir.path / "expected.jsonl");
  // months+1 snapshots, one references line, one health line.
  std::size_t lines = 0;
  for (const char c : expected) {
    lines += c == '\n';
  }
  EXPECT_EQ(lines, spec.months + 3);
  EXPECT_NE(expected.find("\"kind\":\"references\""), std::string::npos);
  EXPECT_NE(expected.find("\"kind\":\"health\""), std::string::npos);

  const std::string obs = read_text(dir.path / "obs.jsonl");
  EXPECT_NE(obs.find("chaos."), std::string::npos);
  EXPECT_EQ(obs.find("timing"), std::string::npos);

  // The acceptance check: bit-identical replay at threads 1 and 4.
  const ReplayReport serial = replay_poison_bundle(dir.str(), 1);
  EXPECT_TRUE(serial.identical);
  EXPECT_EQ(serial.lines_compared, spec.months + 3);
  EXPECT_NE(serial.render().find("replay OK"), std::string::npos);

  const ReplayReport parallel = replay_poison_bundle(dir.str(), 4);
  EXPECT_TRUE(parallel.identical);
}

TEST(PoisonBundle, ReplayDetectsTamperedExpectation) {
  const GridSpec spec = tiny_grid_spec();
  ScratchDir dir("poison_tamper");
  export_poison_bundle(spec, cell_at(0, 0, 0), dir.str());

  const auto expected_path = dir.path / "expected.jsonl";
  std::string expected = read_text(expected_path);
  const std::size_t pos = expected.find("\"kind\":\"month\"");
  ASSERT_NE(pos, std::string::npos);
  expected.replace(pos, 14, "\"kind\":\"mXnth\"");
  write_text(expected_path, expected);

  const ReplayReport report = replay_poison_bundle(dir.str(), 1);
  EXPECT_FALSE(report.identical);
  EXPECT_EQ(report.lines_compared, 0u);  // first line already differs
  EXPECT_NE(report.first_diff.find("expected:"), std::string::npos);
  EXPECT_NE(report.first_diff.find("actual:"), std::string::npos);
  EXPECT_NE(report.render().find("replay MISMATCH"), std::string::npos);
}

TEST(PoisonBundle, ReplayRejectsCorruptCapsule) {
  ScratchDir dir("poison_bad");
  std::filesystem::create_directories(dir.path);
  write_text(dir.path / "poison.json", "{\"kind\":\"nope\"}\n");
  write_text(dir.path / "expected.jsonl", "");
  EXPECT_THROW(replay_poison_bundle(dir.str(), 1), ParseError);

  ScratchDir missing("poison_missing");
  std::filesystem::create_directories(missing.path);
  EXPECT_THROW(replay_poison_bundle(missing.str(), 1), IoError);
}

}  // namespace
}  // namespace pufaging::chaoslab
