// Chaos grid: risk-cliff sweep determinism and cost.
//
// Audited, then timed:
//   1. a small grid sweep is bit-identical at threads 1 vs 4 (the whole
//      riskcliff.json document, byte-compared);
//   2. the worst-coverage cell's poison bundle replays bit-identically
//      at both thread counts;
//   3. a BENCH line for CI trend tracking (tools/bench_diff): cliff_hash
//      is the location signature of the detected cliffs — it moving
//      across commits means a code change relocated where the system
//      breaks, which the trend gate fails hard on.
#include <chrono>
#include <cstdlib>
#include <filesystem>

#include "bench_common.hpp"
#include "chaoslab/cliff.hpp"
#include "chaoslab/grid.hpp"
#include "chaoslab/poison.hpp"
#include "chaoslab/sweep.hpp"
#include "common/sha256.hpp"

namespace pufaging {
namespace {

using namespace chaoslab;

GridSpec bench_spec() {
  GridSpec spec = demo_grid_spec();
  spec.name = "bench";
  spec.seeds_per_cell = 3;
  spec.months = 2;
  spec.measurements_per_month = 60;
  spec.validate();
  return spec;
}

void reproduce() {
  bench::banner("Chaos grid - risk-cliff sweep determinism and cost");
  const GridSpec spec = bench_spec();
  std::printf("%zu policies x %zu scales, %zu seeds/cell, %zu months x %zu "
              "measurements\n\n",
              spec.policy_count(), spec.rate_count(), spec.seeds_per_cell,
              spec.months, spec.measurements_per_month);

  // Claim 1: the sweep (and the riskcliff document derived from it) is
  // bit-identical at any grid-level thread count.
  SweepOptions serial;
  serial.threads = 1;
  const auto t0 = std::chrono::steady_clock::now();
  const SweepResult sweep1 = run_grid_sweep(spec, serial);
  const auto t1 = std::chrono::steady_clock::now();
  SweepOptions parallel;
  parallel.threads = 4;
  const SweepResult sweep4 = run_grid_sweep(spec, parallel);
  const auto t2 = std::chrono::steady_clock::now();
  const double serial_s = std::chrono::duration<double>(t1 - t0).count();
  const double parallel_s = std::chrono::duration<double>(t2 - t1).count();

  const CliffReport report1 = detect_cliffs(spec, sweep1.cells);
  const CliffReport report4 = detect_cliffs(spec, sweep4.cells);
  const std::string risk1 =
      riskcliff_to_json(spec, sweep1.fingerprint, sweep1.cells, report1)
          .dump();
  const std::string risk4 =
      riskcliff_to_json(spec, sweep4.fingerprint, sweep4.cells, report4)
          .dump();
  const bool sweep_identical = risk1 == risk4;
  std::printf("  sweep threads=1     %6.2f s\n", serial_s);
  std::printf("  sweep threads=4     %6.2f s  (riskcliff bit-identical: %s)\n",
              parallel_s, sweep_identical ? "yes" : "NO - BUG");

  // Claim 2: the worst cliff's poison bundle replays bit-identically at
  // threads 1 and 4.
  bool replay_identical = false;
  double export_s = 0.0;
  if (report1.worst_coverage) {
    const Cliff& worst = *report1.worst_coverage;
    const CellSummary& cell = sweep1.cells[spec.cell_index(
        worst.from_rate_index + 1, worst.policy_index)];
    const auto dir = std::filesystem::temp_directory_path() /
                     "pufaging_chaos_grid_bench_poison";
    std::filesystem::remove_all(dir);
    const auto e0 = std::chrono::steady_clock::now();
    export_poison_bundle(spec, cell, dir.string());
    export_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - e0)
                   .count();
    replay_identical = replay_poison_bundle(dir.string(), 1).identical &&
                       replay_poison_bundle(dir.string(), 4).identical;
    std::filesystem::remove_all(dir);
    std::printf("  poison export       %6.2f s  (replay threads 1 & 4 "
                "identical: %s)\n",
                export_s, replay_identical ? "yes" : "NO - BUG");
  } else {
    std::printf("  no coverage cliff found - BUG\n");
  }

  std::printf("\n%s\n",
              render_grid_tables(spec, sweep1.cells, report1).c_str());

  const std::string cliff_hash = cliff_location_hash(spec, report1);
  const std::string risk_sha = Sha256::to_hex(Sha256::hash(risk1));
  std::printf("BENCH {\"bench\":\"chaos_grid\","
              "\"cells\":%zu,\"seeds_per_cell\":%zu,"
              "\"cliffs\":%zu,\"sweep_s\":%.3f,"
              "\"bit_identical\":%s,"
              "\"cliff_hash\":\"%s\",\"riskcliff_sha256\":\"%s\"}\n",
              spec.cell_count(), spec.seeds_per_cell, report1.cliffs.size(),
              parallel_s, sweep_identical && replay_identical ? "true"
                                                              : "false",
              cliff_hash.c_str(), risk_sha.c_str());

  if (!sweep_identical || !replay_identical || !report1.worst_coverage) {
    std::exit(1);
  }
}

void BM_GridCellRun(benchmark::State& state) {
  const GridSpec spec = bench_spec();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_campaign(cell_campaign_config(spec, 2, 1, 0)));
  }
}
BENCHMARK(BM_GridCellRun)->Unit(benchmark::kMillisecond);

void BM_CliffDetect(benchmark::State& state) {
  const GridSpec spec = bench_spec();
  SweepOptions options;
  options.threads = 4;
  const SweepResult sweep = run_grid_sweep(spec, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detect_cliffs(spec, sweep.cells));
  }
}
BENCHMARK(BM_CliffDetect)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace pufaging

int main(int argc, char** argv) {
  return pufaging::bench::run(argc, argv, pufaging::reproduce);
}
