// CRC32C-framed, length-prefixed append-only record log (WAL).
//
// The campaign appends one small record per completed month instead of
// rewriting the whole checkpoint; a crash can only ever damage the tail
// of the log, and the recovery scan (`scan_wal`) detects a torn or
// corrupt tail and reports the longest valid prefix instead of aborting.
//
// Frame layout (all integers little-endian, byte-serialized — the log is
// portable across hosts):
//
//   magic   u32   'PWAL' (0x4C415750)
//   gen     u32   segment generation; stale-segment records never replay
//   seq     u32   record index within the segment, starting at 0
//   len     u32   payload byte count
//   crc     u32   CRC-32C over gen|seq|len|payload
//   payload len bytes
//
// The CRC covers the header fields after the magic, so a bit flip in the
// length (which would otherwise mis-frame every later record) is caught,
// and the generation/sequence cannot be forged by shuffling frames
// between segments.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "store/vfs.hpp"

namespace pufaging {

/// Hard upper bound on one record; a "length" beyond it is corruption,
/// not a huge record.
constexpr std::uint32_t kMaxWalRecordBytes = 1U << 26;  // 64 MiB

/// Serializes one frame.
std::string encode_wal_frame(std::uint32_t generation, std::uint32_t sequence,
                             std::string_view payload);

/// Result of scanning a WAL image.
struct WalScanResult {
  /// Payloads of every valid record, in append order.
  std::vector<std::string> payloads;
  /// Byte length of the valid prefix (where a recovery truncate cuts).
  std::uint64_t valid_bytes = 0;
  /// True when bytes beyond the valid prefix existed (torn or corrupt
  /// tail — the difference is invisible and irrelevant after a crash).
  bool torn_tail = false;
};

/// Scans a raw WAL image: walks frames from the start, verifies magic,
/// bounds, CRC, generation and sequence continuity, and stops at the
/// first frame that fails — everything before it is the valid prefix.
/// Total function: never throws on any input bytes.
WalScanResult scan_wal(std::string_view image, std::uint32_t generation);

/// Appends frames to a WAL file through the Vfs with batched fsync.
///
/// Durability contract: a record is guaranteed to survive a power cut
/// only after the fsync that covers it (`fsync_every` appends, or an
/// explicit `flush`). Records written but not yet fsynced may be lost or
/// torn — the recovery scan turns either into "that record never
/// happened", which the deterministic campaign simply recomputes.
///
/// Failure handling: if an append fails mid-frame (ENOSPC half-way
/// through a record), the writer rolls the file back to the last frame
/// boundary so the on-disk log stays well-formed; if even the rollback
/// fails the writer poisons itself and every later append raises
/// StoreError rather than risk interleaving garbage.
class WalWriter {
 public:
  WalWriter(Vfs& vfs, std::string path, std::uint32_t generation,
            std::uint32_t next_sequence, std::uint64_t start_bytes,
            std::size_t fsync_every);

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record; fsyncs when the batch is due.
  void append(std::string_view payload);

  /// Fsyncs any appends not yet covered by a batch fsync.
  void flush();

  std::uint32_t next_sequence() const { return sequence_; }
  std::uint64_t bytes() const { return bytes_; }

 private:
  Vfs& vfs_;
  std::string path_;
  VfsFile file_;
  std::uint32_t generation_;
  std::uint32_t sequence_;
  std::uint64_t bytes_;
  std::size_t fsync_every_;
  std::size_t unsynced_ = 0;
  bool poisoned_ = false;
};

}  // namespace pufaging
