// SP 800-90B min-entropy estimators for binary noise sources.
//
// The paper estimates noise entropy analytically from per-cell
// one-probabilities (Section IV-C2); a certified TRNG additionally runs
// black-box estimators on the raw output stream. Three of the SP 800-90B
// non-IID estimators are implemented for binary sequences:
//
//  - Most Common Value (6.3.1): bound from the empirical mode frequency.
//  - Markov (6.3.3, binary specialization): first-order memory bound.
//  - Collision (6.3.2 spirit): bound from the mean spacing between
//    repeats of 2-bit patterns.
//
// All return min-entropy per bit in [0, 1]; the certified estimate is the
// minimum over the battery.
#pragma once

#include "common/bitvector.hpp"

namespace pufaging {

/// Most Common Value estimate: H = -log2(p_upper) where p_upper is the
/// 99% upper confidence bound on the mode's probability.
double mcv_min_entropy(const BitVector& bits);

/// First-order Markov estimate (binary): bounds the per-bit entropy by
/// the most likely length-128 path through the empirical chain.
double markov_min_entropy(const BitVector& bits);

/// Collision-style estimate over consecutive non-overlapping bit pairs:
/// converts the mean time-to-repeat into a per-bit bound.
double collision_min_entropy(const BitVector& bits);

/// The battery minimum (the SP 800-90B assessed entropy).
double assessed_min_entropy(const BitVector& bits);

}  // namespace pufaging
