# Empty compiler generated dependencies file for pa_keygen_test.
# This may be replaced when dependencies are built.
