// Sans-IO core of the long-running authentication daemon.
//
// The daemon is split the same way the store is split from the
// filesystem: this class is the complete protocol/policy state machine —
// framing, admission, backpressure, batching, deadlines, lockout, drain —
// expressed over abstract connection ids and byte buffers, with every
// timestamp read from the MonotonicClock seam. The socket layer
// (server.hpp) is a thin shell that moves bytes between real fds and
// this core; the chaos tests skip the shell entirely and feed the core
// torn frames, stalled readers and request floods under a FakeClock,
// which is what makes "never crashes, never grows unboundedly, p99
// bounded" provable rather than observed.
//
// Robustness contract (the headline of this subsystem):
//  - Admission is bounded: the queue never exceeds queue_cap. A request
//    arriving above the cap is answered kRetryAfter immediately; between
//    the shed watermark and the cap every second request is answered
//    kShed (documented graceful degradation — reject-with-status instead
//    of latency collapse).
//  - Every admitted request carries a deadline; one that waits past it is
//    answered kDeadline, never silently dropped and never authenticated
//    late.
//  - Output buffers are bounded: a client that stops reading past
//    output_buffer_cap, or makes no read progress for write_stall_ns, is
//    reaped — slow consumers cannot hold daemon memory hostage.
//  - A framing error (bad magic/CRC/length) closes that connection with
//    authd.protocol_errors incremented; the stream cannot be trusted to
//    resynchronize.
//  - begin_drain() stops admission (kDraining responses), pump() flushes
//    the queue to empty, finish_drain() publishes the lockout + registry
//    snapshots and flushes the WAL tail — zero accepted requests lost.
//  - Decisions are bit-identical to calling AuthService directly on the
//    admitted requests in admission order: the daemon feeds an SHA-256
//    witness (decisions_sha256) the chaos suite compares against an
//    in-process reference.
//  - The pump fans out across a thread pool (pump_threads > 1) without
//    moving any of the above off the admission thread: workers only run
//    authenticate_batch + response encoding on formed batches, and
//    batches emit strictly in formation order, so the witness and every
//    per-connection response byte stream are bit-identical to the
//    single-threaded pump at any thread count (DESIGN.md §15).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "auth/service.hpp"
#include "authd/limiter.hpp"
#include "authd/wire.hpp"
#include "common/sha256.hpp"
#include "common/thread_pool.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "store/store.hpp"

namespace pufaging::authd {

struct DaemonConfig {
  /// Hard bound on queued-but-unbatched requests (backpressure line).
  std::size_t queue_cap = 4096;
  /// Queue depth (fraction of queue_cap) beyond which every second
  /// request is shed. Clamped to [0, 1].
  double shed_watermark = 0.75;
  /// Requests per AuthService batch (connection-level coalescing: one
  /// batch mixes requests from every connection).
  std::size_t batch_max = 256;
  /// Simultaneous connections; open_connection refuses beyond it.
  std::size_t max_connections = 1024;
  /// Bound on one connection's pending response bytes.
  std::size_t output_buffer_cap = 1 << 20;
  /// Queue wait beyond which a request is answered kDeadline.
  std::uint64_t request_deadline_ns = 100'000'000;  // 100 ms
  /// No read progress on a non-empty output for this long = reaped.
  std::uint64_t write_stall_ns = 5'000'000'000;  // 5 s
  /// Connection with no traffic at all for this long = reaped (0 = off).
  std::uint64_t idle_timeout_ns = 0;

  /// Workers deciding formed batches. 1 = the classic inline pump (no
  /// pool, no extra threads); 0 = hardware concurrency. Batch formation,
  /// admission, backpressure writes, the deadline sweep, the decisions
  /// witness and the lockout ladder all stay on the admission thread at
  /// any setting — only authenticate_batch + response encoding fan out,
  /// and completed batches are emitted in formation order, so decisions
  /// and per-connection response bytes are bit-identical to the
  /// single-threaded pump.
  std::size_t pump_threads = 1;
  /// Formed-but-unemitted batch window (bounds daemon memory beyond the
  /// queue when the pool lags). 0 = 2 x pump threads. Ignored inline.
  std::size_t pump_inflight_max = 0;

  RateLimiterConfig rate;
  LockoutConfig lockout;

  /// Optional sinks; null = no instrumentation (pure observers).
  obs::MetricsRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
  obs::MonotonicClock* clock = nullptr;
};

/// Why the daemon closed a connection (reported to the transport).
enum class CloseReason : std::uint8_t {
  kNone = 0,
  kProtocolError,   ///< Framing violation: stream unrecoverable.
  kOutputOverflow,  ///< Client stopped reading; buffer hit its cap.
  kWriteStall,      ///< No read progress for write_stall_ns.
  kIdle,            ///< idle_timeout_ns with no traffic.
};

/// Point-in-time daemon tallies (also exported as authd.* metrics).
struct DaemonStats {
  std::uint64_t connections_opened = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t frames = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t admitted = 0;
  std::uint64_t decided = 0;
  std::uint64_t retry_after = 0;
  std::uint64_t shed = 0;
  std::uint64_t deadline_expired = 0;
  std::uint64_t rate_limited = 0;
  std::uint64_t locked_out = 0;
  std::uint64_t draining_rejected = 0;
  std::uint64_t reaped = 0;
  std::uint64_t responses_dropped = 0;  ///< Connection died before write.
  std::uint64_t pump_batches_formed = 0;    ///< Batches handed to decide.
  std::uint64_t pump_batches_emitted = 0;   ///< Batches re-sequenced out.
  std::size_t queue_depth = 0;
  std::size_t inflight_batches = 0;  ///< Formed but not yet emitted.
};

class AuthDaemon {
 public:
  using ConnId = std::uint64_t;

  /// The service's registry must be fully loaded before serving; the
  /// daemon only reads it (authenticate_batch), never ingests.
  AuthDaemon(const auth::AuthService& service, const DaemonConfig& config);

  const DaemonConfig& config() const { return config_; }
  const LockoutLadder& lockouts() const { return lockouts_; }

  /// Durable ladder state: transitions append to this store's WAL as
  /// they happen; finish_drain() publishes a compacting snapshot. The
  /// store must outlive the daemon and already be recovered (pass the
  /// ladder loaded from it via adopt_lockouts).
  void attach_lockout_store(MeasurementStore* store);
  void adopt_lockouts(LockoutLadder ladder);

  /// Registry snapshot target for finish_drain(); optional.
  void attach_registry_store(MeasurementStore* store);

  // Connection lifecycle --------------------------------------------------
  /// Returns 0 when refusing (at max_connections or draining) — the
  /// transport should close the socket; otherwise a fresh connection id.
  ConnId open_connection();

  /// Transport saw EOF/RST (half-open handling): queued requests from
  /// the connection still flow through the decision path (admission was
  /// acknowledged), but their responses are dropped.
  void close_connection(ConnId conn);

  /// Feeds received bytes. Framing errors mark the connection for close
  /// (wants_close / close_reason) instead of throwing — a malicious peer
  /// must not unwind the daemon.
  void on_bytes(ConnId conn, std::string_view bytes);

  // Output (transport writes) --------------------------------------------
  std::string_view output(ConnId conn) const;
  void consume_output(ConnId conn, std::size_t n);
  bool wants_close(ConnId conn) const;
  CloseReason close_reason(ConnId conn) const;
  /// Admitted requests of this connection still awaiting their response
  /// (in the queue or in a formed batch). The transport uses it to hold a
  /// half-open connection — read side gone, write side alive — open until
  /// its answers have been written, instead of dropping them with the FIN.
  std::size_t pending_requests(ConnId conn) const;
  /// Connections with pending output or a close verdict, ascending.
  std::vector<ConnId> active_connections() const;

  // The engine ------------------------------------------------------------
  /// One pump: expire deadlines, then move requests through the three
  /// stages — *form* batches off the admission queue, *decide* them
  /// (inline with pump_threads == 1, else on the worker pool), *emit*
  /// completed batches strictly in formation order (responses, witness,
  /// lockout ladder) — and reap stalled/idle connections. Returns the
  /// requests emitted by this call. Call until queue_flushed() for a
  /// full flush (with a pool, decisions may emit a later pump than the
  /// one that formed them).
  std::size_t pump();

  std::size_t queue_depth() const { return queue_.size(); }
  /// Batches formed but not yet emitted (always 0 on the inline pump).
  std::size_t inflight_batches() const { return inflight_.size(); }

  // Drain -----------------------------------------------------------------
  /// Stops admission: new connections refused, new requests answered
  /// kDraining. Already-admitted requests keep flowing through pump().
  void begin_drain();
  bool draining() const { return draining_; }
  /// True once the queue is empty AND no formed batch is still in flight
  /// on the pool (outputs may still be unread).
  bool queue_flushed() const { return queue_.empty() && inflight_.empty(); }
  /// Publishes lockout + registry snapshots, flushes WAL tails. Returns
  /// the drained stats snapshot. Idempotent.
  DaemonStats finish_drain();

  // Introspection ---------------------------------------------------------
  DaemonStats stats() const;
  /// SHA-256 over (device_id, decision) of every authenticated request,
  /// in decision order — the chaos suite's bit-identity witness.
  std::string decisions_sha256() const;

 private:
  struct Pending {
    ConnId conn = 0;
    std::uint64_t request_id = 0;
    std::uint64_t device_id = 0;
    std::vector<std::uint64_t> response;
    std::uint64_t admitted_ns = 0;
  };

  /// One formed batch moving through decide -> emit. The worker writes
  /// decisions + pre-encoded response frames, then publishes via `done`
  /// (release); the admission thread emits only after observing it
  /// (acquire) and only in formation order — inflight_ is the
  /// re-sequencing line.
  struct InflightBatch {
    std::uint64_t index = 0;  ///< Formation order (diagnostics).
    std::vector<Pending> items;
    std::vector<auth::AuthDecision> decisions;
    std::vector<std::string> frames;  ///< Encoded kDecision responses.
    std::atomic<bool> done{false};
  };

  struct Session {
    FrameReader reader;
    std::string output;
    bool open = true;          ///< Transport-side liveness.
    bool close_wanted = false;
    CloseReason reason = CloseReason::kNone;
    std::uint64_t last_activity_ns = 0;
    std::uint64_t stall_since_ns = 0;  ///< 0 = output empty or draining.
    std::size_t pending_requests = 0;  ///< Admitted, not yet answered.
  };

  obs::MonotonicClock& clock() const;
  Session* find(ConnId conn);
  const Session* find(ConnId conn) const;
  void send(ConnId conn, const AuthResponseMsg& msg, std::uint64_t now_ns);
  void deliver(ConnId conn, std::string_view frame, std::uint64_t now_ns);
  void kill(ConnId conn, CloseReason reason);
  void admit(ConnId conn, AuthRequestMsg msg, std::uint64_t now_ns);
  void record_lockout(const LockoutEvent& event);
  void reap(std::uint64_t now_ns);
  void counter(const char* name, std::uint64_t delta = 1);

  // Pump stages. form_batch pops up to batch_max requests (admission
  // thread); decide_batch is the only code that runs on pool workers and
  // touches nothing but the batch, the (thread-safe, read-only) service
  // and `timer_clock`; emit_batch routes responses, feeds the witness
  // and walks the lockout ladder (admission thread, formation order).
  std::unique_ptr<InflightBatch> form_batch();
  void decide_batch(InflightBatch& batch,
                    obs::MonotonicClock& timer_clock) const;
  std::size_t emit_batch(InflightBatch& batch);
  std::size_t harvest_completed();
  void dispatch_formed();

  const auth::AuthService& service_;
  DaemonConfig config_;
  RateLimiter limiter_;
  LockoutLadder lockouts_;
  MeasurementStore* lockout_store_ = nullptr;
  MeasurementStore* registry_store_ = nullptr;

  std::map<ConnId, Session> sessions_;
  ConnId next_conn_ = 1;
  std::deque<Pending> queue_;
  std::uint64_t shed_coin_ = 0;
  bool draining_ = false;
  bool drain_finished_ = false;

  DaemonStats stats_;
  Sha256 decisions_hash_;

  /// Formed batches awaiting (completion, then) in-order emission.
  std::deque<std::unique_ptr<InflightBatch>> inflight_;
  std::uint64_t next_batch_index_ = 0;
  std::size_t inflight_max_ = 0;  ///< Resolved window (0 when inline).
  /// Declared last so its destructor joins the workers while inflight_
  /// (and everything else they touch) is still alive.
  std::unique_ptr<ThreadPool> pool_;
};

const char* to_string(CloseReason reason);

}  // namespace pufaging::authd
