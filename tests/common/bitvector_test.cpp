#include "common/bitvector.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace pufaging {
namespace {

TEST(BitVector, DefaultIsEmpty) {
  BitVector v;
  EXPECT_EQ(v.size(), 0U);
  EXPECT_TRUE(v.empty());
}

TEST(BitVector, ConstructedZeroed) {
  BitVector v(130);
  EXPECT_EQ(v.size(), 130U);
  EXPECT_EQ(v.count_ones(), 0U);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_FALSE(v.get(i));
  }
}

TEST(BitVector, SetGetFlip) {
  BitVector v(100);
  v.set(0, true);
  v.set(63, true);
  v.set(64, true);
  v.set(99, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(99));
  EXPECT_FALSE(v.get(1));
  EXPECT_EQ(v.count_ones(), 4U);
  v.flip(0);
  EXPECT_FALSE(v.get(0));
  v.flip(1);
  EXPECT_TRUE(v.get(1));
  EXPECT_EQ(v.count_ones(), 4U);
  v.set(63, false);
  EXPECT_EQ(v.count_ones(), 3U);
}

TEST(BitVector, FractionalWeight) {
  BitVector v(10);
  EXPECT_DOUBLE_EQ(v.fractional_weight(), 0.0);
  for (std::size_t i = 0; i < 5; ++i) {
    v.set(i, true);
  }
  EXPECT_DOUBLE_EQ(v.fractional_weight(), 0.5);
  EXPECT_DOUBLE_EQ(BitVector().fractional_weight(), 0.0);
}

TEST(BitVector, FromStringRoundTrip) {
  const std::string s = "10110001110";
  BitVector v = BitVector::from_string(s);
  EXPECT_EQ(v.size(), s.size());
  EXPECT_EQ(v.to_string(), s);
  EXPECT_THROW(BitVector::from_string("012"), InvalidArgument);
}

TEST(BitVector, BytesRoundTrip) {
  const std::vector<std::uint8_t> bytes = {0xAB, 0xCD, 0x01};
  BitVector v = BitVector::from_bytes(bytes, 20);
  EXPECT_EQ(v.size(), 20U);
  // LSB-first: bit 0 of byte 0 is the 1 in 0xAB (0b10101011).
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(1));
  EXPECT_FALSE(v.get(2));
  const auto back = v.to_bytes();
  ASSERT_EQ(back.size(), 3U);
  EXPECT_EQ(back[0], 0xAB);
  EXPECT_EQ(back[1], 0xCD);
  EXPECT_EQ(back[2], 0x01);  // bits 16..19 = 0x1 low nibble
}

TEST(BitVector, FromBytesBoundsChecked) {
  EXPECT_THROW(BitVector::from_bytes({0xFF}, 9), InvalidArgument);
  EXPECT_NO_THROW(BitVector::from_bytes({0xFF}, 8));
}

TEST(BitVector, TrailingBitsStayZeroAfterFromBytes) {
  // 0xFF truncated to 5 bits: only 5 ones, and XOR/popcount stay exact.
  BitVector v = BitVector::from_bytes({0xFF}, 5);
  EXPECT_EQ(v.count_ones(), 5U);
}

TEST(BitVector, XorAndEquality) {
  BitVector a = BitVector::from_string("1100");
  BitVector b = BitVector::from_string("1010");
  BitVector c = a ^ b;
  EXPECT_EQ(c.to_string(), "0110");
  a ^= a;
  EXPECT_EQ(a.count_ones(), 0U);
  EXPECT_THROW(a ^= BitVector(5), InvalidArgument);
  EXPECT_EQ(BitVector::from_string("101"), BitVector::from_string("101"));
  EXPECT_NE(BitVector::from_string("101"), BitVector::from_string("100"));
}

TEST(BitVector, Slice) {
  BitVector v = BitVector::from_string("110100101");
  EXPECT_EQ(v.slice(2, 4).to_string(), "0100");
  EXPECT_EQ(v.slice(0, 9).to_string(), "110100101");
  EXPECT_THROW(v.slice(5, 5), InvalidArgument);
}

TEST(Hamming, KnownDistances) {
  BitVector a = BitVector::from_string("11001");
  BitVector b = BitVector::from_string("10011");
  EXPECT_EQ(hamming_distance(a, b), 2U);
  EXPECT_DOUBLE_EQ(fractional_hamming_distance(a, b), 0.4);
  EXPECT_EQ(hamming_distance(a, a), 0U);
}

TEST(Hamming, Errors) {
  EXPECT_THROW(hamming_distance(BitVector(3), BitVector(4)), InvalidArgument);
  EXPECT_THROW(fractional_hamming_distance(BitVector(), BitVector()),
               InvalidArgument);
}

// Property: word-kernel Hamming distance equals the naive per-bit count.
class BitVectorSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitVectorSizes, HammingMatchesNaive) {
  const std::size_t n = GetParam();
  Xoshiro256StarStar rng(n * 7919 + 3);
  BitVector a(n);
  BitVector b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a.set(i, rng.bernoulli(0.5));
    b.set(i, rng.bernoulli(0.5));
  }
  std::size_t naive = 0;
  for (std::size_t i = 0; i < n; ++i) {
    naive += a.get(i) != b.get(i) ? 1U : 0U;
  }
  EXPECT_EQ(hamming_distance(a, b), naive);
  EXPECT_EQ((a ^ b).count_ones(), naive);
}

TEST_P(BitVectorSizes, BytesRoundTripExact) {
  const std::size_t n = GetParam();
  Xoshiro256StarStar rng(n * 104729 + 1);
  BitVector a(n);
  for (std::size_t i = 0; i < n; ++i) {
    a.set(i, rng.bernoulli(0.3));
  }
  const BitVector back = BitVector::from_bytes(a.to_bytes(), n);
  EXPECT_EQ(a, back);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitVectorSizes,
                         ::testing::Values(1, 7, 8, 63, 64, 65, 127, 128, 129,
                                           1000, 8192));

}  // namespace
}  // namespace pufaging
