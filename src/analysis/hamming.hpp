// The paper's three Hamming metrics (Section IV-A).
//
//  - Within-Class HD (WCHD): fractional HD between a chip's reference
//    pattern (its first read-out) and later read-outs of the same chip.
//    Reliability metric; must stay within the error-correction budget.
//  - Between-Class HD (BCHD): fractional HD between the references of two
//    different chips. Uniqueness metric; ideally near 50%.
//  - Fractional Hamming Weight (FHW): ones-density of a read-out. Bias
//    metric; debiasing schemes tolerate 25%/75% [14].
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/bitvector.hpp"
#include "tilecol/layout.hpp"

namespace pufaging {

/// Fractional HD of each measurement against the reference.
std::vector<double> within_class_hds(const BitVector& reference,
                                     std::span<const BitVector> measurements);

/// Mean fractional HD of the measurements against the reference.
double mean_within_class_hd(const BitVector& reference,
                            std::span<const BitVector> measurements);

/// Fractional HD of every unordered pair of references (i < j), in
/// lexicographic pair order. Size n*(n-1)/2 for n references.
std::vector<double> between_class_hds(std::span<const BitVector> references);

/// Same, with an explicit tile shape for the blocked all-pairs sweep.
/// Any shape returns bit-identical values — the distances are integers
/// until the final exact division — so the shape is purely a cache knob.
std::vector<double> between_class_hds(std::span<const BitVector> references,
                                      tilecol::TileShape shape);

/// Fractional Hamming weight of each measurement.
std::vector<double> fractional_weights(std::span<const BitVector> measurements);

}  // namespace pufaging
