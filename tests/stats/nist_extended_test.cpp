// Tests for the extended SP 800-22 battery (rank, spectral, template,
// universal, linear complexity, random excursions) and the FFT kernel.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "stats/fft.hpp"
#include "stats/nist.hpp"

namespace pufaging {
namespace {

BitVector random_bits(std::size_t n, std::uint64_t seed, double p = 0.5) {
  Xoshiro256StarStar rng(seed);
  BitVector v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v.set(i, rng.bernoulli(p));
  }
  return v;
}

BitVector periodic_bits(std::size_t n, std::size_t period) {
  BitVector v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v.set(i, (i % period) < period / 2);
  }
  return v;
}

TEST(Fft, MatchesNaiveDft) {
  Xoshiro256StarStar rng(90);
  std::vector<double> x(64);
  for (double& v : x) {
    v = rng.gaussian();
  }
  const auto spectrum = fft_real(x);
  // Naive DFT comparison at a few frequencies.
  for (std::size_t k : {0UL, 1UL, 7UL, 31UL, 63UL}) {
    std::complex<double> expected(0.0, 0.0);
    for (std::size_t t = 0; t < 64; ++t) {
      const double angle = -2.0 * 3.14159265358979323846 *
                           static_cast<double>(k * t) / 64.0;
      expected += x[t] * std::complex<double>(std::cos(angle),
                                              std::sin(angle));
    }
    EXPECT_NEAR(std::abs(spectrum[k] - expected), 0.0, 1e-9) << "k=" << k;
  }
}

TEST(Fft, ConstantSignalConcentratesAtDc) {
  std::vector<double> ones(128, 1.0);
  const auto spectrum = fft_real(ones);
  EXPECT_NEAR(spectrum[0].real(), 128.0, 1e-9);
  for (std::size_t k = 1; k < 128; ++k) {
    EXPECT_NEAR(std::abs(spectrum[k]), 0.0, 1e-9);
  }
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> bad(100);
  EXPECT_THROW(fft_inplace(bad), InvalidArgument);
}

TEST(NistRank, PassesRandomFailsLowRankStructure) {
  EXPECT_TRUE(nist_matrix_rank(random_bits(64000, 91)).passed());
  // Repeat each 32-bit row 32 times: every matrix has rank 1.
  BitVector low_rank(64000);
  Xoshiro256StarStar rng(92);
  for (std::size_t m = 0; m * 1024 + 1024 <= low_rank.size(); ++m) {
    std::uint32_t row = static_cast<std::uint32_t>(rng.next());
    for (std::size_t r = 0; r < 32; ++r) {
      for (std::size_t c = 0; c < 32; ++c) {
        low_rank.set(m * 1024 + r * 32 + c, (row >> c) & 1U);
      }
    }
  }
  const NistResult r = nist_matrix_rank(low_rank);
  EXPECT_TRUE(r.applicable);
  EXPECT_FALSE(r.passed());
  EXPECT_FALSE(nist_matrix_rank(BitVector(1024)).applicable);
}

TEST(NistSpectral, PassesRandomFailsPeriodic) {
  EXPECT_TRUE(nist_spectral(random_bits(20000, 93)).passed());
  const NistResult r = nist_spectral(periodic_bits(20000, 8));
  EXPECT_TRUE(r.applicable);
  EXPECT_FALSE(r.passed());
  EXPECT_FALSE(nist_spectral(BitVector(512)).applicable);
}

TEST(NistTemplate, PassesRandomFailsTemplateSpam) {
  EXPECT_TRUE(
      nist_non_overlapping_template(random_bits(20000, 94)).passed());
  // Saturate the default 000000001 template.
  BitVector spam(20000);
  for (std::size_t i = 8; i < spam.size(); i += 9) {
    spam.set(i, true);
  }
  const NistResult r = nist_non_overlapping_template(spam);
  EXPECT_TRUE(r.applicable);
  EXPECT_FALSE(r.passed());
  EXPECT_FALSE(nist_non_overlapping_template(BitVector(500)).applicable);
}

TEST(NistTemplate, CustomTemplate) {
  BitVector templ(4);
  templ.set(0, true);  // pattern 1000
  const NistResult r =
      nist_non_overlapping_template(random_bits(20000, 95), templ);
  EXPECT_TRUE(r.applicable);
  EXPECT_TRUE(r.passed());
}

TEST(NistOverlappingTemplate, PassesRandomFailsRunHeavy) {
  EXPECT_TRUE(nist_overlapping_template(random_bits(200000, 103)).passed());
  // Inject frequent long runs of ones: overlapping 9-bit all-ones
  // matches explode.
  BitVector runs = random_bits(200000, 104);
  for (std::size_t i = 0; i + 40 < runs.size(); i += 400) {
    for (std::size_t j = 0; j < 40; ++j) {
      runs.set(i + j, true);
    }
  }
  const NistResult r = nist_overlapping_template(runs);
  EXPECT_TRUE(r.applicable);
  EXPECT_FALSE(r.passed());
  EXPECT_FALSE(nist_overlapping_template(BitVector(50000)).applicable);
}

TEST(NistUniversal, PassesRandomFailsRepetitive) {
  EXPECT_TRUE(nist_universal(random_bits(400000, 96)).passed());
  EXPECT_FALSE(nist_universal(periodic_bits(400000, 12)).passed());
  EXPECT_FALSE(nist_universal(BitVector(100000)).applicable);
}

TEST(NistLinearComplexity, PassesRandomFailsLfsr) {
  EXPECT_TRUE(nist_linear_complexity(random_bits(100000, 97)).passed());
  // A short LFSR stream has tiny linear complexity in every block.
  BitVector lfsr(100000);
  std::uint16_t state = 0xACE1;
  for (std::size_t i = 0; i < lfsr.size(); ++i) {
    const std::uint16_t bit =
        static_cast<std::uint16_t>(((state >> 0) ^ (state >> 2) ^
                                    (state >> 3) ^ (state >> 5)) & 1U);
    state = static_cast<std::uint16_t>((state >> 1) | (bit << 15));
    lfsr.set(i, state & 1U);
  }
  const NistResult r = nist_linear_complexity(lfsr);
  EXPECT_TRUE(r.applicable);
  EXPECT_FALSE(r.passed());
  EXPECT_FALSE(nist_linear_complexity(BitVector(5000)).applicable);
}

TEST(NistExcursions, ApplicabilityAndRandomPass) {
  const BitVector bits = random_bits(1 << 20, 98);
  const auto results = nist_random_excursions(bits);
  ASSERT_EQ(results.size(), 8U);
  std::size_t applicable = 0;
  for (const auto& r : results) {
    if (r.applicable) {
      ++applicable;
      EXPECT_GE(r.p_value, 0.0);
      EXPECT_LE(r.p_value, 1.0);
      EXPECT_TRUE(r.passed(0.001)) << r.name;
    }
  }
  EXPECT_EQ(applicable, 8U);
  // Too-short input: not applicable.
  for (const auto& r : nist_random_excursions(random_bits(50000, 99))) {
    EXPECT_FALSE(r.applicable);
  }
}

TEST(NistExcursionsVariant, RandomPasses) {
  const BitVector bits = random_bits(1 << 20, 100);
  const auto results = nist_random_excursions_variant(bits);
  ASSERT_EQ(results.size(), 18U);
  for (const auto& r : results) {
    ASSERT_TRUE(r.applicable);
    EXPECT_TRUE(r.passed(0.001)) << r.name;
  }
}

TEST(NistExcursionsVariant, BiasedWalkFails) {
  // A drifting walk rarely returns to zero and visits positive states
  // far too often.
  const BitVector bits = random_bits(1 << 20, 101, 0.51);
  const auto results = nist_random_excursions_variant(bits);
  bool any_applicable_failed = false;
  for (const auto& r : results) {
    if (r.applicable && !r.passed()) {
      any_applicable_failed = true;
    }
  }
  // With p=0.51 over 1M bits the zero-return count collapses; either the
  // test is inapplicable (few cycles) or it fails hard.
  const bool all_inapplicable =
      !results.front().applicable;
  EXPECT_TRUE(any_applicable_failed || all_inapplicable);
}

TEST(NistSuiteExtended, FullBatteryOnMegabit) {
  // Seed picked from a scan: the battery contains 40 results, so at
  // alpha = 0.001 roughly 1 in 25 truly random sequences still trips one
  // test (the excursions statistics have arcsine-law variance); the test
  // asserts the battery's behaviour on a representative sequence.
  const BitVector bits = random_bits(1 << 20, 99);
  const auto results = nist_suite(bits);
  std::size_t applicable = 0;
  std::size_t failures = 0;
  for (const auto& r : results) {
    if (r.applicable) {
      ++applicable;
      if (!r.passed(0.001)) {
        ++failures;
      }
    }
  }
  // Everything except nothing should apply at 1 Mbit.
  EXPECT_GE(applicable, 39U);
  EXPECT_EQ(failures, 0U);
}

}  // namespace
}  // namespace pufaging
