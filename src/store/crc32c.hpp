// CRC-32C (Castagnoli, polynomial 0x1EDC6F41) — the frame checksum of the
// durable measurement store's write-ahead log.
//
// CRC-32C is the storage-industry standard for exactly this job (iSCSI,
// ext4 metadata, Btrfs, LevelDB/RocksDB log frames): its error-detection
// properties on short records are better than CRC-32/IEEE and hardware
// support exists on both x86 (SSE4.2) and ARM. This implementation is the
// portable slice-by-one table variant — WAL framing is not a campaign hot
// path (a handful of records per simulated month), so the scalar table is
// plenty and keeps the store dependency-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace pufaging {

/// CRC-32C of `len` bytes at `data`. `seed` chains incremental updates:
/// `crc32c(b, crc32c(a))` equals `crc32c(a || b)`.
std::uint32_t crc32c(const void* data, std::size_t len, std::uint32_t seed = 0);

inline std::uint32_t crc32c(std::string_view bytes, std::uint32_t seed = 0) {
  return crc32c(bytes.data(), bytes.size(), seed);
}

}  // namespace pufaging
