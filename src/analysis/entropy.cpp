#include "analysis/entropy.hpp"

#include <algorithm>

#include "common/bitkernel.hpp"
#include "common/error.hpp"
#include "common/math.hpp"

namespace pufaging {

double puf_min_entropy(std::span<const BitVector> references) {
  if (references.size() < 2) {
    throw InvalidArgument("puf_min_entropy: need at least two references");
  }
  const std::size_t n_bits = references.front().size();
  for (const BitVector& r : references) {
    if (r.size() != n_bits) {
      throw InvalidArgument("puf_min_entropy: reference size mismatch");
    }
  }
  // Column ones counts via the batched kernel (one accumulate_ones sweep
  // per reference instead of a per-bit get() walk per device). The counts
  // are integers, and the entropy sum below runs in the same bit order as
  // the historical per-bit loop, so the result is bit-identical.
  const std::size_t n = references.size();
  const std::size_t words_per_row = references.front().words().size();
  std::vector<std::uint64_t> rows(n * words_per_row);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& w = references[i].words();
    std::copy(w.begin(), w.end(),
              rows.begin() + static_cast<std::ptrdiff_t>(i * words_per_row));
  }
  std::vector<std::uint32_t> ones(n_bits);
  bitkernel::column_ones(rows.data(), n, words_per_row, n_bits, ones.data());

  const double inv_devices = 1.0 / static_cast<double>(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n_bits; ++i) {
    sum += binary_min_entropy(static_cast<double>(ones[i]) * inv_devices);
  }
  return sum / static_cast<double>(n_bits);
}

double average_min_entropy(std::span<const double> one_probabilities) {
  if (one_probabilities.empty()) {
    throw InvalidArgument("average_min_entropy: empty input");
  }
  double sum = 0.0;
  for (double p : one_probabilities) {
    sum += binary_min_entropy(p);
  }
  return sum / static_cast<double>(one_probabilities.size());
}

}  // namespace pufaging
