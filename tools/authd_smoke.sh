#!/usr/bin/env bash
# End-to-end authd smoke: start the daemon on a Unix socket with a durable
# store, hammer it with the chaos driver (mixed genuine/impostor traffic
# plus an impostor storm), SIGTERM it, and require a clean drain with a
# published lockout state hash. Then restart over the same store and
# require the recovered hash to match bit for bit.
set -euo pipefail

BIN="$1"
DIR="$2"
SOCK="$DIR/authd.sock"

rm -rf "$DIR"
mkdir -p "$DIR"

wait_for_socket() {
  for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && return 0
    sleep 0.1
  done
  echo "daemon never bound $SOCK" >&2
  return 1
}

# Multi-threaded pump: the witness hashes below must come out identical
# to what an inline pump would publish for the same traffic.
"$BIN" authd --devices 50 --socket "$SOCK" --store-dir "$DIR/store" \
  --pump-threads 4 > "$DIR/run1.log" 2>&1 &
SRV=$!
wait_for_socket

"$BIN" authd --drive --socket "$SOCK" --devices 50 \
  --requests 300 --storm 20 | tee "$DIR/drive1.log"

kill -TERM "$SRV"
wait "$SRV"   # Exit 0 = drained clean; anything else fails the smoke.
grep -q "drained clean" "$DIR/run1.log"
grep -q "^lockout state hash" "$DIR/run1.log"
grep -q "pump threads 4" "$DIR/run1.log"
# The compliant driver must report its backpressure accounting.
grep -q "backoff: .* retried, .* abandoned, .* suppressed" "$DIR/drive1.log"

# Restart over the same store: the recovered ladder must hash identically.
"$BIN" authd --devices 50 --socket "$SOCK" --store-dir "$DIR/store" \
  > "$DIR/run2.log" 2>&1 &
SRV=$!
wait_for_socket
kill -TERM "$SRV"
wait "$SRV"
diff <(grep "^lockout state hash" "$DIR/run1.log") \
     <(grep "^lockout state hash" "$DIR/run2.log")

echo "authd e2e smoke ok"
