// CRC-32C (Castagnoli) against published check values: the WAL's framing
// integrity rests on this polynomial, so it must match the iSCSI/RFC 3720
// specification exactly, not just round-trip against itself.
#include <gtest/gtest.h>

#include <string>

#include "store/crc32c.hpp"

namespace pufaging {
namespace {

TEST(Crc32c, MatchesPublishedCheckValue) {
  // The standard CRC catalogue check input.
  EXPECT_EQ(crc32c(std::string_view("123456789")), 0xE3069283U);
}

TEST(Crc32c, KnownVectors) {
  // RFC 3720 appendix B.4 test patterns.
  const std::string zeros(32, '\0');
  EXPECT_EQ(crc32c(zeros), 0x8A9136AAU);
  const std::string ones(32, '\xff');
  EXPECT_EQ(crc32c(ones), 0x62A8AB43U);
  std::string ascending(32, '\0');
  for (int i = 0; i < 32; ++i) {
    ascending[static_cast<std::size_t>(i)] = static_cast<char>(i);
  }
  EXPECT_EQ(crc32c(ascending), 0x46DD794EU);
}

TEST(Crc32c, EmptyInputIsZero) {
  EXPECT_EQ(crc32c(std::string_view("")), 0x00000000U);
}

TEST(Crc32c, IncrementalChainingMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t oneshot = crc32c(data);
  for (std::size_t split = 0; split <= data.size(); ++split) {
    const std::uint32_t first = crc32c(data.data(), split, 0);
    const std::uint32_t chained =
        crc32c(data.data() + split, data.size() - split, first);
    EXPECT_EQ(chained, oneshot) << "split at " << split;
  }
}

TEST(Crc32c, DetectsEverySingleBitFlip) {
  const std::string data = "PWAL frame payload under test";
  const std::uint32_t clean = crc32c(data);
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = data;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      EXPECT_NE(crc32c(flipped), clean)
          << "missed flip at byte " << byte << " bit " << bit;
    }
  }
}

}  // namespace
}  // namespace pufaging
