#include "keygen/debiased_key_generator.hpp"

#include "common/error.hpp"
#include "keygen/concatenated.hpp"
#include "keygen/golay.hpp"
#include "keygen/repetition.hpp"

namespace pufaging {

DebiasedKeyGenerator::DebiasedKeyGenerator(
    std::shared_ptr<const BlockCode> code, KeyGenConfig config)
    : extractor_(std::move(code)),
      config_(config),
      secret_rng_(config.secret_seed ^ 0xDEB1A5ULL) {
  if (config.key_bytes == 0 || config.blocks == 0) {
    throw InvalidArgument(
        "DebiasedKeyGenerator: key_bytes and blocks must be > 0");
  }
  if (extractor_.secret_bits(config.blocks) < config.key_bytes * 8) {
    throw InvalidArgument(
        "DebiasedKeyGenerator: secret bits below requested key size");
  }
}

DebiasedKeyGenerator DebiasedKeyGenerator::standard(KeyGenConfig config) {
  auto code = std::make_shared<ConcatenatedCode>(
      std::make_shared<GolayCode>(), std::make_shared<RepetitionCode>(5));
  if (config.blocks * code->message_length() < config.key_bytes * 8) {
    config.blocks = (config.key_bytes * 8 + code->message_length() - 1) /
                    code->message_length();
  }
  return DebiasedKeyGenerator(code, config);
}

DebiasedEnrollment DebiasedKeyGenerator::enroll(SramDevice& device,
                                                const OperatingPoint& op) {
  const BitVector window = device.measure(op);
  const DebiasResult debiased = von_neumann_enroll(window);
  const std::size_t needed = extractor_.response_bits(config_.blocks);
  if (debiased.debiased.size() < needed) {
    throw Error(
        "DebiasedKeyGenerator::enroll: window yields " +
        std::to_string(debiased.debiased.size()) + " debiased bits, need " +
        std::to_string(needed));
  }
  DebiasedEnrollment enrollment;
  enrollment.selection_mask = debiased.selection_mask;
  enrollment.debiased_bits_used = needed;
  BitVector secret;
  enrollment.helper = extractor_.enroll(debiased.debiased.slice(0, needed),
                                        config_.blocks, secret_rng_, secret);
  enrollment.key = derive_key(secret, config_.context, config_.key_bytes);
  return enrollment;
}

Regeneration DebiasedKeyGenerator::regenerate(
    SramDevice& device, const DebiasedEnrollment& enrollment,
    const OperatingPoint& op) {
  const BitVector window = device.measure(op);
  const BitVector debiased =
      von_neumann_reconstruct(window, enrollment.selection_mask);
  Regeneration out;
  if (debiased.size() < enrollment.debiased_bits_used) {
    out.success = false;  // window shrank (should not happen: mask is fixed)
    return out;
  }
  const ReconstructResult r = extractor_.reconstruct(
      debiased.slice(0, enrollment.debiased_bits_used), enrollment.helper);
  out.success = r.success;
  out.corrected = r.corrected;
  if (r.success) {
    out.key = derive_key(r.message, config_.context, config_.key_bytes);
    out.key_matches = (out.key == enrollment.key);
  }
  return out;
}

}  // namespace pufaging
