#include "io/pgm.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/error.hpp"

namespace pufaging {
namespace {

TEST(Pgm, HeaderAndPixels) {
  BitVector v = BitVector::from_string("10" "01");
  const std::string pgm = bits_to_pgm(v, 2);
  EXPECT_EQ(pgm.substr(0, 3), "P5\n");
  EXPECT_NE(pgm.find("2 2\n255\n"), std::string::npos);
  const std::size_t header_end = pgm.find("255\n") + 4;
  ASSERT_EQ(pgm.size() - header_end, 4U);
  // Ones render black (0), zeros white (255).
  EXPECT_EQ(static_cast<unsigned char>(pgm[header_end + 0]), 0);
  EXPECT_EQ(static_cast<unsigned char>(pgm[header_end + 1]), 255);
  EXPECT_EQ(static_cast<unsigned char>(pgm[header_end + 2]), 255);
  EXPECT_EQ(static_cast<unsigned char>(pgm[header_end + 3]), 0);
}

TEST(Pgm, PartialLastRowPaddedWhite) {
  BitVector v = BitVector::from_string("111");
  const std::string pgm = bits_to_pgm(v, 2);  // 2x2 with one pad pixel
  const std::size_t header_end = pgm.find("255\n") + 4;
  EXPECT_EQ(pgm.size() - header_end, 4U);
  EXPECT_EQ(static_cast<unsigned char>(pgm[header_end + 3]), 255);
}

TEST(Pgm, WidthValidation) {
  EXPECT_THROW(bits_to_pgm(BitVector(4), 0), InvalidArgument);
}

TEST(Pgm, SaveToFile) {
  const std::string path = ::testing::TempDir() + "pufaging_pgm_test.pgm";
  save_pgm(BitVector::from_string("1010"), 2, path);
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  std::remove(path.c_str());
  EXPECT_THROW(save_pgm(BitVector(4), 2, "/nonexistent_dir_xyz/x.pgm"),
               Error);
}

TEST(Ascii, DensityRamp) {
  // All ones -> darkest character '@'; all zeros -> ' '.
  BitVector ones(64);
  for (std::size_t i = 0; i < 64; ++i) {
    ones.set(i, true);
  }
  const std::string dark = bits_to_ascii(ones, 8, 8, 8);
  EXPECT_EQ(dark, "@\n");
  EXPECT_EQ(bits_to_ascii(BitVector(64), 8, 8, 8), " \n");
}

TEST(Ascii, DimensionsAndValidation) {
  // 16x16 bits at 4x8 cells -> 4 columns x 2 rows.
  const std::string art = bits_to_ascii(BitVector(256), 16, 4, 8);
  EXPECT_EQ(art, "    \n    \n");
  EXPECT_THROW(bits_to_ascii(BitVector(4), 0), InvalidArgument);
  EXPECT_THROW(bits_to_ascii(BitVector(4), 2, 0, 1), InvalidArgument);
}

}  // namespace
}  // namespace pufaging
