#include "silicon/aging.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"
#include "common/rng.hpp"

namespace pufaging {

double acceleration_factor(const OperatingPoint& op,
                           const AccelerationParams& params) {
  constexpr double kBoltzmannEvPerK = 8.617333262e-5;
  constexpr double kZeroCelsiusK = 273.15;
  const OperatingPoint nominal = nominal_conditions();
  const double t_nom_k = nominal.temperature_c + kZeroCelsiusK;
  const double t_op_k = op.temperature_c + kZeroCelsiusK;
  if (t_op_k <= 0.0) {
    throw InvalidArgument("acceleration_factor: temperature below 0 K");
  }
  const double arrhenius = std::exp(params.activation_energy_ev /
                                    kBoltzmannEvPerK *
                                    (1.0 / t_nom_k - 1.0 / t_op_k));
  const double voltage =
      std::exp(params.voltage_gamma_per_v * (op.vdd_v - nominal.vdd_v));
  return arrhenius * voltage;
}

BtiAgingModel::BtiAgingModel(const AgingParams& params,
                             double nominal_noise_sigma,
                             std::uint64_t variability_key)
    : params_(params),
      drift_per_tau_(params.amplitude_noise_units * nominal_noise_sigma),
      variability_per_tau_(params.variability_noise_units *
                           nominal_noise_sigma),
      variability_key_(variability_key) {
  if (params.amplitude_noise_units < 0.0 ||
      params.variability_noise_units < 0.0 ||
      params.noise_growth_per_tau < 0.0) {
    throw InvalidArgument("BtiAgingModel: aging magnitudes must be >= 0");
  }
  if (params.exponent <= 0.0 || params.exponent > 1.0) {
    throw InvalidArgument("BtiAgingModel: exponent must lie in (0, 1]");
  }
  if (params.duty_cycle <= 0.0 || params.duty_cycle > 1.0) {
    throw InvalidArgument("BtiAgingModel: duty_cycle must lie in (0, 1]");
  }
  if (nominal_noise_sigma <= 0.0) {
    throw InvalidArgument("BtiAgingModel: noise sigma must be > 0");
  }
}

void BtiAgingModel::advance(std::span<double> mismatch, double noise_sigma,
                            double months, const OperatingPoint& op,
                            const AccelerationParams& accel,
                            std::size_t substeps_per_month) {
  if (months < 0.0) {
    throw InvalidArgument("BtiAgingModel::advance: months must be >= 0");
  }
  if (noise_sigma <= 0.0) {
    throw InvalidArgument("BtiAgingModel::advance: noise sigma must be > 0");
  }
  if (months == 0.0) {
    return;
  }
  const double af = acceleration_factor(op, accel);
  const double effective_months = months * params_.duty_cycle * af;
  // BTI magnitudes grow with stress temperature beyond pure time
  // acceleration (see AgingParams::amplitude_temp_coeff_per_c).
  const double amp_factor = std::max(
      0.1,
      1.0 + params_.amplitude_temp_coeff_per_c * (op.temperature_c - 25.0));
  const std::size_t steps = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(months * static_cast<double>(substeps_per_month))));
  const double dt = effective_months / static_cast<double>(steps);
  for (std::size_t s = 0; s < steps; ++s) {
    const double t0 = stress_months_;
    const double t1 = stress_months_ + dt;
    const double dtau =
        std::pow(t1, params_.exponent) - std::pow(t0, params_.exponent);
    const double drift_scale = drift_per_tau_ * amp_factor * dtau;
    const double var_scale = variability_per_tau_ * amp_factor * dtau;
    const double inv_sigma = 1.0 / (noise_sigma * noise_factor());
    for (std::size_t i = 0; i < mismatch.size(); ++i) {
      // q = Pr(power-up to 1); systematic drift is proportional to the net
      // duty imbalance (2q - 1) and pushes toward balance.
      const double q = normal_cdf(mismatch[i] * inv_sigma);
      const double eta = Philox4x32::gaussian_at(variability_key_, i);
      mismatch[i] += var_scale * eta - drift_scale * (2.0 * q - 1.0);
    }
    noise_growth_ += params_.noise_growth_per_tau * amp_factor * dtau;
    stress_months_ = t1;
  }
}

}  // namespace pufaging
