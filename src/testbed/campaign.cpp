#include "testbed/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "analysis/streaming_fold.hpp"
#include "common/bitkernel.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "store/store.hpp"
#include "testbed/checkpoint.hpp"

namespace pufaging {

namespace {

/// Per-device slot counters accumulated inside the (possibly parallel)
/// device task and reduced into MonthHealth in device order afterwards.
struct DeviceSlotStats {
  std::uint64_t crc_retries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t frames_lost = 0;
  std::uint64_t dropped = 0;  ///< Slots that delivered nothing.
  std::uint64_t probes = 0;
};

}  // namespace

CampaignResult run_campaign(const CampaignConfig& config) {
  if (config.measurements_per_month == 0) {
    throw InvalidArgument("run_campaign: need at least one measurement");
  }
  if (config.schedule && config.accelerated) {
    throw InvalidArgument(
        "run_campaign: schedule and accelerated are mutually exclusive");
  }
  config.faults.validate();
  config.retry.validate();
  if (config.resume && config.checkpoint_dir.empty()) {
    throw InvalidArgument("run_campaign: resume requires a checkpoint_dir");
  }
  if (!config.checkpoint_dir.empty() && config.checkpoint_every_months == 0) {
    throw InvalidArgument(
        "run_campaign: checkpoint_every_months must be >= 1");
  }
  const bool has_faults = !config.faults.all_zero();
  const FoldOptions fold_options{
      tilecol::TileShape{config.tile_rows, config.tile_cols}};
  std::vector<SramDevice> fleet = make_fleet(config.fleet);

  // Observability sinks. Everything below that touches them is guarded on
  // the null pointers, so an uninstrumented campaign skips even the clock
  // reads — and nothing recorded ever flows back into results.
  obs::MetricsRegistry* const metrics = config.metrics;
  obs::Tracer* const tracer = config.tracer;
  obs::MonotonicClock& obs_clock =
      config.clock != nullptr
          ? *config.clock
          : (tracer != nullptr ? tracer->clock() : obs::RealClock::instance());
  // Dispatch tallies are process-global; the campaign reports the delta it
  // caused (best-effort under concurrent campaigns in one process).
  bitkernel::DispatchCounts dispatch_base;
  if (metrics != nullptr) {
    dispatch_base = bitkernel::dispatch_counts();
  }
  obs::Tracer::Span campaign_span;
  if (tracer != nullptr) {
    campaign_span = tracer->span("campaign");
  }

  // All persistence goes through the crash-safe durable store. A
  // PowerCutError from a fault-injecting Vfs is NOT caught anywhere below:
  // it models the process dying, and only the crash harness (playing the
  // next boot) may observe it.
  std::optional<MeasurementStore> store;
  if (!config.checkpoint_dir.empty()) {
    Vfs& vfs = config.vfs != nullptr ? *config.vfs : RealFs::instance();
    StoreOptions store_opts;
    store_opts.fsync_every = config.fsync_every;
    store_opts.wal_segment_bytes = config.wal_segment_bytes;
    store_opts.metrics = metrics;
    store_opts.clock = &obs_clock;
    store.emplace(vfs, config.checkpoint_dir, store_opts);
  }

  // In accelerated mode each reported month is one nominal-equivalent
  // stress month: the wall-clock time between snapshots shrinks by the
  // acceleration factor, while the aging integrator re-expands it.
  const double af =
      config.accelerated
          ? acceleration_factor(config.operating_point,
                                config.fleet.device.acceleration)
          : 1.0;
  if (af <= 0.0) {
    throw InvalidArgument("run_campaign: non-positive acceleration factor");
  }
  const double wall_months_per_snapshot = 1.0 / af;
  const auto op_for_month = [&config](std::size_t month) {
    return config.schedule ? config.schedule(month) : config.operating_point;
  };

  CampaignResult result;
  // Resolve the kernel dispatch once, on the calling thread, before the
  // per-device fan-out: the workers' inner loops (WCHD, FHW, per-cell
  // ones) all run on this tier.
  result.kernel_level = bitkernel::level_name(bitkernel::active_level());
  result.references.resize(fleet.size());
  if (config.keep_first_month_batches) {
    result.first_month_batches.resize(fleet.size());
  }
  std::vector<BoardFaultState> fault_states(fleet.size());
  std::size_t start_month = 0;

  if (config.resume) {
    if (!store->has_state()) {
      throw IoError("run_campaign: resume requested but '" +
                    config.checkpoint_dir + "' holds no checkpoint state");
    }
    CampaignCheckpoint ckpt = checkpoint_from_store(*store);
    if (ckpt.fleet_seed != config.fleet.seed ||
        ckpt.device_count != fleet.size() || ckpt.months != config.months ||
        ckpt.measurements_per_month != config.measurements_per_month ||
        ckpt.fault_plan_json != fault_plan_to_json(config.faults).dump()) {
      throw InvalidArgument(
          "run_campaign: checkpoint does not match this campaign "
          "configuration");
    }
    // Aging is a pure function of the config and the month sequence, so it
    // is replayed instead of serialized (the mismatch array is 20480
    // doubles per device). Quarantined and dropped-out boards age too:
    // the shared supply rail stays powered.
    const std::size_t ages = std::min(ckpt.next_month, config.months);
    for (std::size_t m = 0; m < ages; ++m) {
      const OperatingPoint op = op_for_month(m);
      for (SramDevice& device : fleet) {
        device.age_months(wall_months_per_snapshot, op);
      }
    }
    for (std::size_t d = 0; d < fleet.size(); ++d) {
      if (ckpt.devices[d].device_id != fleet[d].id()) {
        throw InvalidArgument("run_campaign: checkpoint device-id mismatch");
      }
      fleet[d].restore_measurement_state(ckpt.devices[d].rng_state,
                                         ckpt.devices[d].measurement_count);
    }
    fault_states = std::move(ckpt.fault_states);
    result.references = std::move(ckpt.references);
    result.series = std::move(ckpt.series);
    result.health = std::move(ckpt.health);
    start_month = ckpt.next_month;
  }

  const auto snapshot_devices = [&] {
    std::vector<DeviceCheckpoint> devices;
    devices.reserve(fleet.size());
    for (const SramDevice& device : fleet) {
      DeviceCheckpoint dev;
      dev.device_id = device.id();
      dev.rng_state = device.measurement_rng_state();
      dev.measurement_count = device.measurement_count();
      devices.push_back(dev);
    }
    return devices;
  };
  const auto build_checkpoint = [&](std::size_t next_month) {
    CampaignCheckpoint ckpt;
    ckpt.next_month = next_month;
    ckpt.fleet_seed = config.fleet.seed;
    ckpt.device_count = fleet.size();
    ckpt.months = config.months;
    ckpt.measurements_per_month = config.measurements_per_month;
    ckpt.fault_plan_json = fault_plan_to_json(config.faults).dump();
    ckpt.devices = snapshot_devices();
    ckpt.fault_states = fault_states;
    ckpt.references = result.references;
    ckpt.series = result.series;
    ckpt.health = result.health;
    return ckpt;
  };

  // WAL appends must continue the month sequence the live segment starts
  // at; after a failed append the sequence has a hole, so further appends
  // are suppressed until the next successful snapshot resets the log.
  bool wal_ok = true;
  const auto append_month_ledger = [&](std::size_t completed_month,
                                       bool make_durable) {
    if (!wal_ok) {
      result.persistence.incidents.push_back(
          "month " + std::to_string(completed_month) +
          ": WAL append skipped (log discontinuity after an earlier "
          "failure); state persists at the next snapshot");
      return;
    }
    MonthLedger ledger;
    ledger.month = completed_month;
    ledger.devices = snapshot_devices();
    ledger.fault_states = fault_states;
    ledger.references = result.references;
    ledger.metrics = result.series.back();
    if (has_faults) {
      ledger.health = result.health.months.back();
    }
    try {
      store->append_record(month_ledger_to_json(ledger));
      if (make_durable) {
        store->flush();
      }
      ++result.persistence.wal_appends;
    } catch (const StoreError& e) {
      wal_ok = false;
      result.persistence.incidents.push_back(
          "month " + std::to_string(completed_month) +
          ": WAL append failed: " + e.what());
    }
  };
  const auto persist_month = [&](std::size_t completed_month,
                                 bool snapshot_due, bool final_persist) {
    if (snapshot_due) {
      try {
        store->publish_snapshot(
            checkpoint_to_jsonl(build_checkpoint(completed_month + 1)));
        ++result.persistence.snapshots;
        wal_ok = true;
        return;
      } catch (const StoreError& e) {
        // The failed publication never touched the previous generation
        // (the manifest flips only after everything new is durable), so
        // the WAL of the old generation is still live — fall back to it.
        result.persistence.incidents.push_back(
            "month " + std::to_string(completed_month) +
            ": snapshot publish failed: " + std::string(e.what()) +
            "; falling back to a WAL append");
      }
    }
    append_month_ledger(completed_month, final_persist);
  };

  if (store && (!config.resume || store->generation() == 0)) {
    // Publish the baseline snapshot: a fresh campaign starts the manifest
    // scheme before month 0 (so every later month can be a cheap WAL
    // append), and a legacy-migrated checkpoint is upgraded into it.
    try {
      store->publish_snapshot(
          checkpoint_to_jsonl(build_checkpoint(start_month)));
      ++result.persistence.snapshots;
    } catch (const StoreError& e) {
      wal_ok = false;
      result.persistence.incidents.push_back(
          std::string("baseline snapshot publish failed: ") + e.what());
    }
  }

  // Devices are statistically independent — each owns a private RNG stream
  // split off the fleet seed — so the monthly snapshot fans out per device.
  // Every task touches only index d of the shared vectors, results are
  // collected by device index (not by completion order), and the reduction
  // below is order-independent: any thread count is bit-identical to the
  // threads=1 reference path, which runs the very same task in a plain
  // loop. Fault draws come from per-(device, month) streams, never from a
  // device's measurement stream, so the same holds with faults active.
  const std::size_t thread_count = std::min(
      ThreadPool::resolve_thread_count(config.threads), fleet.size());
  std::optional<ThreadPool> pool;
  if (thread_count > 1) {
    pool.emplace(thread_count);
  }

  // End-of-campaign accounting, shared by the halt and completion exits:
  // clean store shutdown (flush the WAL tail so a power cut right after
  // the campaign loses nothing) and the run-level metrics.
  const auto finalize = [&] {
    if (store) {
      try {
        store->close();
      } catch (const StoreError& e) {
        result.persistence.incidents.push_back(
            std::string("store close failed: ") + e.what());
      }
    }
    if (metrics == nullptr) {
      return;
    }
    if (pool) {
      const ThreadPool::Stats ps = pool->stats();
      metrics->gauge_set("campaign.pool.threads",
                         static_cast<double>(pool->size()));
      metrics->gauge_set("campaign.pool.tasks_run",
                         static_cast<double>(ps.tasks_run));
      metrics->gauge_set("campaign.pool.max_queue_depth",
                         static_cast<double>(ps.max_queue_depth));
      metrics->gauge_set("campaign.pool.tasks_per_thread",
                         static_cast<double>(ps.tasks_run) /
                             static_cast<double>(pool->size()));
    }
    const bitkernel::DispatchCounts now = bitkernel::dispatch_counts();
    for (std::size_t i = 0; i < bitkernel::kLevelCount; ++i) {
      const std::uint64_t delta = now.calls[i] - dispatch_base.calls[i];
      if (delta != 0) {
        metrics->add(std::string("bitkernel.dispatch.") +
                         bitkernel::level_name(
                             static_cast<bitkernel::Level>(i)),
                     delta);
      }
    }
  };

  for (std::size_t month = start_month; month <= config.months; ++month) {
    obs::Tracer::Span month_span;
    if (tracer != nullptr) {
      month_span = tracer->span("campaign.month");
    }
    const std::uint64_t month_start_ns =
        metrics != nullptr ? obs_clock.now_ns() : 0;
    const OperatingPoint month_op = op_for_month(month);
    const bool age_after = month < config.months;
    std::vector<DeviceMonthMetrics> device_metrics(fleet.size());
    std::vector<std::uint8_t> device_reported(fleet.size(), 1);
    std::vector<DeviceSlotStats> slot_stats(fleet.size());
    // Times one SRAM power-up (a single measure); a no-op timer when
    // metrics are off, so the uninstrumented inner loop is untouched.
    const auto timed_measure = [&metrics, &obs_clock](SramDevice& device,
                                                      const OperatingPoint&
                                                          op) {
      const obs::ScopedTimer timer(metrics, "campaign.powerup_ns", obs_clock);
      return device.measure(op);
    };
    const auto device_task = [&](std::size_t d) {
      const obs::ScopedTimer device_timer(metrics, "campaign.device_month_ns",
                                          obs_clock);
      SramDevice& device = fleet[d];
      if (!has_faults) {
        // The fault-free fast path: byte-for-byte the pre-chaos engine, so
        // an all-zero FaultPlan stays bit-identical to it.
        BitVector first = timed_measure(device, month_op);
        if (month == 0) {
          result.references[d] = first;
        }
        DeviceMonthAccumulator acc(device.id(), result.references[d]);
        acc.add(first);
        if (month == 0 && config.keep_first_month_batches) {
          result.first_month_batches[d].push_back(first);
        }
        for (std::size_t m = 1; m < config.measurements_per_month; ++m) {
          const BitVector pattern = timed_measure(device, month_op);
          acc.add(pattern);
          if (month == 0 && config.keep_first_month_batches) {
            result.first_month_batches[d].push_back(pattern);
          }
        }
        device_metrics[d] = acc.finalize();
      } else {
        Xoshiro256StarStar fault_rng(
            fault_stream_seed(config.fleet.seed, device.id(), month));
        const bool dropout = config.faults.dropout_active(device.id(), month);
        DeviceSlotStats& stats = slot_stats[d];
        // The reference is the first measurement the collector ever saw
        // from this board; with faults that may happen after month 0.
        std::optional<DeviceMonthAccumulator> acc;
        if (!result.references[d].empty()) {
          acc.emplace(device.id(), result.references[d]);
        }
        for (std::size_t s = 0; s < config.measurements_per_month; ++s) {
          const SlotOutcome out = advance_slot(fault_rng, fault_states[d],
                                               config.faults, config.retry,
                                               dropout);
          stats.crc_retries += out.crc_retries;
          stats.timeouts += out.timeouts;
          stats.frames_lost += out.frames_lost;
          stats.probes += out.probe ? 1 : 0;
          if (out.powered) {
            OperatingPoint slot_op = month_op;
            if (out.brownout) {
              slot_op.ramp_time_us *= config.faults.brownout_ramp_factor;
            }
            const BitVector pattern = timed_measure(device, slot_op);
            if (out.delivered) {
              if (result.references[d].empty()) {
                result.references[d] = pattern;
              }
              if (!acc) {
                acc.emplace(device.id(), result.references[d]);
              }
              acc->add(pattern);
              if (month == 0 && config.keep_first_month_batches) {
                result.first_month_batches[d].push_back(pattern);
              }
            }
          }
          if (!out.delivered) {
            ++stats.dropped;
          }
        }
        if (acc && acc->measurement_count() > 0) {
          device_metrics[d] = acc->finalize();
        } else {
          device_reported[d] = 0;
        }
      }
      if (age_after) {
        device.age_months(wall_months_per_snapshot, month_op);
      }
    };
    if (pool) {
      pool->parallel_for(0, fleet.size(), device_task);
    } else {
      for (std::size_t d = 0; d < fleet.size(); ++d) {
        device_task(d);
      }
    }
    if (!has_faults) {
      result.series.push_back(fold_fleet_month(std::move(device_metrics),
                                               static_cast<double>(month),
                                               fold_options));
    } else {
      std::vector<DeviceMonthMetrics> reporting;
      reporting.reserve(fleet.size());
      for (std::size_t d = 0; d < fleet.size(); ++d) {
        if (device_reported[d]) {
          reporting.push_back(std::move(device_metrics[d]));
        }
      }
      FleetMonthMetrics fleet_month = fold_fleet_month(
          std::move(reporting), static_cast<double>(month), fleet.size(),
          config.measurements_per_month, fold_options);
      MonthHealth mh;
      mh.month = static_cast<double>(month);
      for (std::size_t d = 0; d < fleet.size(); ++d) {
        mh.crc_retries += slot_stats[d].crc_retries;
        mh.timeouts += slot_stats[d].timeouts;
        mh.frames_lost += slot_stats[d].frames_lost;
        mh.measurements_dropped += slot_stats[d].dropped;
        mh.probes += slot_stats[d].probes;
        if (fault_states[d].quarantined) {
          ++mh.boards_quarantined;
        }
        mh.quarantine_entries += fault_states[d].quarantine_entries;
      }
      mh.boards_reporting =
          static_cast<std::uint32_t>(fleet_month.devices_reporting);
      mh.coverage = fleet_month.coverage;
      if (metrics != nullptr) {
        // Bridge the chaos ledger into the metrics view, so one exporter
        // covers engine, store and rig health alike.
        metrics->add("chaos.crc_retries", mh.crc_retries);
        metrics->add("chaos.timeouts", mh.timeouts);
        metrics->add("chaos.frames_lost", mh.frames_lost);
        metrics->add("chaos.measurements_dropped", mh.measurements_dropped);
        metrics->add("chaos.probes", mh.probes);
        metrics->gauge_set("chaos.quarantine_entries",
                           static_cast<double>(mh.quarantine_entries));
        metrics->gauge_set("chaos.boards_quarantined",
                           static_cast<double>(mh.boards_quarantined));
        metrics->gauge_set("chaos.boards_reporting",
                           static_cast<double>(mh.boards_reporting));
        metrics->gauge_set("chaos.coverage", mh.coverage);
      }
      result.health.months.push_back(mh);
      result.series.push_back(std::move(fleet_month));
    }
    const bool halt_here = config.halt_after_month &&
                           month == *config.halt_after_month &&
                           month < config.months;
    if (store) {
      obs::Tracer::Span persist_span;
      if (tracer != nullptr) {
        persist_span = tracer->span("campaign.persist");
      }
      const bool final_persist = halt_here || month == config.months;
      const bool snapshot_due =
          final_persist || (month + 1) % config.checkpoint_every_months == 0;
      persist_month(month, snapshot_due, final_persist);
    }
    if (metrics != nullptr) {
      metrics->add("campaign.months");
      metrics->observe("campaign.month_wall_ns",
                       obs_clock.now_ns() - month_start_ns);
    }
    if (halt_here) {
      result.completed = false;
      finalize();
      return result;
    }
  }
  finalize();
  return result;
}

std::function<OperatingPoint(std::size_t)> seasonal_schedule(
    double mean_c, double swing_c) {
  return [mean_c, swing_c](std::size_t month) {
    OperatingPoint op;
    op.temperature_c =
        mean_c + swing_c * std::sin(2.0 * 3.14159265358979323846 *
                                    static_cast<double>(month) / 12.0);
    return op;
  };
}

std::vector<std::vector<BitVector>> collect_rig_batches(Rig& rig,
                                                        std::uint64_t cycles) {
  rig.run_cycles(cycles);
  std::vector<std::vector<BitVector>> batches(16);
  for (std::uint32_t d = 0; d < 16; ++d) {
    batches[d] = rig.collector().board_measurements(board_id_for_device(d));
  }
  return batches;
}

}  // namespace pufaging
