#include "trng/health.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace pufaging {
namespace {

BitVector random_bits(std::size_t n, std::uint64_t seed, double p = 0.5) {
  Xoshiro256StarStar rng(seed);
  BitVector v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v.set(i, rng.bernoulli(p));
  }
  return v;
}

TEST(RepetitionCount, CutoffFormula) {
  // SP 800-90B 4.4.1: C = 1 + ceil(20 / H).
  EXPECT_EQ(RepetitionCountTest::cutoff_for_entropy(1.0), 21U);
  EXPECT_EQ(RepetitionCountTest::cutoff_for_entropy(0.5), 41U);
  EXPECT_EQ(RepetitionCountTest::cutoff_for_entropy(0.1), 201U);
  EXPECT_THROW(RepetitionCountTest::cutoff_for_entropy(0.0), InvalidArgument);
}

TEST(RepetitionCount, TripsOnStuckSource) {
  RepetitionCountTest rct(5);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(rct.feed(true));
  }
  EXPECT_FALSE(rct.feed(true));  // 5th repeat hits the cutoff
  EXPECT_TRUE(rct.failed());
  EXPECT_EQ(rct.longest_run(), 5U);
  rct.reset();
  EXPECT_FALSE(rct.failed());
  EXPECT_TRUE(rct.feed(true));
}

TEST(RepetitionCount, AlternatingNeverTrips) {
  RepetitionCountTest rct(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(rct.feed(i % 2 == 0));
  }
  EXPECT_EQ(rct.longest_run(), 1U);
  EXPECT_THROW(RepetitionCountTest(1), InvalidArgument);
}

TEST(AdaptiveProportion, TripsOnHeavyBias) {
  AdaptiveProportionTest apt(64, 40);
  bool tripped = false;
  // 90% ones: the window reference (likely 1) recurs > 40 times.
  Xoshiro256StarStar rng(40);
  for (int i = 0; i < 640 && !tripped; ++i) {
    tripped = !apt.feed(rng.bernoulli(0.95));
  }
  EXPECT_TRUE(tripped);
  EXPECT_TRUE(apt.failed());
  apt.reset();
  EXPECT_FALSE(apt.failed());
}

TEST(AdaptiveProportion, BalancedSourcePasses) {
  AdaptiveProportionTest apt = AdaptiveProportionTest::standard(0.9);
  Xoshiro256StarStar rng(41);
  for (int i = 0; i < 50000; ++i) {
    EXPECT_TRUE(apt.feed(rng.bernoulli(0.5)));
  }
}

TEST(AdaptiveProportion, Validation) {
  EXPECT_THROW(AdaptiveProportionTest(1, 1), InvalidArgument);
  EXPECT_THROW(AdaptiveProportionTest(10, 11), InvalidArgument);
  EXPECT_THROW(AdaptiveProportionTest::standard(-0.1), InvalidArgument);
}

TEST(HealthVerdict, GoodSourcePasses) {
  const HealthVerdict v = run_health_tests(random_bits(20000, 42), 0.9);
  EXPECT_TRUE(v.rct_pass);
  EXPECT_TRUE(v.apt_pass);
  EXPECT_TRUE(v.pass());
  EXPECT_LT(v.longest_run, 25U);
}

TEST(HealthVerdict, DeadSourceFailsBoth) {
  const HealthVerdict v = run_health_tests(BitVector(5000), 0.9);
  EXPECT_FALSE(v.rct_pass);
  EXPECT_FALSE(v.apt_pass);
  EXPECT_FALSE(v.pass());
}

TEST(HealthVerdict, SkewedButAliveSourceWithLowEntropyEstimatePasses) {
  // A 25%-one source evaluated against its honest 0.415-bit estimate.
  const HealthVerdict v = run_health_tests(random_bits(20000, 43, 0.25),
                                           0.41);
  EXPECT_TRUE(v.pass());
}

}  // namespace
}  // namespace pufaging
