// Slave and master boards plus the two-layer handshake (paper Algorithm 1).
//
// The rig stacks 18 Arduino boards in two layers: layer 0 = master M0 +
// slaves S0..S7, layer 1 = master M1 + slaves S16..S23. A layer's cycle:
//
//   1. wait for the partner layer's END signal,
//   2. switch the layer's slaves on via the power switch,
//   3. signal the partner that this layer has STARTED,
//   4. each slave reads its first 1 KByte of SRAM at power-up,
//   5. the master collects every slave's read-out over I2C (CRC-checked,
//      retried on corruption) and forwards records to the collector,
//   6. hold power until the 3.8 s on-time elapses, then switch off,
//   7/8. handshake bookkeeping so both layers always produce the same
//      number of measurements per unit time.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/bitvector.hpp"
#include "common/error.hpp"
#include "silicon/sram_device.hpp"
#include "testbed/clock.hpp"
#include "testbed/faults.hpp"
#include "testbed/i2c.hpp"
#include "testbed/power.hpp"

namespace pufaging {

/// Timing constants of the rig; defaults reproduce the paper's Fig. 3
/// waveform (5.4 s period = 3.8 s on + 1.6 s off).
struct TestbedTiming {
  double on_time_s = 3.8;        ///< Power-on time per cycle.
  double off_time_s = 1.6;       ///< Power-off time per cycle.
  double boot_delay_s = 0.35;    ///< Power applied -> slave ready.
  double read_delay_s = 0.05;    ///< SRAM latch -> data buffered.
  double i2c_bit_rate_hz = 100000.0;  ///< Standard-mode I2C.
  double collector_latency_s = 0.02;  ///< Master -> Raspberry Pi hop.
};

/// One-directional signal mailbox between the two masters. Signals are
/// counted, so a signal raised before the receiver waits is not lost.
class SignalChannel {
 public:
  /// Raises the signal; delivers immediately if a waiter is registered.
  void signal();

  /// Registers a waiter; fires immediately when a signal is pending.
  /// Only one waiter may be outstanding.
  void wait(std::function<void()> on_signal);

  std::uint64_t raised() const { return raised_; }

 private:
  std::uint64_t pending_ = 0;
  std::uint64_t raised_ = 0;
  std::function<void()> waiter_;
};

/// A slave Arduino: owns its SRAM device, reacts to its power rail, reads
/// the PUF window at each power-up and serves it over I2C on request.
class SlaveBoard {
 public:
  SlaveBoard(std::uint32_t board_id, SramDevice device, EventQueue& queue,
             const TestbedTiming& timing);

  std::uint32_t board_id() const { return board_id_; }
  std::string name() const { return "S" + std::to_string(board_id_); }

  /// Hooks this board to its power switch channel.
  void attach_power(PowerSwitch& power);

  /// Enables board-level fault injection (hang, spontaneous reset,
  /// brownout) drawn from a dedicated per-board stream. Draw order per
  /// power-up is fixed: hang, reset, brownout.
  void enable_faults(const FaultPlan& plan, std::uint64_t seed);

  /// Power cycles the firmware spent wedged so far.
  std::uint64_t hang_cycles_seen() const { return hangs_; }
  /// Power cycles whose read-out was lost to a spontaneous reset.
  std::uint64_t resets_seen() const { return resets_; }
  /// Power cycles measured under a partial (brownout) supply ramp.
  std::uint64_t brownouts_seen() const { return brownouts_; }

  /// True once the post-boot SRAM read-out is buffered.
  bool data_ready() const { return data_ready_; }

  /// Builds the I2C frame with the current read-out; the frame can be
  /// re-requested for retries while the board stays powered.
  /// Throws ProtocolError when no data is buffered.
  I2cFrame make_frame() const;

  /// Direct access to the device (aging between cycles, diagnostics).
  SramDevice& device() { return device_; }
  const SramDevice& device() const { return device_; }

  /// Measurement currently buffered (for white-box tests).
  const std::optional<BitVector>& buffered() const { return buffered_; }

 private:
  void on_power(bool on);

  std::uint32_t board_id_;
  SramDevice device_;
  EventQueue* queue_;
  TestbedTiming timing_;
  bool powered_ = false;
  bool data_ready_ = false;
  std::uint64_t power_epoch_ = 0;  ///< Guards stale boot callbacks.
  std::optional<BitVector> buffered_;
  std::uint32_t sequence_ = 0;

  std::optional<FaultPlan> fault_plan_;
  std::optional<Xoshiro256StarStar> fault_rng_;
  std::uint32_t hang_remaining_ = 0;
  std::uint64_t hangs_ = 0;
  std::uint64_t resets_ = 0;
  std::uint64_t brownouts_ = 0;
};

/// Delivered measurement record (master -> collector).
struct MeasurementRecord {
  SimTime time = 0.0;
  std::uint32_t board_id = 0;
  std::uint32_t sequence = 0;
  BitVector data;
};

/// A layer master implementing Algorithm 1, hardened against a chaotic
/// rig: every request is guarded by a sim-time watchdog, failures are
/// retried a bounded number of times with exponential backoff (a retry
/// budget exhaustion is surfaced as a TimeoutError through the error
/// sink), and persistently failing slaves are quarantined with
/// exponentially backed-off re-admission probes so one dead board cannot
/// stall the whole layer.
class MasterBoard {
 public:
  using RecordSink = std::function<void(const MeasurementRecord&)>;
  /// Notified when a slave exhausts its retry budget (the condition the
  /// quarantine machinery then absorbs).
  using ErrorSink =
      std::function<void(std::uint32_t board_id, const TimeoutError&)>;

  MasterBoard(std::string name, std::vector<SlaveBoard*> slaves,
              EventQueue& queue, PowerSwitch& power, I2cBus& bus,
              const TestbedTiming& timing, RecordSink sink);

  /// Wires the handshake: `partner_end` is signalled by the partner at the
  /// end of its read-out; `my_end` is this master's outgoing channel.
  /// `partner_started`/`my_started` carry the step-3 start notifications.
  void connect(SignalChannel& partner_end, SignalChannel& my_end,
               SignalChannel& partner_started, SignalChannel& my_started);

  /// Replaces the default resilience policy; call before start().
  void set_retry_policy(const RetryPolicy& policy);

  /// Registers the retry-exhaustion observer.
  void on_timeout(ErrorSink sink) { on_timeout_ = std::move(sink); }

  /// Begins the first cycle (layer 0 is bootstrapped with a virtual END
  /// from layer 1; see Rig).
  void start();

  const std::string& name() const { return name_; }
  std::uint64_t cycles_completed() const { return cycles_; }
  std::uint64_t records_delivered() const { return records_; }
  /// Read-out slots this master has initiated (one per slave per cycle,
  /// quarantine skips included) — the honest coverage denominator even
  /// when a cycle's collection is still in flight.
  std::uint64_t slots_attempted() const { return slots_; }
  std::uint64_t crc_retries() const { return crc_retries_; }
  std::uint64_t frames_dropped() const { return frames_dropped_; }
  std::uint64_t timeouts() const { return timeouts_; }
  std::uint64_t probes() const { return probes_; }

  /// Resilience state of slave `slave_index` (position in this master's
  /// slave list, not board id).
  const BoardFaultState& slave_state(std::size_t slave_index) const {
    return slave_states_.at(slave_index);
  }

  /// Slaves currently quarantined.
  std::uint32_t quarantined_count() const;

  /// Maximum I2C re-requests per slave per cycle before dropping (the
  /// default RetryPolicy; kept for pre-chaos-rig callers).
  static constexpr int kMaxRetries = 3;

 private:
  void begin_cycle();
  void collect_from(std::size_t slave_index, int attempt);
  void handle_failure(std::size_t slave_index, int attempt, bool timed_out);
  void give_up_on(std::size_t slave_index, bool timed_out);
  void finish_collection();
  void power_off_and_rest(SimTime on_started);

  std::string name_;
  std::vector<SlaveBoard*> slaves_;
  EventQueue* queue_;
  PowerSwitch* power_;
  I2cBus* bus_;
  TestbedTiming timing_;
  RecordSink sink_;
  ErrorSink on_timeout_;
  RetryPolicy policy_{};

  SignalChannel* partner_end_ = nullptr;
  SignalChannel* my_end_ = nullptr;
  SignalChannel* partner_started_ = nullptr;
  SignalChannel* my_started_ = nullptr;

  SimTime on_started_ = 0.0;
  std::uint64_t cycles_ = 0;
  std::uint64_t records_ = 0;
  std::uint64_t slots_ = 0;
  std::uint64_t crc_retries_ = 0;
  std::uint64_t frames_dropped_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t probes_ = 0;
  std::vector<BoardFaultState> slave_states_;
  std::uint64_t transfer_epoch_ = 0;  ///< Ids the in-flight request.
  std::uint64_t handled_epoch_ = 0;   ///< Last request already resolved.
  bool running_ = false;
};

}  // namespace pufaging
