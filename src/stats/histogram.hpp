// Fixed-bin histogram; renders the paper's Fig. 5 distributions.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace pufaging {

/// Histogram with `bin_count` equal-width bins over [lo, hi).
/// Values outside the range are clamped into the first/last bin so that
/// totals always match the number of added samples.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bin_count);

  void add(double x);
  void add_all(std::span<const double> xs);

  std::size_t bin_count() const { return counts_.size(); }
  std::size_t total() const { return total_; }

  /// Raw count in bin `i`.
  std::size_t count(std::size_t i) const { return counts_.at(i); }

  /// Count in bin `i` as a percentage of all samples (the paper's Fig. 5
  /// y-axis, "Count (%)"). Returns 0 when the histogram is empty.
  double percent(std::size_t i) const;

  /// Center of bin `i`.
  double bin_center(std::size_t i) const;

  /// Lower edge of bin `i`.
  double bin_lower(std::size_t i) const;

  double bin_width() const { return width_; }

  /// Renders a horizontal ASCII bar chart (one line per non-empty bin).
  std::string to_ascii(std::size_t max_bar_width = 60) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace pufaging
