// Unified fault injection and resilience policy for the chaos rig.
//
// The paper's testbed ran unattended for two wall-clock years; surviving
// that in the real world means surviving board hangs, flaky buses, stuck
// relays and collector restarts. This module is the single description of
// everything that can go wrong (`FaultPlan`), the master-side policy for
// dealing with it (`RetryPolicy` — bounded retries with exponential
// backoff, then per-board quarantine with re-admission probing), and the
// ledger of what actually happened (`CampaignHealth`).
//
// Determinism contract: every fault decision is drawn from a dedicated
// stream split off the fleet seed with the counter-based generator
// (`split_seed`), addressed by (device, month) in the fast-path campaign
// and by board id in the event-driven rig. Fault draws never touch the
// devices' measurement streams, so
//
//   - an all-zero FaultPlan is bit-identical to a fault-free campaign, and
//   - a non-zero plan is bit-identical at any `threads` value,
//
// preserving the parallel engine's determinism contract.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "io/json.hpp"

namespace pufaging {

/// A board leaving the fleet for good (e.g. dead supply): device
/// `device_index` stops responding from month `from_month` onward.
struct BoardDropout {
  std::uint32_t device_index = 0;
  std::size_t from_month = 0;

  bool operator==(const BoardDropout&) const = default;
};

/// Everything that can go wrong, as independent per-event probabilities.
/// All rates default to zero — the default plan is a no-op and costs
/// nothing on the campaign hot path.
struct FaultPlan {
  // I2C link faults, drawn per transfer attempt.
  double i2c_corrupt_rate = 0.0;  ///< Random payload bit flip (CRC catches).
  double i2c_drop_rate = 0.0;     ///< Frame vanishes; master watchdog fires.
  double i2c_nak_rate = 0.0;      ///< Slave NAKs the address byte.

  // Board faults, drawn per power cycle.
  double hang_rate = 0.0;          ///< Firmware wedges for `hang_cycles`.
  std::uint32_t hang_cycles = 32;  ///< Cycles a hang lasts.
  double reset_rate = 0.0;   ///< Spontaneous reset: buffered read-out lost.
  double brownout_rate = 0.0;  ///< Partial supply ramp on this power-up.
  /// Ramp-time multiplier during a brownout. A fast partial ramp denies
  /// each cell the settling time the RampAdapter reasoning relies on, so
  /// the read-out arrives intact but noisier (degraded, not lost).
  double brownout_ramp_factor = 0.05;

  // Power-switch faults, drawn per switch-on command.
  double stuck_relay_rate = 0.0;  ///< Relay fails to engage for the cycle.

  /// Scheduled permanent board dropouts.
  std::vector<BoardDropout> dropouts;

  /// True when every rate is zero and no dropout is scheduled; such a plan
  /// is skipped entirely by the campaign engine (zero overhead).
  bool all_zero() const;

  /// Throws InvalidArgument when any rate is outside [0, 1] or a knob is
  /// out of range.
  void validate() const;

  /// True when `device_index` is scheduled out at `month`.
  bool dropout_active(std::uint32_t device_index, std::size_t month) const;
};

/// Parses a FaultPlan from either a compact spec string
/// ("corrupt=0.01,drop=0.005,hang=0.001,dropout=3@6", keys:
/// corrupt/drop/nak/hang/hang-cycles/reset/brownout/brownout-ramp/stuck,
/// dropout=<device>@<month> repeatable) or, when the text starts with '{',
/// a JSON object as produced by fault_plan_to_json.
FaultPlan parse_fault_plan(const std::string& spec);

Json fault_plan_to_json(const FaultPlan& plan);
FaultPlan fault_plan_from_json(const Json& json);

/// Master-side resilience policy: bounded retries with exponential
/// backoff, then quarantine with exponentially backed-off re-admission
/// probes.
struct RetryPolicy {
  int max_retries = 3;            ///< Re-requests per read-out before giving up.
  double backoff_base_s = 0.005;  ///< Sim-time backoff; doubles per attempt.
  double watchdog_margin_s = 0.05;  ///< Watchdog slack beyond bus time.
  std::uint32_t quarantine_after = 8;  ///< Consecutive lost cycles to quarantine.
  std::uint32_t probe_interval = 64;   ///< Cycles before the first probe.
  std::uint32_t max_backoff_level = 6;  ///< Probe interval doubles up to this.

  /// Throws InvalidArgument on any knob a real master could not run with:
  /// negative or absurd retry counts, zero/negative/NaN backoff or
  /// watchdog times, quarantine/probe thresholds of zero, or a backoff
  /// cap so large the probe-interval shift would overflow.
  void validate() const;

  bool operator==(const RetryPolicy&) const = default;
};

/// Hard cap on RetryPolicy::max_retries (a per-slot retry loop beyond this
/// is a misconfiguration, not a policy).
inline constexpr int kMaxRetryCap = 1000;

/// Hard cap on RetryPolicy::max_backoff_level: probe_interval (u32) shifted
/// by this still fits a u64 with headroom.
inline constexpr std::uint32_t kMaxBackoffLevelCap = 31;

/// Parses a RetryPolicy from either a compact spec string
/// ("retries=3,backoff=0.005,watchdog=0.05,quarantine=8,probe=64,"
/// "max-backoff=6"; every key optional, defaults apply) or, when the text
/// starts with '{', a JSON object as produced by retry_policy_to_json.
/// The result is validated; a spec naming an unusable policy throws.
RetryPolicy parse_retry_policy(const std::string& spec);

Json retry_policy_to_json(const RetryPolicy& policy);
RetryPolicy retry_policy_from_json(const Json& json);

/// Per-board resilience state machine shared by both execution paths
/// (slot-granular in the fast-path campaign, cycle-granular in the rig).
struct BoardFaultState {
  std::uint32_t hang_remaining = 0;  ///< Cycles left in the current hang.
  std::uint32_t consecutive_failures = 0;
  bool quarantined = false;
  std::uint64_t cooldown_remaining = 0;  ///< Cycles until the next probe.
  std::uint32_t backoff_level = 0;
  std::uint64_t quarantine_entries = 0;  ///< Times this board was quarantined.

  /// A read-out reached the collector: clears failures and quarantine.
  void record_success();

  /// A cycle produced no read-out. Returns true when this failure tips the
  /// board into quarantine (first entry or re-entry after a failed probe).
  bool record_failure(const RetryPolicy& policy);
};

/// What one measurement slot of the fast-path campaign produced.
struct SlotOutcome {
  bool powered = false;    ///< Power-up happened (device RNG was consumed).
  bool delivered = false;  ///< The read-out reached the collector.
  bool brownout = false;   ///< Degraded-ramp power-up.
  bool probe = false;      ///< This slot was a quarantine re-admission probe.
  std::uint32_t crc_retries = 0;
  std::uint32_t timeouts = 0;
  std::uint32_t frames_lost = 0;
};

/// Advances one measurement slot of one board through the fault model and
/// the resilience state machine. Draw order is fixed (stuck relay, hang,
/// reset, brownout, then per-attempt drop/NAK/corrupt), so one serial
/// stream per (device, month) replays bit-identically. Early-outs
/// (dropout, ongoing hang, quarantine cooldown) consume no draws.
SlotOutcome advance_slot(Xoshiro256StarStar& rng, BoardFaultState& state,
                         const FaultPlan& plan, const RetryPolicy& policy,
                         bool dropout);

/// Seed of the fault stream for device `device_index` in month `month`
/// (fast-path campaign).
std::uint64_t fault_stream_seed(std::uint64_t root,
                                std::uint32_t device_index, std::size_t month);

/// Seed of the fault stream for one rig component (`salt` picks the
/// component class: bus, slave, power switch).
std::uint64_t rig_fault_seed(std::uint64_t root, std::uint32_t board_id,
                             std::uint64_t salt);

/// One month of resilience counters.
struct MonthHealth {
  double month = 0.0;
  std::uint64_t crc_retries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t frames_lost = 0;
  std::uint64_t measurements_dropped = 0;  ///< Slots with no delivered data.
  std::uint64_t probes = 0;
  std::uint32_t boards_quarantined = 0;  ///< In quarantine at month end.
  std::uint32_t boards_reporting = 0;    ///< Delivered >= 1 measurement.
  double coverage = 1.0;  ///< Delivered / expected measurements.
  /// Cumulative quarantine entries across the fleet at month end (how many
  /// times any board was tipped into quarantine since the campaign began).
  std::uint64_t quarantine_entries = 0;
};

/// The campaign's resilience ledger: per-month counters plus totals.
struct CampaignHealth {
  std::vector<MonthHealth> months;

  std::uint64_t total_crc_retries() const;
  std::uint64_t total_timeouts() const;
  std::uint64_t total_frames_lost() const;
  std::uint64_t total_measurements_dropped() const;
  std::uint64_t total_probes() const;
  std::uint32_t max_boards_quarantined() const;

  /// Fleet-wide quarantine entries over the whole campaign (the last
  /// month's cumulative counter; 0 for an empty ledger).
  std::uint64_t final_quarantine_entries() const;

  /// True when any month lost data or quarantined a board.
  bool degraded() const;

  /// Human-readable report (one line per month with activity + totals).
  std::string render() const;
};

Json month_health_to_json(const MonthHealth& month);
MonthHealth month_health_from_json(const Json& json);

Json campaign_health_to_json(const CampaignHealth& health);
CampaignHealth campaign_health_from_json(const Json& json);

Json board_fault_state_to_json(const BoardFaultState& state);
BoardFaultState board_fault_state_from_json(const Json& json);

}  // namespace pufaging
