// Error types shared across the pufaging libraries.
#pragma once

#include <stdexcept>
#include <string>

namespace pufaging {

/// Base class for all errors raised by the pufaging libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when an argument violates a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Raised when parsing external data (JSON records, CSV) fails.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// Raised on filesystem failures (unwritable checkpoint directory, missing
/// checkpoint file).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Raised when a testbed protocol invariant is violated (e.g. a corrupt
/// I2C frame that cannot be recovered).
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what) : Error(what) {}
};

/// Raised when a watchdog expires or a bounded retry budget is exhausted
/// (hung board, dead link, stuck relay). Recoverable at the campaign level:
/// the resilience layer quarantines the offending board and carries on.
class TimeoutError : public Error {
 public:
  explicit TimeoutError(const std::string& what) : Error(what) {}
};

}  // namespace pufaging
