#include "testbed/collector.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace pufaging {

void Collector::receive(const MeasurementRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  receive_locked(record);
}

void Collector::receive_locked(MeasurementRecord record) {
  std::set<std::uint32_t>& seen = seen_[record.board_id];
  if (!seen.insert(record.sequence).second) {
    // A master retry after a lost ACK, or a JSONL replay over live data:
    // the measurement is already stored once, drop the copy.
    ++duplicates_;
    return;
  }
  if (!seen.empty() && record.sequence < *seen.rbegin()) {
    ++out_of_order_;
  }
  records_.push_back(std::move(record));
}

std::vector<BitVector> Collector::board_measurements(
    std::uint32_t board_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<BitVector> out;
  for (const MeasurementRecord& r : records_) {
    if (r.board_id == board_id) {
      out.push_back(r.data);
    }
  }
  return out;
}

std::vector<std::uint32_t> Collector::boards() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::uint32_t> ids;
  for (const MeasurementRecord& r : records_) {
    if (std::find(ids.begin(), ids.end(), r.board_id) == ids.end()) {
      ids.push_back(r.board_id);
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::string Collector::to_jsonl() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  for (const MeasurementRecord& r : records_) {
    Json obj = Json::object();
    obj.set("t", Json(r.time));
    obj.set("board", Json("S" + std::to_string(r.board_id)));
    obj.set("seq", Json(static_cast<std::int64_t>(r.sequence)));
    obj.set("bits", Json(r.data.size()));
    obj.set("data", Json(r.data.to_hex()));
    os << obj.dump() << '\n';
  }
  return os.str();
}

void Collector::load_jsonl(const std::string& text) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    const Json obj = Json::parse(line);
    MeasurementRecord record;
    record.time = obj.at("t").as_double();
    const std::string& board = obj.at("board").as_string();
    if (board.empty() || board.front() != 'S') {
      throw ParseError("Collector::load_jsonl: bad board name '" + board +
                       "'");
    }
    record.board_id =
        static_cast<std::uint32_t>(std::stoul(board.substr(1)));
    record.sequence = static_cast<std::uint32_t>(obj.at("seq").as_int());
    const auto bits = static_cast<std::size_t>(obj.at("bits").as_int());
    record.data = BitVector::from_hex(obj.at("data").as_string(), bits);
    receive_locked(std::move(record));
  }
}

}  // namespace pufaging
