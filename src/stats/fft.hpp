// Radix-2 FFT, used by the SP 800-22 spectral (DFT) test.
#pragma once

#include <complex>
#include <vector>

namespace pufaging {

/// In-place iterative radix-2 Cooley-Tukey FFT. Size must be a power of
/// two (throws InvalidArgument otherwise). Forward transform only.
void fft_inplace(std::vector<std::complex<double>>& data);

/// Convenience: forward FFT of a real sequence (zero-padded up to the next
/// power of two). Returns the complex spectrum of the padded length.
std::vector<std::complex<double>> fft_real(const std::vector<double>& data);

}  // namespace pufaging
