#include "testbed/clock.hpp"

#include "common/error.hpp"

namespace pufaging {

void EventQueue::schedule_at(SimTime at, std::function<void()> fn) {
  if (at < now_) {
    throw InvalidArgument("EventQueue::schedule_at: time in the past");
  }
  events_.push(Event{at, next_seq_++, std::move(fn)});
}

void EventQueue::schedule_in(SimTime delay, std::function<void()> fn) {
  if (delay < 0.0) {
    throw InvalidArgument("EventQueue::schedule_in: negative delay");
  }
  schedule_at(now_ + delay, std::move(fn));
}

void EventQueue::run_until(SimTime until) {
  while (!events_.empty() && events_.top().at <= until) {
    // Copy out before pop: the callback may schedule new events.
    Event ev = events_.top();
    events_.pop();
    now_ = ev.at;
    ev.fn();
  }
  if (now_ < until) {
    now_ = until;
  }
}

std::size_t EventQueue::step(std::size_t n) {
  std::size_t run = 0;
  while (run < n && !events_.empty()) {
    Event ev = events_.top();
    events_.pop();
    now_ = ev.at;
    ev.fn();
    ++run;
  }
  return run;
}

}  // namespace pufaging
