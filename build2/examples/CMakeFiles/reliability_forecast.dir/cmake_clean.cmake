file(REMOVE_RECURSE
  "CMakeFiles/reliability_forecast.dir/reliability_forecast.cpp.o"
  "CMakeFiles/reliability_forecast.dir/reliability_forecast.cpp.o.d"
  "reliability_forecast"
  "reliability_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliability_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
