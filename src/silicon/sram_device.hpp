// A simulated ATmega32u4-class SRAM device under test.
//
// Matches the paper's device geometry: 2.5 KByte of SRAM (20480 bits), of
// which the first 1 KByte (8192 bits) is read out as the PUF response at
// every power cycle (Section III / Algorithm 1, step 4).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/bitvector.hpp"
#include "common/rng.hpp"
#include "silicon/aging.hpp"
#include "silicon/cell_population.hpp"
#include "silicon/noise_model.hpp"
#include "silicon/operating_point.hpp"
#include "silicon/powerup.hpp"

namespace pufaging {

/// Geometry + model parameters for constructing a device.
struct DeviceConfig {
  std::size_t total_bits = 20480;      ///< 2.5 KByte, the ATmega32u4 SRAM.
  std::size_t puf_window_bits = 8192;  ///< First 1 KByte read per cycle.
  PopulationParams population;
  NoiseParams noise;
  AgingParams aging;
  AccelerationParams acceleration;
};

/// One board's SRAM: frozen process variation, mutable aging state, and a
/// per-device measurement RNG. All randomness derives from `device_key`
/// (mismatch) and `measurement_seed` (noise), so campaigns are reproducible.
class SramDevice {
 public:
  SramDevice(std::uint32_t id, std::uint64_t device_key,
             std::uint64_t measurement_seed, const DeviceConfig& config);

  /// Board identifier (the paper labels its slave boards S0..S23).
  std::uint32_t id() const { return id_; }

  /// Slave-board style name, e.g. "S3".
  std::string name() const { return "S" + std::to_string(id_); }

  std::size_t total_bits() const { return config_.total_bits; }
  std::size_t puf_window_bits() const { return config_.puf_window_bits; }

  /// Powers the device up at `op` and reads the first 1 KByte PUF window.
  /// Each call is one measurement (one power cycle's read-out).
  BitVector measure(const OperatingPoint& op = nominal_conditions());

  /// Powers up and reads the whole 2.5 KByte array.
  BitVector measure_full(const OperatingPoint& op = nominal_conditions());

  /// Number of measure()/measure_full() calls so far.
  std::uint64_t measurement_count() const { return measurement_count_; }

  /// Measurement-RNG state for campaign checkpoints. Only valid between
  /// measurements (the generator's Box-Muller cache is excluded; the
  /// measurement path never populates it).
  std::array<std::uint64_t, 4> measurement_rng_state() const {
    return rng_.state();
  }

  /// Restores a checkpointed measurement-RNG state and counter. The caller
  /// must have replayed aging (age_months calls) to the matching point.
  void restore_measurement_state(const std::array<std::uint64_t, 4>& state,
                                 std::uint64_t count) {
    rng_.set_state(state);
    measurement_count_ = count;
  }

  /// Ages the device by `months` of wall-clock time spent power-cycling at
  /// operating point `op` (duty cycle and stress acceleration applied by
  /// the aging model).
  void age_months(double months,
                  const OperatingPoint& op = nominal_conditions());

  /// Effective accumulated stress in months.
  double stress_months() const { return aging_.stress_months(); }

  /// Analytic one-probability of PUF-window cell i at operating point `op`
  /// in the device's current aged state.
  double one_probability(std::size_t i,
                         const OperatingPoint& op = nominal_conditions()) const;

  /// Current effective mismatch of cell i (diagnostics / white-box tests).
  double mismatch(std::size_t i) const { return population_.mismatch(i); }

  /// Effective noise sigma at an operating point (includes this device's
  /// multiplier and the aging-induced noise growth).
  double noise_sigma(const OperatingPoint& op = nominal_conditions()) const {
    return noise_.sigma(op) * aging_.noise_factor();
  }

  /// Restores the manufacturing state and clears the measurement counter
  /// (a fresh twin of the same silicon; aging clock restarts too).
  void reset_to_pristine();

  const DeviceConfig& config() const { return config_; }

 private:
  void ensure_sampler(const OperatingPoint& op);

  std::uint32_t id_;
  DeviceConfig config_;
  CellPopulation population_;
  NoiseModel noise_;
  BtiAgingModel aging_;
  std::uint64_t device_key_;
  Xoshiro256StarStar rng_;
  std::uint64_t measurement_seed_;
  std::uint64_t measurement_count_ = 0;

  PowerUpSampler sampler_;
  OperatingPoint sampler_op_{};
  bool sampler_valid_ = false;
};

}  // namespace pufaging
