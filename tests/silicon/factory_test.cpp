#include "silicon/device_factory.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace pufaging {
namespace {

TEST(DeviceFactory, PaperFleetShape) {
  const FleetConfig config = paper_fleet_config();
  EXPECT_EQ(config.device_count, 16U);
  const auto fleet = make_fleet(config);
  ASSERT_EQ(fleet.size(), 16U);
  for (std::uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(fleet[i].id(), i);
  }
}

TEST(DeviceFactory, Deterministic) {
  const FleetConfig config = paper_fleet_config();
  SramDevice a = make_device(config, 3);
  SramDevice b = make_device(config, 3);
  EXPECT_EQ(a.measure(), b.measure());
  EXPECT_DOUBLE_EQ(a.mismatch(100), b.mismatch(100));
}

TEST(DeviceFactory, DevicesAreUnique) {
  const FleetConfig config = paper_fleet_config();
  SramDevice a = make_device(config, 0);
  SramDevice b = make_device(config, 1);
  const double fhd = fractional_hamming_distance(a.measure(), b.measure());
  // Between-class HD must be in the paper's 40-50% band, far from 0.
  EXPECT_GT(fhd, 0.35);
  EXPECT_LT(fhd, 0.55);
}

TEST(DeviceFactory, SeedChangesFleet) {
  FleetConfig config = paper_fleet_config();
  SramDevice a = make_device(config, 0);
  config.seed ^= 0xDEADBEEF;
  SramDevice b = make_device(config, 0);
  EXPECT_GT(fractional_hamming_distance(a.measure(), b.measure()), 0.3);
}

TEST(DeviceFactory, FleetBiasInPaperBand) {
  // Every device's FHW should land in roughly the paper's 60-70% band.
  const auto fleet = make_fleet(paper_fleet_config());
  for (const SramDevice& d : fleet) {
    SramDevice copy = d;
    const double fhw = copy.measure().fractional_weight();
    EXPECT_GT(fhw, 0.55) << copy.name();
    EXPECT_LT(fhw, 0.72) << copy.name();
  }
}

TEST(DeviceFactory, NoiseMultiplierVaries) {
  const auto fleet = make_fleet(paper_fleet_config());
  double lo = 1e9;
  double hi = 0.0;
  for (const SramDevice& d : fleet) {
    lo = std::min(lo, d.noise_sigma());
    hi = std::max(hi, d.noise_sigma());
  }
  EXPECT_GT(hi / lo, 1.02);  // boards differ
  EXPECT_LT(hi / lo, 1.6);   // but not wildly
}

TEST(DeviceFactory, BuskeeperProfileIsNearlyUnbiased) {
  // [16]: buskeeper PUFs power up close to 50/50 — the property that
  // makes them attractive as an SRAM alternative.
  auto fleet = make_fleet(buskeeper_fleet_config());
  double sum = 0.0;
  for (SramDevice& d : fleet) {
    sum += d.measure().fractional_weight();
  }
  const double fhw = sum / static_cast<double>(fleet.size());
  EXPECT_NEAR(fhw, 0.51, 0.03);
  // And distinct silicon from the SRAM fleet despite similar geometry.
  SramDevice sram = make_device(paper_fleet_config(), 0);
  SramDevice bus = make_device(buskeeper_fleet_config(), 0);
  EXPECT_GT(fractional_hamming_distance(sram.measure(), bus.measure()),
            0.3);
}

TEST(DeviceFactory, DffProfileIsBiasedAndNoisier) {
  SramDevice dff = make_device(dff_fleet_config(), 0);
  SramDevice sram = make_device(paper_fleet_config(), 0);
  EXPECT_GT(dff.noise_sigma(), sram.noise_sigma() * 1.2);
  const BitVector ref = dff.measure();
  double wchd = 0.0;
  for (int i = 0; i < 20; ++i) {
    wchd += fractional_hamming_distance(ref, dff.measure());
  }
  wchd /= 20.0;
  // Noisier power-up than the SRAM fleet's ~2.5%.
  EXPECT_GT(wchd, 0.030);
}

TEST(DeviceFactory, Validation) {
  FleetConfig config = paper_fleet_config();
  EXPECT_THROW(make_device(config, 16), InvalidArgument);
  config.device_count = 0;
  EXPECT_THROW(make_fleet(config), InvalidArgument);
}

}  // namespace
}  // namespace pufaging
