#include "tilecol/kernels.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/bitkernel.hpp"
#include "common/error.hpp"

namespace pufaging::tilecol {

TileBuffer pack_bitvector_rows(std::span<const BitVector> rows,
                               TileShape shape) {
  if (rows.empty()) {
    throw InvalidArgument("pack_bitvector_rows: no rows");
  }
  const std::size_t bits = rows.front().size();
  if (bits == 0) {
    throw InvalidArgument("pack_bitvector_rows: empty rows");
  }
  const std::size_t row_words = rows.front().words().size();
  for (const BitVector& r : rows) {
    if (r.size() != bits) {
      throw InvalidArgument("pack_bitvector_rows: row size mismatch");
    }
  }
  TileBuffer buf(TileLayout(rows.size(), row_words, shape));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    buf.pack_row(i, rows[i].words().data());
  }
  return buf;
}

void column_ones(const TileLayout& layout, const std::uint64_t* tiles,
                 std::size_t bit_count, std::uint32_t* counters) {
  for (std::size_t i = 0; i < bit_count; ++i) {
    counters[i] = 0;
  }
  // Column tiles outer, so one stripe of counters stays hot while every
  // row's segment streams past it once.
  for (std::size_t tc = 0; tc < layout.tiles_across(); ++tc) {
    const std::size_t bit_base = tc * layout.tile_cols() * 64;
    if (bit_base >= bit_count) {
      break;
    }
    const std::size_t seg_bits =
        std::min(bit_count - bit_base, layout.tile_width(tc) * 64);
    for (std::size_t tr = 0; tr < layout.tiles_down(); ++tr) {
      const std::size_t height = layout.tile_height(tr);
      const std::uint64_t* tile = tiles + layout.tile_offset(tr, tc);
      for (std::size_t r = 0; r < height; ++r) {
        bitkernel::accumulate_ones(tile + r * layout.tile_cols(), seg_bits,
                                   counters + bit_base);
      }
    }
  }
}

namespace {

// Lexicographic rank of pair (i, j), i < j, among n(n-1)/2 pairs — the
// same ranking bitkernel::all_pairs_hamming emits.
inline std::size_t pair_index(std::size_t n, std::size_t i, std::size_t j) {
  return i * (2 * n - i - 1) / 2 + (j - i - 1);
}

// Shared pair sweep: accumulates the column-tile partial distances of
// every pair (i in row-tile tr, j > i) through `emit(i, j, partial)`.
template <typename Emit>
void for_each_pair_partial(const TileLayout& layout,
                           const std::uint64_t* tiles, std::size_t tr,
                           Emit&& emit) {
  const std::size_t height_i = layout.tile_height(tr);
  const std::size_t base_i = tr * layout.tile_rows();
  for (std::size_t tr2 = tr; tr2 < layout.tiles_down(); ++tr2) {
    const std::size_t height_j = layout.tile_height(tr2);
    const std::size_t base_j = tr2 * layout.tile_rows();
    for (std::size_t tc = 0; tc < layout.tiles_across(); ++tc) {
      const std::size_t width = layout.tile_width(tc);
      const std::uint64_t* tile_i = tiles + layout.tile_offset(tr, tc);
      const std::uint64_t* tile_j = tiles + layout.tile_offset(tr2, tc);
      for (std::size_t li = 0; li < height_i; ++li) {
        const std::uint64_t* row_i = tile_i + li * layout.tile_cols();
        const std::size_t lj0 = tr2 == tr ? li + 1 : 0;
        for (std::size_t lj = lj0; lj < height_j; ++lj) {
          emit(base_i + li, base_j + lj,
               bitkernel::xor_popcount(row_i,
                                       tile_j + lj * layout.tile_cols(),
                                       width));
        }
      }
    }
  }
}

}  // namespace

void all_pairs_hamming(const TileLayout& layout, const std::uint64_t* tiles,
                       std::size_t* out) {
  const std::size_t n = layout.rows();
  if (n < 2) {
    return;
  }
  const std::size_t pairs = n * (n - 1) / 2;
  for (std::size_t k = 0; k < pairs; ++k) {
    out[k] = 0;
  }
  for (std::size_t tr = 0; tr < layout.tiles_down(); ++tr) {
    for_each_pair_partial(layout, tiles, tr,
                          [&](std::size_t i, std::size_t j,
                              std::size_t partial) {
                            out[pair_index(n, i, j)] += partial;
                          });
  }
}

PairHammingFold fold_pair_fractional_hds(const TileLayout& layout,
                                         const std::uint64_t* tiles,
                                         std::size_t bit_count) {
  PairHammingFold fold;
  const std::size_t n = layout.rows();
  if (n < 2) {
    return fold;
  }
  if (bit_count > std::numeric_limits<std::uint32_t>::max()) {
    throw InvalidArgument(
        "fold_pair_fractional_hds: pattern too long for 32-bit distances");
  }
  const double bits = static_cast<double>(bit_count);
  // One stripe of integer distances: rows of this row-tile against every
  // later row. O(tile_rows * n) — the whole point of streaming is that
  // this never becomes the O(n^2) materialized pair vector.
  std::vector<std::uint32_t> stripe(layout.tile_rows() * n);
  for (std::size_t tr = 0; tr < layout.tiles_down(); ++tr) {
    const std::size_t base_i = tr * layout.tile_rows();
    std::fill(stripe.begin(), stripe.end(), 0U);
    for_each_pair_partial(layout, tiles, tr,
                          [&](std::size_t i, std::size_t j,
                              std::size_t partial) {
                            stripe[(i - base_i) * n + j] +=
                                static_cast<std::uint32_t>(partial);
                          });
    // Convert and fold in lexicographic pair order — the historical
    // FP order of the materialized path.
    const std::size_t height = layout.tile_height(tr);
    for (std::size_t li = 0; li < height; ++li) {
      const std::size_t i = base_i + li;
      for (std::size_t j = i + 1; j < n; ++j) {
        const double b = static_cast<double>(stripe[li * n + j]) / bits;
        fold.sum += b;
        fold.wc = std::min(fold.wc, b);
        ++fold.pairs;
      }
    }
  }
  return fold;
}

}  // namespace pufaging::tilecol
