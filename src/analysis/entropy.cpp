#include "analysis/entropy.hpp"

#include "common/error.hpp"
#include "common/math.hpp"

namespace pufaging {

double puf_min_entropy(std::span<const BitVector> references) {
  if (references.size() < 2) {
    throw InvalidArgument("puf_min_entropy: need at least two references");
  }
  const std::size_t n_bits = references.front().size();
  for (const BitVector& r : references) {
    if (r.size() != n_bits) {
      throw InvalidArgument("puf_min_entropy: reference size mismatch");
    }
  }
  const double inv_devices = 1.0 / static_cast<double>(references.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < n_bits; ++i) {
    std::size_t ones = 0;
    for (const BitVector& r : references) {
      ones += r.get(i) ? 1U : 0U;
    }
    sum += binary_min_entropy(static_cast<double>(ones) * inv_devices);
  }
  return sum / static_cast<double>(n_bits);
}

double average_min_entropy(std::span<const double> one_probabilities) {
  if (one_probabilities.empty()) {
    throw InvalidArgument("average_min_entropy: empty input");
  }
  double sum = 0.0;
  for (double p : one_probabilities) {
    sum += binary_min_entropy(p);
  }
  return sum / static_cast<double>(one_probabilities.size());
}

}  // namespace pufaging
