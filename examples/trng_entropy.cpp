// TRNG: harvest noise from unstable SRAM cells, condition it, and subject
// the output to the SP 800-22 battery (paper Section II-A2).
//
//   $ ./trng_entropy
#include <cstdio>

#include "silicon/device_factory.hpp"
#include "stats/nist.hpp"
#include "trng/pipeline.hpp"

using namespace pufaging;

int main() {
  SramDevice device = make_device(paper_fleet_config(), 11);
  TrngPipeline trng(device);

  std::printf("characterized %s: %zu unstable cells (%.1f%% of the window), "
              "%.2f bits/bit min-entropy\n",
              device.name().c_str(), trng.selection().cells.size(),
              100.0 * static_cast<double>(trng.selection().cells.size()) /
                  static_cast<double>(device.puf_window_bits()),
              trng.selection().estimated_min_entropy_per_bit);

  const std::vector<std::uint8_t> random = trng.generate(2048);
  const TrngStats& stats = trng.last_stats();
  std::printf("generated %zu random bytes from %zu raw noise bits "
              "(%llu power-ups)\n",
              random.size(), stats.raw_bits,
              static_cast<unsigned long long>(stats.power_ups));
  std::printf("health tests: RCT %s, APT %s (longest raw run: %zu)\n\n",
              stats.health.rct_pass ? "pass" : "FAIL",
              stats.health.apt_pass ? "pass" : "FAIL",
              stats.health.longest_run);

  BitVector bits(random.size() * 8);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    bits.set(i, (random[i / 8] >> (i % 8)) & 1U);
  }
  std::printf("SP 800-22 results on the conditioned output:\n");
  std::printf("  %-22s %10s  %s\n", "test", "p-value", "verdict");
  for (const NistResult& r : nist_suite(bits)) {
    if (!r.applicable) {
      std::printf("  %-22s %10s  n/a (input too short)\n", r.name.c_str(),
                  "-");
      continue;
    }
    std::printf("  %-22s %10.4f  %s\n", r.name.c_str(), r.p_value,
                r.passed() ? "pass" : "FAIL");
  }

  std::printf("\nafter two years of aging the unstable population grows:\n");
  device.age_months(24.0);
  trng.recharacterize();
  std::printf("  unstable cells now: %zu (throughput %.0f bits/power-up)\n",
              trng.selection().cells.size(), trng.bits_per_power_up());
  return 0;
}
