// Reliability forecasting: characterize a device once, fit the CHES'13
// hidden-variable model and the power-law aging trajectory, and predict
// lifetime quantities the paper had to measure over two years.
//
//   $ ./reliability_forecast
#include <cstdio>

#include "analysis/lifetime.hpp"
#include "analysis/one_probability.hpp"
#include "analysis/reliability_model.hpp"
#include "silicon/device_factory.hpp"

using namespace pufaging;

int main() {
  SramDevice device = make_device(paper_fleet_config(), 9);

  // One-time characterization: 500 power-ups.
  constexpr std::size_t kMeasurements = 500;
  OneProbabilityAccumulator acc(device.puf_window_bits());
  for (std::size_t i = 0; i < kMeasurements; ++i) {
    acc.add(device.measure());
  }
  const ReliabilityObservation obs = summarize_one_probabilities(
      acc.one_probabilities(), kMeasurements);
  std::printf("characterization of %s (%zu power-ups):\n",
              device.name().c_str(), kMeasurements);
  std::printf("  bias %.2f%%, WCHD %.2f%%, stable cells %.1f%%\n\n",
              100.0 * obs.mean_p, 100.0 * obs.mean_wchd,
              100.0 * obs.stable_fraction);

  // Fit the hidden-variable model (Maes, CHES 2013).
  const ReliabilityModel model = fit_reliability_model(obs);
  std::printf("fitted reliability model: lambda1 = %.1f "
              "(process/noise ratio), lambda2 = %.2f (bias)\n",
              model.lambda1, model.lambda2);
  std::printf("model predictions vs direct measurement:\n");
  std::printf("  noise entropy: %.2f%% (measured %.2f%%)\n",
              100.0 * model.expected_noise_entropy(),
              100.0 * acc.noise_min_entropy());
  std::printf("  stable cells at 10k power-ups: %.1f%%\n",
              100.0 * model.expected_stable_fraction(10000));
  std::printf("  WCHD against a 9-vote majority reference: %.2f%% "
              "(one-shot: %.2f%%)\n\n",
              100.0 * model.expected_error_vs_voted_reference(9),
              100.0 * model.expected_wchd());

  // Watch the device age for a year, fit the trajectory, forecast year 2.
  std::printf("monitoring 12 months of aging...\n");
  std::vector<double> months = {0.0};
  std::vector<double> wchd = {obs.mean_wchd};
  const BitVector reference = device.measure();
  for (int month = 1; month <= 12; ++month) {
    device.age_months(1.0);
    double sum = 0.0;
    for (int i = 0; i < 50; ++i) {
      sum += fractional_hamming_distance(reference, device.measure());
    }
    months.push_back(month);
    wchd.push_back(sum / 50.0);
  }
  const AgingTrajectoryFit fit = fit_aging_trajectory(months, wchd);
  std::printf("fit: wchd(t) = %.4f + %.5f * t^%.2f\n", fit.baseline,
              fit.amplitude, fit.exponent);
  std::printf("forecast at month 24: %.2f%% (the paper measured 2.97%% "
              "fleet-average)\n",
              100.0 * fit.predict(24.0));
  const auto budget = fit.months_until(0.08);
  if (budget) {
    std::printf("ECC budget (8%% BER) reached after ~%.0f years -- key "
                "generation is safe for any realistic lifetime.\n",
                *budget / 12.0);
  } else {
    std::printf("the fitted trajectory never reaches the 8%% ECC budget.\n");
  }
  return 0;
}
