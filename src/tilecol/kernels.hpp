// Tile-blocked analysis kernels over the columnar layout.
//
// Every kernel here is a re-blocking of an existing bitkernel sweep: the
// per-segment work is done by the dispatched bitkernel entry points
// (xor_popcount, accumulate_ones), so each SIMD tier's bit-identity
// contract carries over unchanged, and the tile partials are integers —
// reassociating them across tiles cannot change a count.
//
// Floating-point stays out of the tile loops entirely. The one consumer
// that needs doubles (the BCHD fold) converts integer distances in
// lexicographic pair order — the exact order the row-at-a-time path used —
// so streaming the pairs is bit-identical to materializing them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/bitvector.hpp"
#include "tilecol/layout.hpp"

namespace pufaging::tilecol {

/// Packs equal-length BitVector rows into a fresh tile buffer at `shape`.
/// Throws InvalidArgument when rows are empty or lengths differ.
TileBuffer pack_bitvector_rows(std::span<const BitVector> rows,
                               TileShape shape);

/// Column ones counts over tiled rows: counters[i] = number of rows whose
/// bit i is set, i in [0, bit_count). Counters are zero-initialized by
/// the callee. Tile-blocked twin of bitkernel::column_ones; integer
/// results are equal to it on any tile shape.
void column_ones(const TileLayout& layout, const std::uint64_t* tiles,
                 std::size_t bit_count, std::uint32_t* counters);

/// All-pairs Hamming distances over tiled rows, lexicographic pair order
/// (out[k] = HD(row i, row j), i < j, k as in bitkernel::all_pairs_hamming).
/// Distances accumulate per column tile — integer partials, any order.
void all_pairs_hamming(const TileLayout& layout, const std::uint64_t* tiles,
                       std::size_t* out);

/// Result of the streaming BCHD fold: the fractional-HD sum and minimum
/// over all pairs, accumulated in lexicographic pair order.
struct PairHammingFold {
  double sum = 0.0;
  double wc = 1.0;
  std::size_t pairs = 0;
};

/// Streams the all-pairs fractional Hamming distances without
/// materializing the O(n^2) pair vector: integer distances accumulate
/// per row stripe (O(tile_rows * n) scratch), then convert to doubles and
/// fold in lexicographic pair order — bit-identical to summing
/// between_class_hds' output in order. `bit_count` is the pattern length
/// the fractions divide by.
PairHammingFold fold_pair_fractional_hds(const TileLayout& layout,
                                         const std::uint64_t* tiles,
                                         std::size_t bit_count);

}  // namespace pufaging::tilecol
