#include "chaoslab/cliff.hpp"

#include <gtest/gtest.h>

#include "chaoslab/test_support.hpp"
#include "common/error.hpp"

namespace pufaging::chaoslab {
namespace {

/// Builds a complete synthetic cell set where every aggregate is flat
/// except the values the individual test plants.
std::vector<CellSummary> flat_cells(const GridSpec& spec, double coverage) {
  std::vector<CellSummary> cells(spec.cell_count());
  for (std::size_t p = 0; p < spec.policy_count(); ++p) {
    for (std::size_t r = 0; r < spec.rate_count(); ++r) {
      CellSummary& cell = cells[spec.cell_index(r, p)];
      cell.rate_index = r;
      cell.policy_index = p;
      RunStats run;
      run.coverage_mean = coverage;
      run.coverage_min = coverage;
      cell.runs = {run};
      cell.recompute();
    }
  }
  return cells;
}

void set_coverage(const GridSpec& spec, std::vector<CellSummary>& cells,
                  std::size_t rate, std::size_t policy, double coverage) {
  CellSummary& cell = cells[spec.cell_index(rate, policy)];
  cell.runs[0].coverage_mean = coverage;
  cell.runs[0].coverage_min = coverage;
  cell.recompute();
}

TEST(CliffDetect, FindsPlantedCoverageCliff) {
  const GridSpec spec = tiny_grid_spec();  // 3 scales x 2 policies
  std::vector<CellSummary> cells = flat_cells(spec, 0.95);
  // Policy 1 falls off between scale index 1 and 2.
  set_coverage(spec, cells, 2, 1, 0.30);

  const CliffReport report = detect_cliffs(spec, cells);
  ASSERT_TRUE(report.worst_coverage.has_value());
  EXPECT_EQ(report.worst_coverage->metric, "coverage");
  EXPECT_EQ(report.worst_coverage->policy_index, 1u);
  EXPECT_EQ(report.worst_coverage->from_rate_index, 1u);
  EXPECT_NEAR(report.worst_coverage->drop, 0.65, 1e-12);

  ASSERT_EQ(report.cliffs.size(), 1u);
  EXPECT_EQ(report.cliffs[0].policy_index, 1u);
  EXPECT_NEAR(report.cliffs[0].before, 0.95, 1e-12);
  EXPECT_NEAR(report.cliffs[0].after, 0.30, 1e-12);
}

TEST(CliffDetect, SortsByMagnitudeAndRespectsThreshold) {
  const GridSpec spec = tiny_grid_spec();
  std::vector<CellSummary> cells = flat_cells(spec, 0.90);
  set_coverage(spec, cells, 1, 0, 0.70);  // drop 0.20 at policy 0
  set_coverage(spec, cells, 2, 0, 0.20);  // drop 0.50 at policy 0
  set_coverage(spec, cells, 2, 1, 0.87);  // drop 0.03: below threshold

  const CliffReport report = detect_cliffs(spec, cells);
  ASSERT_EQ(report.cliffs.size(), 2u);
  EXPECT_GT(report.cliffs[0].drop, report.cliffs[1].drop);
  EXPECT_EQ(report.cliffs[0].from_rate_index, 1u);
  EXPECT_EQ(report.cliffs[1].from_rate_index, 0u);

  // The sub-threshold 0.03 drop is still eligible for worst_coverage
  // when it is the only drop — here it is not, so worst is the 0.50 one.
  EXPECT_NEAR(report.worst_coverage->drop, 0.50, 1e-12);

  // With a looser threshold the small cliff appears too.
  const CliffReport loose = detect_cliffs(spec, cells, 0.01);
  EXPECT_EQ(loose.cliffs.size(), 3u);
}

TEST(CliffDetect, DriftRisesCountAsCliffs) {
  const GridSpec spec = tiny_grid_spec();
  std::vector<CellSummary> cells = flat_cells(spec, 0.95);
  CellSummary& cell = cells[spec.cell_index(2, 0)];
  cell.runs[0].bchd_drift = 0.05;
  cell.recompute();

  const CliffReport report = detect_cliffs(spec, cells);
  ASSERT_EQ(report.cliffs.size(), 1u);
  EXPECT_EQ(report.cliffs[0].metric, "bchd_drift");
  EXPECT_EQ(report.cliffs[0].from_rate_index, 1u);
  EXPECT_NEAR(report.cliffs[0].drop, 0.05, 1e-12);
  // A perfectly flat grid has no coverage drop at all.
  EXPECT_FALSE(report.worst_coverage.has_value());
}

TEST(CliffDetect, LocationHashTracksLocationsNotMagnitudes) {
  const GridSpec spec = tiny_grid_spec();
  std::vector<CellSummary> cells = flat_cells(spec, 0.95);
  set_coverage(spec, cells, 2, 1, 0.30);
  const std::string hash_a =
      cliff_location_hash(spec, detect_cliffs(spec, cells));

  // Same location, different magnitude: hash unchanged.
  set_coverage(spec, cells, 2, 1, 0.25);
  const std::string hash_b =
      cliff_location_hash(spec, detect_cliffs(spec, cells));
  EXPECT_EQ(hash_a, hash_b);

  // Cliff relocates to the other policy row: hash moves.
  set_coverage(spec, cells, 2, 1, 0.95);
  set_coverage(spec, cells, 2, 0, 0.30);
  const std::string hash_c =
      cliff_location_hash(spec, detect_cliffs(spec, cells));
  EXPECT_NE(hash_a, hash_c);
}

TEST(CliffDetect, RequiresCompleteCellSet) {
  const GridSpec spec = tiny_grid_spec();
  std::vector<CellSummary> cells = flat_cells(spec, 0.95);
  cells.pop_back();
  EXPECT_THROW(detect_cliffs(spec, cells), InvalidArgument);
  EXPECT_THROW(
      riskcliff_to_json(spec, grid_fingerprint(spec), cells, CliffReport{}),
      InvalidArgument);
  EXPECT_THROW(render_grid_tables(spec, cells, CliffReport{}),
               InvalidArgument);
}

TEST(Riskcliff, JsonCarriesCellsCliffsAndHash) {
  const GridSpec spec = tiny_grid_spec();
  std::vector<CellSummary> cells = flat_cells(spec, 0.95);
  set_coverage(spec, cells, 2, 1, 0.30);
  const CliffReport report = detect_cliffs(spec, cells);
  const std::string fingerprint = grid_fingerprint(spec);

  const Json doc = riskcliff_to_json(spec, fingerprint, cells, report);
  EXPECT_EQ(doc.at("kind").as_string(), "riskcliff");
  EXPECT_EQ(doc.at("fingerprint").as_string(), fingerprint);
  EXPECT_EQ(doc.at("cliff_location_hash").as_string(),
            cliff_location_hash(spec, report));
  EXPECT_EQ(doc.at("cells").as_array().size(), spec.cell_count());
  EXPECT_EQ(doc.at("cliffs").as_array().size(), report.cliffs.size());
  EXPECT_EQ(doc.at("worst_coverage_cliff").at("policy").as_string(),
            spec.policies[1].label);

  const Json& cell = doc.at("cells").as_array().front();
  EXPECT_TRUE(cell.at("coverage_mean").contains("bits"));
  EXPECT_DOUBLE_EQ(cell.at("coverage_mean").at("mean").as_double(), 0.95);

  // Serialization is deterministic (insertion-ordered writer).
  EXPECT_EQ(doc.dump(),
            riskcliff_to_json(spec, fingerprint, cells, report).dump());

  const std::string tables = render_grid_tables(spec, cells, report);
  EXPECT_NE(tables.find("Coverage"), std::string::npos);
  EXPECT_NE(tables.find("Worst coverage cliff"), std::string::npos);
  EXPECT_NE(tables.find(spec.policies[1].label), std::string::npos);
}

}  // namespace
}  // namespace pufaging::chaoslab
