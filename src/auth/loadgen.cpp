#include "auth/loadgen.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/sha256.hpp"

namespace pufaging::auth {
namespace {

constexpr std::uint64_t kDomainWorkload = 0x10AD'574F'524B'0001ULL;

std::uint64_t fraction_threshold(double fraction) {
  if (fraction <= 0.0) {
    return 0;
  }
  if (fraction >= 1.0) {
    return ~std::uint64_t{0};
  }
  return static_cast<std::uint64_t>(fraction * 18446744073709551616.0);
}

std::uint64_t percentile(std::vector<std::uint64_t>& sorted, double p) {
  if (sorted.empty()) {
    return 0;
  }
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

void enroll_fleet(AuthService& service, const VirtualFleet& fleet,
                  ThreadPool& pool) {
  const std::uint64_t devices = fleet.device_count();
  std::vector<EnrollmentRecord> records(devices);
  constexpr std::size_t kChunk = 256;
  const std::size_t chunks =
      (static_cast<std::size_t>(devices) + kChunk - 1) / kChunk;
  pool.parallel_for(0, chunks, [&](std::size_t c) {
    const std::uint64_t begin = c * kChunk;
    const std::uint64_t end =
        std::min<std::uint64_t>(begin + kChunk, devices);
    for (std::uint64_t d = begin; d < end; ++d) {
      records[d] =
          service.make_enrollment(d, fleet.enrollment_response(d));
    }
  });
  // Serial ingest in device order: WAL append order (and therefore any
  // durable state) is independent of the pool's scheduling.
  for (std::uint64_t d = 0; d < devices; ++d) {
    service.ingest(records[d]);
  }
}

LoadReport run_load(const LoadgenConfig& config, const AuthService& service,
                    const VirtualFleet& fleet, ThreadPool& pool) {
  if (config.devices == 0 || config.auths_per_year == 0 ||
      config.batch_size == 0 || config.years == 0 || config.passes == 0) {
    throw InvalidArgument("run_load: zero-sized workload dimension");
  }
  if (fleet.device_count() < config.devices) {
    throw InvalidArgument("run_load: fleet smaller than configured devices");
  }
  const std::size_t words = service.words_per_response();
  const std::size_t n = config.auths_per_year;
  const std::size_t batches = (n + config.batch_size - 1) / config.batch_size;
  const std::uint64_t impostor_cut =
      fraction_threshold(config.impostor_fraction);
  obs::MonotonicClock& clk =
      config.clock != nullptr ? *config.clock : obs::RealClock::instance();

  LoadReport report;
  Sha256 decisions_hash;

  std::vector<std::uint64_t> claimed(n);
  std::vector<std::uint8_t> genuine(n);
  std::vector<std::uint64_t> responses(n * words);
  std::vector<AuthDecision> decisions(n);
  std::vector<AuthBatchStats> batch_stats(batches);
  std::vector<std::uint64_t> batch_ns(batches * config.passes);

  for (std::size_t year = 0; year < config.years; ++year) {
    // --- Simulation (untimed): build the year's request corpus. Every
    // row is a pure function of (seed, year, request), so the parallel
    // build is deterministic and order-free.
    const std::uint64_t wl_key =
        split_seed(config.seed, kDomainWorkload, year);
    pool.parallel_for(0, n, [&](std::size_t r) {
      const std::uint64_t claim =
          Philox4x32::at(wl_key, 3 * r) % config.devices;
      const bool impostor = Philox4x32::at(wl_key, 3 * r + 1) < impostor_cut;
      const std::uint64_t silicon =
          impostor ? fleet.device_count() +
                         Philox4x32::at(wl_key, 3 * r + 2) % config.devices
                   : claim;
      claimed[r] = claim;
      genuine[r] = impostor ? 0 : 1;
      const std::uint64_t nonce =
          static_cast<std::uint64_t>(year) * n + r + 1;
      fleet.response_into(silicon, static_cast<double>(year), nonce,
                          responses.data() + r * words);
    });

    // --- Measurement (timed): drive the service hot path only. Stats are
    // recorded per batch index, aggregated in index order afterwards.
    const std::uint64_t year_t0 = clk.now_ns();
    for (std::size_t pass = 0; pass < config.passes; ++pass) {
      pool.parallel_for(0, batches, [&](std::size_t b) {
        const std::size_t begin = b * config.batch_size;
        const std::size_t count = std::min(config.batch_size, n - begin);
        thread_local std::vector<AuthRequest> reqs;
        reqs.resize(count);
        for (std::size_t i = 0; i < count; ++i) {
          reqs[i].device_id = claimed[begin + i];
          reqs[i].response = responses.data() + (begin + i) * words;
        }
        const std::uint64_t t0 = clk.now_ns();
        const AuthBatchStats stats = service.authenticate_batch(
            reqs.data(), count, decisions.data() + begin);
        batch_ns[pass * batches + b] = clk.now_ns() - t0;
        if (pass == 0) {
          batch_stats[b] = stats;
        }
      });
    }
    const double year_seconds =
        static_cast<double>(clk.now_ns() - year_t0) * 1e-9;

    // --- Aggregation (deterministic order).
    decisions_hash.update(
        reinterpret_cast<const std::uint8_t*>(decisions.data()),
        decisions.size());

    YearLoadStats ys;
    ys.year = year;
    ys.requests = n;
    AuthBatchStats total;
    for (const AuthBatchStats& s : batch_stats) {
      total += s;
    }
    for (std::size_t r = 0; r < n; ++r) {
      const bool accepted = decisions[r] == AuthDecision::kAccept;
      if (genuine[r] != 0) {
        ++ys.genuine;
        if (!accepted) {
          ++ys.false_rejects;
        }
      } else {
        ++ys.impostors;
        if (accepted) {
          ++ys.false_accepts;
        }
      }
    }
    ys.frr = ys.genuine == 0 ? 0.0
                             : static_cast<double>(ys.false_rejects) /
                                   static_cast<double>(ys.genuine);
    ys.far = ys.impostors == 0 ? 0.0
                               : static_cast<double>(ys.false_accepts) /
                                     static_cast<double>(ys.impostors);
    ys.corrected_bits_mean =
        total.accepted == 0 ? 0.0
                            : static_cast<double>(total.corrected_bits) /
                                  static_cast<double>(total.accepted);
    const std::uint64_t year_requests =
        static_cast<std::uint64_t>(n) * config.passes;
    ys.auths_per_sec = year_seconds > 0.0
                           ? static_cast<double>(year_requests) / year_seconds
                           : 0.0;
    std::vector<std::uint64_t> lat = batch_ns;
    std::sort(lat.begin(), lat.end());
    ys.p50_ns = percentile(lat, 0.50);
    ys.p95_ns = percentile(lat, 0.95);
    ys.p99_ns = percentile(lat, 0.99);
    report.years.push_back(ys);
    report.total_requests += year_requests;
    report.total_seconds += year_seconds;

    if (config.metrics != nullptr) {
      config.metrics->gauge_set("auth.load.year",
                                static_cast<double>(year));
      config.metrics->gauge_set("auth.load.auths_per_sec",
                                ys.auths_per_sec);
      config.metrics->add("auth.load.false_rejects",
                          static_cast<std::uint64_t>(ys.false_rejects));
      config.metrics->add("auth.load.false_accepts",
                          static_cast<std::uint64_t>(ys.false_accepts));
    }
  }

  report.auths_per_sec =
      report.total_seconds > 0.0
          ? static_cast<double>(report.total_requests) / report.total_seconds
          : 0.0;
  report.decisions_sha256 = Sha256::to_hex(decisions_hash.finalize());
  return report;
}

std::string LoadReport::render() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "year  requests  genuine  impostor      FRR        FAR  "
                "corr/auth   auths/s    p50us    p95us    p99us\n");
  out += line;
  for (const YearLoadStats& y : years) {
    std::snprintf(
        line, sizeof(line),
        "%4zu  %8llu  %7llu  %8llu  %7.4f  %9.6f  %9.2f  %8.0f  %7.1f  "
        "%7.1f  %7.1f\n",
        y.year, static_cast<unsigned long long>(y.requests),
        static_cast<unsigned long long>(y.genuine),
        static_cast<unsigned long long>(y.impostors), y.frr, y.far,
        y.corrected_bits_mean, y.auths_per_sec,
        static_cast<double>(y.p50_ns) * 1e-3,
        static_cast<double>(y.p95_ns) * 1e-3,
        static_cast<double>(y.p99_ns) * 1e-3);
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "total: %llu auths in %.3f s  =>  %.0f auths/s\n"
                "decisions sha256: %s\n",
                static_cast<unsigned long long>(total_requests),
                total_seconds, auths_per_sec, decisions_sha256.c_str());
  out += line;
  return out;
}

}  // namespace pufaging::auth
