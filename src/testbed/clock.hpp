// Discrete-event simulation kernel for the measurement rig.
//
// The paper's rig is inherently event-driven: two master boards exchange
// handshake signals, power switches toggle rails on a 5.4 s cycle, slaves
// boot and stream data over I2C. The simulator models all of that with a
// single virtual clock and an ordered event queue.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace pufaging {

/// Simulated time in seconds since the start of the test.
using SimTime = double;

/// Priority queue of timed callbacks with a deterministic tie-break
/// (insertion order), so simulations replay identically.
class EventQueue {
 public:
  /// Schedules `fn` to run at absolute time `at` (must be >= now()).
  void schedule_at(SimTime at, std::function<void()> fn);

  /// Schedules `fn` to run `delay` seconds from now.
  void schedule_in(SimTime delay, std::function<void()> fn);

  /// Current simulation time.
  SimTime now() const { return now_; }

  /// Runs events until the queue is empty or the next event is later than
  /// `until`; the clock then rests at min(until, last event time).
  void run_until(SimTime until);

  /// Runs `n` events (or fewer if the queue drains). Returns events run.
  std::size_t step(std::size_t n = 1);

  bool empty() const { return events_.empty(); }
  std::size_t pending() const { return events_.size(); }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) {
        return a.at > b.at;
      }
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> events_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace pufaging
