// Loopback tests for the socket shell: real fds, a server thread, and a
// BlockingClient. The policy logic is proven deterministically in
// daemon_test.cpp — these tests only cover what the shell adds: accept,
// read/write plumbing, EOF/garbage close paths, half-open peers, and the
// stop-flag drain returning a clean report with zero requests lost.
#include "authd/server.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "auth/fleet_sim.hpp"
#include "auth/service.hpp"
#include "authd/daemon.hpp"

namespace pufaging::authd {
namespace {

constexpr std::uint64_t kDevices = 4;

struct LiveServer {
  auth::VirtualFleet fleet;
  auth::AuthService service;
  AuthDaemon daemon;
  SocketServer server;
  std::atomic<bool> stop{false};
  std::thread thread;
  ServerReport report;

  explicit LiveServer(const std::string& socket_path = "")
      : fleet(fleet_config(), kDevices),
        service(auth::AuthServiceConfig{}),
        daemon(enrolled(service, fleet), daemon_config()),
        server(daemon, server_config(socket_path)) {
    thread = std::thread([this] { report = server.run(stop); });
  }

  ~LiveServer() {
    if (thread.joinable()) {
      stop.store(true);
      thread.join();
    }
  }

  ServerReport finish() {
    stop.store(true);
    thread.join();
    return report;
  }

  static auth::VirtualFleetConfig fleet_config() {
    auth::VirtualFleetConfig config;
    config.seed = 0x10CA1;
    return config;
  }

  static DaemonConfig daemon_config() {
    DaemonConfig config;
    config.rate.burst = 0;
    config.lockout.retry_budget = 100;
    return config;
  }

  static ServerConfig server_config(const std::string& socket_path) {
    ServerConfig config;
    config.socket_path = socket_path;
    config.poll_interval_ms = 5;
    return config;
  }

  static const auth::AuthService& enrolled(auth::AuthService& service,
                                           const auth::VirtualFleet& fleet) {
    for (std::uint64_t id = 0; id < kDevices; ++id) {
      service.enroll(id, fleet.enrollment_response(id));
    }
    return service;
  }

  AuthRequestMsg genuine(std::uint64_t device, std::uint64_t request_id) {
    AuthRequestMsg msg;
    msg.request_id = request_id;
    msg.device_id = device;
    msg.response = fleet.enrollment_response(device).words();
    return msg;
  }
};

TEST(SocketServer, TcpLoopbackAuthenticatesEndToEnd) {
  LiveServer live;
  ASSERT_NE(live.server.port(), 0);
  BlockingClient client = BlockingClient::connect_tcp(live.server.port());
  for (std::uint64_t i = 0; i < kDevices; ++i) {
    client.send(live.genuine(i, 100 + i));
  }
  for (std::uint64_t i = 0; i < kDevices; ++i) {
    const std::optional<AuthResponseMsg> response = client.read_response();
    ASSERT_TRUE(response.has_value()) << i;
    EXPECT_EQ(response->request_id, 100 + i);
    EXPECT_EQ(response->status, ResponseStatus::kDecision);
    EXPECT_EQ(response->decision,
              static_cast<std::uint8_t>(auth::AuthDecision::kAccept));
  }
  const ServerReport report = live.finish();
  EXPECT_TRUE(report.drained_clean);
  EXPECT_EQ(report.stats.decided, kDevices);
}

TEST(SocketServer, UnixSocketAuthenticatesEndToEnd) {
  // sun_path is ~108 bytes: keep the path short and unique per run.
  const std::string path =
      "/tmp/pa_authd_" + std::to_string(::getpid()) + ".sock";
  {
    LiveServer live(path);
    BlockingClient client = BlockingClient::connect_unix(path);
    client.send(live.genuine(2, 7));
    const std::optional<AuthResponseMsg> response = client.read_response();
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, ResponseStatus::kDecision);
    EXPECT_TRUE(live.finish().drained_clean);
  }
  std::remove(path.c_str());
}

TEST(SocketServer, GarbageClientIsDisconnectedOthersUnaffected) {
  LiveServer live;
  BlockingClient vandal = BlockingClient::connect_tcp(live.server.port());
  BlockingClient honest = BlockingClient::connect_tcp(live.server.port());
  vandal.send_bytes("ThisIsNotThePad1ProtocolAtAll...............");
  // The server must answer the framing violation with a close (EOF here).
  EXPECT_FALSE(vandal.read_response().has_value());
  // The honest connection is untouched by the vandal's demise.
  honest.send(live.genuine(1, 1));
  const std::optional<AuthResponseMsg> response = honest.read_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, ResponseStatus::kDecision);
  EXPECT_EQ(live.finish().stats.protocol_errors, 1U);
}

TEST(SocketServer, HalfOpenClientStillReceivesItsResponse) {
  LiveServer live;
  BlockingClient client = BlockingClient::connect_tcp(live.server.port());
  client.send(live.genuine(3, 11));
  client.shutdown_write();  // FIN sent; the read side stays open.
  const std::optional<AuthResponseMsg> response = client.read_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->request_id, 11U);
  EXPECT_EQ(response->status, ResponseStatus::kDecision);
}

TEST(SocketServer, StopWithInFlightRequestsDrainsThemAll) {
  LiveServer live;
  BlockingClient client = BlockingClient::connect_tcp(live.server.port());
  // One served round trip first: the drain closes the listener, so a
  // connection still in the accept backlog would be legitimately refused.
  client.send(live.genuine(0, 1000));
  ASSERT_TRUE(client.read_response().has_value());
  constexpr std::uint64_t kBurst = 64;
  for (std::uint64_t i = 0; i < kBurst; ++i) {
    client.send(live.genuine(i % kDevices, i));
  }
  live.stop.store(true);  // Race the drain against the burst.
  std::uint64_t decided = 0;
  std::uint64_t refused = 0;
  while (const std::optional<AuthResponseMsg> response =
             client.read_response()) {
    if (response->status == ResponseStatus::kDecision) {
      ++decided;
    } else {
      // Bytes read after begin_drain are answered, typed, never dropped.
      EXPECT_EQ(response->status, ResponseStatus::kDraining);
      ++refused;
    }
  }
  live.thread.join();
  // Every burst request got exactly one answer: admitted ones a
  // decision, the rest a typed kDraining — zero silent losses.
  EXPECT_EQ(decided + refused, kBurst);
  EXPECT_EQ(decided + 1, live.report.stats.decided);
  EXPECT_TRUE(live.report.drained_clean);
  EXPECT_EQ(live.report.stats.queue_depth, 0U);
}

}  // namespace
}  // namespace pufaging::authd
