// Wire-format proofs for enrollment records and the registry's
// snapshot/WAL round-trip: every malformed input is a ParseError, never a
// partially-filled record, and recovery reproduces the registry exactly.
#include "auth/records.hpp"

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "auth/registry.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace pufaging::auth {
namespace {

EnrollmentRecord sample_record(std::uint64_t device_id, std::uint64_t seed) {
  Xoshiro256StarStar rng(seed);
  EnrollmentRecord record;
  record.device_id = device_id;
  record.blocks = 11;
  record.helper.resize(record.helper_words());
  for (auto& word : record.helper) {
    word = rng.next();
  }
  for (auto& byte : record.verifier) {
    byte = static_cast<std::uint8_t>(rng.next());
  }
  return record;
}

TEST(EnrollmentRecordWire, RoundTripsExactly) {
  for (std::uint64_t id : {0ULL, 1ULL, 41ULL, 0xFFFFFFFFFFFFULL}) {
    const EnrollmentRecord record = sample_record(id, id + 7);
    const std::vector<std::uint8_t> bytes = serialize_record(record);
    EXPECT_EQ(parse_record(bytes), record);
  }
}

TEST(EnrollmentRecordWire, EveryTruncationIsAParseError) {
  const std::vector<std::uint8_t> bytes = serialize_record(sample_record(3, 9));
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(parse_record(bytes.data(), len), ParseError)
        << "length " << len;
  }
}

TEST(EnrollmentRecordWire, TruncationErrorNamesOffsetAndShortfall) {
  const std::vector<std::uint8_t> bytes = serialize_record(sample_record(3, 9));
  try {
    parse_record(bytes.data(), 10);  // Cut inside the device-id field.
    FAIL() << "truncation not detected";
  } catch (const ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("need 8 byte(s) at offset 4"), std::string::npos)
        << what;
    EXPECT_NE(what.find("have 6"), std::string::npos) << what;
  }
}

TEST(EnrollmentRecordWire, RejectsBadMagicAndTrailingBytes) {
  std::vector<std::uint8_t> bytes = serialize_record(sample_record(5, 11));
  std::vector<std::uint8_t> bad_magic = bytes;
  bad_magic[0] ^= 0x20;
  EXPECT_THROW(parse_record(bad_magic), ParseError);

  std::vector<std::uint8_t> trailing = bytes;
  trailing.push_back(0);
  EXPECT_THROW(parse_record(trailing), ParseError);
}

TEST(EnrollmentRecordWire, RejectsZeroAndAbsurdBlockCounts) {
  std::vector<std::uint8_t> bytes = serialize_record(sample_record(5, 13));
  // blocks is the u32 at offset 4 + 8 (magic + device id), little-endian.
  bytes[12] = 0;
  bytes[13] = 0;
  bytes[14] = 0;
  bytes[15] = 0;
  EXPECT_THROW(parse_record(bytes), ParseError) << "blocks == 0";
  bytes[15] = 0x80;
  EXPECT_THROW(parse_record(bytes), ParseError) << "blocks > 4096";

  EnrollmentRecord invalid;
  invalid.blocks = 0;
  EXPECT_THROW(serialize_record(invalid), InvalidArgument);
}

TEST(EnrollmentRecordWire, RandomGarbageNeverEscapesAsARecord) {
  Xoshiro256StarStar rng(0xF422);
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::uint8_t> bytes(rng.below(96));
    for (auto& b : bytes) {
      b = static_cast<std::uint8_t>(rng.next());
    }
    try {
      const EnrollmentRecord record = parse_record(bytes);
      // Only a fully coherent record may parse; re-serialization must be
      // the identity then.
      EXPECT_EQ(serialize_record(record), bytes);
    } catch (const ParseError&) {
      // The expected outcome for garbage.
    }
  }
}

TEST(AuthRegistry, SnapshotRoundTripsRecordsAndGaps) {
  AuthRegistry registry(11);
  // Sparse ids: snapshots must preserve gaps, not compact them away.
  for (std::uint64_t id : {0ULL, 2ULL, 3ULL, 17ULL}) {
    registry.put(sample_record(id, id));
  }
  EXPECT_EQ(registry.size(), 4U);
  EXPECT_TRUE(registry.contains(17));
  EXPECT_FALSE(registry.contains(16));

  const AuthRegistry restored =
      AuthRegistry::from_snapshot(registry.serialize_snapshot());
  EXPECT_EQ(restored.size(), registry.size());
  for (std::uint64_t id : {0ULL, 2ULL, 3ULL, 17ULL}) {
    ASSERT_TRUE(restored.contains(id));
    EXPECT_EQ(restored.record(id), registry.record(id));
  }
  EXPECT_FALSE(restored.contains(1));
  EXPECT_FALSE(restored.contains(16));
}

TEST(AuthRegistry, SnapshotRejectsCorruption) {
  AuthRegistry registry(11);
  registry.put(sample_record(0, 1));
  std::string blob = registry.serialize_snapshot();
  EXPECT_THROW(AuthRegistry::from_snapshot(blob.substr(0, blob.size() - 3)),
               ParseError);
  std::string bad = blob;
  bad[0] ^= 1;
  EXPECT_THROW(AuthRegistry::from_snapshot(bad), ParseError);
  EXPECT_THROW(AuthRegistry::from_snapshot(blob + "x"), ParseError);
}

TEST(AuthRegistry, WalReplayEqualsDirectPuts) {
  AuthRegistry direct(11);
  AuthRegistry replayed(11);
  for (std::uint64_t id = 0; id < 12; ++id) {
    const EnrollmentRecord record = sample_record(id, 100 + id);
    direct.put(record);
    const std::vector<std::uint8_t> bytes = serialize_record(record);
    replayed.apply_wal_record(std::string_view(
        reinterpret_cast<const char*>(bytes.data()), bytes.size()));
  }
  EXPECT_EQ(replayed.serialize_snapshot(), direct.serialize_snapshot());
}

TEST(AuthRegistry, PutRejectsBlockMismatch) {
  AuthRegistry registry(11);
  EnrollmentRecord record = sample_record(0, 1);
  record.blocks = 10;
  record.helper.resize(record.helper_words());
  EXPECT_THROW(registry.put(record), InvalidArgument);
}

}  // namespace
}  // namespace pufaging::auth
