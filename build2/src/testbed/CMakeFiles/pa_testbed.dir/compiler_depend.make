# Empty compiler generated dependencies file for pa_testbed.
# This may be replaced when dependencies are built.
