#include "silicon/aging.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace pufaging {
namespace {

constexpr double kSigma = 1.0 / 17.5;

AgingParams systematic_only() {
  AgingParams p;
  p.variability_noise_units = 0.0;
  p.noise_growth_per_tau = 0.0;
  return p;
}

TEST(AccelerationFactor, UnityAtNominal) {
  EXPECT_NEAR(acceleration_factor(nominal_conditions()), 1.0, 1e-12);
}

TEST(AccelerationFactor, MonotonicInTemperatureAndVoltage) {
  double prev = 0.0;
  for (double t = 25.0; t <= 125.0; t += 20.0) {
    const double af = acceleration_factor({t, 5.0});
    EXPECT_GT(af, prev);
    prev = af;
  }
  EXPECT_GT(acceleration_factor({25.0, 5.5}),
            acceleration_factor({25.0, 5.0}));
  EXPECT_LT(acceleration_factor({25.0, 4.5}),
            acceleration_factor({25.0, 5.0}));
}

TEST(AccelerationFactor, ArrheniusKnownValue) {
  // Ea = 0.5 eV, 25 C -> 85 C: exp(Ea/k * (1/298.15 - 1/358.15)) ~ 26.2;
  // plus the 0.5 V overdrive factor e^1 ~ 2.72 at the preset point.
  EXPECT_NEAR(acceleration_factor({85.0, 5.0}), 26.2, 0.5);
  EXPECT_NEAR(acceleration_factor(accelerated_conditions()), 26.2 * std::exp(1.0),
              2.0);
}

TEST(AccelerationFactor, RejectsBelowAbsoluteZero) {
  EXPECT_THROW(acceleration_factor({-300.0, 5.0}), InvalidArgument);
}

TEST(BtiAging, SkewedCellDriftsTowardBalance) {
  BtiAgingModel model(systematic_only(), kSigma);
  std::vector<double> v = {0.5, -0.5};  // strongly skewed both ways
  model.advance(v, kSigma, 24.0);
  EXPECT_LT(v[0], 0.5);
  EXPECT_GT(v[0], 0.0);  // does not overshoot
  EXPECT_GT(v[1], -0.5);
  EXPECT_LT(v[1], 0.0);
  // Symmetric magnitudes.
  EXPECT_NEAR(v[0], -v[1], 1e-9);
}

TEST(BtiAging, BalancedCellDoesNotDrift) {
  BtiAgingModel model(systematic_only(), kSigma);
  std::vector<double> v = {0.0};
  model.advance(v, kSigma, 24.0);
  EXPECT_NEAR(v[0], 0.0, 1e-12);
}

TEST(BtiAging, SelfLimitingNearBalance) {
  // A nearly balanced cell moves much less than a fully skewed one (the
  // paper's Section IV-D non-monotonicity discussion).
  BtiAgingModel model(systematic_only(), kSigma);
  std::vector<double> v = {0.5, 0.01 * kSigma};
  model.advance(v, kSigma, 24.0);
  const double skewed_shift = 0.5 - v[0];
  const double balanced_shift = 0.01 * kSigma - v[1];
  EXPECT_GT(skewed_shift, 20.0 * balanced_shift);
}

TEST(BtiAging, PowerLawKineticsSlowDown) {
  // Equal wall-time increments late in life must produce smaller shifts
  // than early ones (paper: monthly change larger at the start).
  BtiAgingModel model(systematic_only(), kSigma);
  std::vector<double> v = {1.0};
  model.advance(v, kSigma, 6.0);
  const double first_half_shift = 1.0 - v[0];
  const double mid = v[0];
  model.advance(v, kSigma, 6.0);
  const double second_half_shift = mid - v[0];
  EXPECT_GT(first_half_shift, 1.5 * second_half_shift);
}

TEST(BtiAging, StressMonthsAccumulateWithDuty) {
  AgingParams params = systematic_only();
  params.duty_cycle = 0.5;
  BtiAgingModel model(params, kSigma);
  std::vector<double> v = {0.1};
  model.advance(v, kSigma, 10.0);
  EXPECT_NEAR(model.stress_months(), 5.0, 1e-9);
}

TEST(BtiAging, AcceleratedConditionsAgeFaster) {
  BtiAgingModel nominal(systematic_only(), kSigma);
  BtiAgingModel stressed(systematic_only(), kSigma);
  std::vector<double> vn = {0.5};
  std::vector<double> vs = {0.5};
  nominal.advance(vn, kSigma, 1.0);
  stressed.advance(vs, kSigma, 1.0, accelerated_conditions());
  EXPECT_LT(vs[0], vn[0]);
  EXPECT_GT(stressed.stress_months(), 10.0 * nominal.stress_months());
}

TEST(BtiAging, NoiseFactorGrows) {
  AgingParams params;  // default: includes noise growth
  BtiAgingModel model(params, kSigma);
  EXPECT_DOUBLE_EQ(model.noise_factor(), 1.0);
  std::vector<double> v = {0.1};
  model.advance(v, kSigma, 24.0);
  EXPECT_GT(model.noise_factor(), 1.05);
  EXPECT_LT(model.noise_factor(), 1.5);
}

TEST(BtiAging, VariabilityIsDeterministicPerKey) {
  AgingParams params;
  params.amplitude_noise_units = 0.0;
  params.noise_growth_per_tau = 0.0;
  params.variability_noise_units = 0.1;
  BtiAgingModel a(params, kSigma, 123);
  BtiAgingModel b(params, kSigma, 123);
  BtiAgingModel c(params, kSigma, 124);
  std::vector<double> va(100, 0.0);
  std::vector<double> vb(100, 0.0);
  std::vector<double> vc(100, 0.0);
  a.advance(va, kSigma, 12.0);
  b.advance(vb, kSigma, 12.0);
  c.advance(vc, kSigma, 12.0);
  EXPECT_EQ(va, vb);
  EXPECT_NE(va, vc);
  // Roughly zero-mean random walk.
  double sum = 0.0;
  for (double x : va) {
    sum += x;
  }
  EXPECT_NEAR(sum / 100.0, 0.0, 0.05 * kSigma * 5);
}

TEST(BtiAging, ZeroMonthsIsNoOp) {
  BtiAgingModel model(AgingParams{}, kSigma);
  std::vector<double> v = {0.3};
  model.advance(v, kSigma, 0.0);
  EXPECT_DOUBLE_EQ(v[0], 0.3);
  EXPECT_DOUBLE_EQ(model.stress_months(), 0.0);
}

TEST(BtiAging, Validation) {
  AgingParams bad;
  bad.exponent = 0.0;
  EXPECT_THROW(BtiAgingModel(bad, kSigma), InvalidArgument);
  AgingParams bad2;
  bad2.duty_cycle = 1.5;
  EXPECT_THROW(BtiAgingModel(bad2, kSigma), InvalidArgument);
  AgingParams bad3;
  bad3.amplitude_noise_units = -1.0;
  EXPECT_THROW(BtiAgingModel(bad3, kSigma), InvalidArgument);
  EXPECT_THROW(BtiAgingModel(AgingParams{}, 0.0), InvalidArgument);

  BtiAgingModel model(AgingParams{}, kSigma);
  std::vector<double> v = {0.1};
  EXPECT_THROW(model.advance(v, kSigma, -1.0), InvalidArgument);
  EXPECT_THROW(model.advance(v, 0.0, 1.0), InvalidArgument);
}

TEST(BtiAging, PaperDutyCycleDefault) {
  // 3.8 s on / 5.4 s period from Fig. 3.
  EXPECT_NEAR(AgingParams{}.duty_cycle, 0.7037, 1e-3);
}

}  // namespace
}  // namespace pufaging
