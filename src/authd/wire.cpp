#include "authd/wire.hpp"

#include <cstdio>
#include <cstring>

#include "common/error.hpp"
#include "store/crc32c.hpp"

namespace pufaging::authd {
namespace {

void put_u16(std::string& out, std::uint16_t v) {
  for (int i = 0; i < 2; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(p[i]))
         << (8 * i);
  }
  return v;
}

/// Bounded cursor over one frame's payload; every shortfall is a
/// ParseError naming the payload offset it happened at.
class PayloadReader {
 public:
  PayloadReader(std::string_view bytes, const char* what)
      : bytes_(bytes), what_(what) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }

  std::uint16_t u16() {
    need(2);
    std::uint32_t v = 0;
    for (std::size_t i = 0; i < 2; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<std::uint8_t>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 2;
    return static_cast<std::uint16_t>(v);
  }

  std::uint32_t u32() {
    need(4);
    const std::uint32_t v = get_u32(bytes_.data() + pos_);
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    const std::uint64_t v = get_u64(bytes_.data() + pos_);
    pos_ += 8;
    return v;
  }

  void done() const {
    if (pos_ != bytes_.size()) {
      throw ParseError(std::string(what_) + ": " +
                       std::to_string(bytes_.size() - pos_) +
                       " trailing payload byte(s) at offset " +
                       std::to_string(pos_));
    }
  }

  std::size_t offset() const { return pos_; }

 private:
  void need(std::size_t n) const {
    if (bytes_.size() - pos_ < n) {
      throw ParseError(std::string(what_) + ": truncated payload (need " +
                       std::to_string(n) + " byte(s) at offset " +
                       std::to_string(pos_) + ", have " +
                       std::to_string(bytes_.size() - pos_) + ")");
    }
  }

  std::string_view bytes_;
  const char* what_;
  std::size_t pos_ = 0;
};

/// CRC-32C over everything after the magic and before the crc field,
/// then the payload: type|pad|request|len, payload.
std::uint32_t frame_crc(std::uint8_t type, std::uint64_t request_id,
                        std::string_view payload) {
  std::string covered;
  covered.reserve(16);
  covered.push_back(static_cast<char>(type));
  covered.append(3, '\0');
  put_u64(covered, request_id);
  put_u32(covered, static_cast<std::uint32_t>(payload.size()));
  return crc32c(payload, crc32c(covered));
}

}  // namespace

std::string encode_frame(MsgType type, std::uint64_t request_id,
                         std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    throw InvalidArgument("encode_frame: payload of " +
                          std::to_string(payload.size()) +
                          " bytes exceeds kMaxFramePayload");
  }
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  put_u32(out, kFrameMagic);
  out.push_back(static_cast<char>(type));
  out.append(3, '\0');
  put_u64(out, request_id);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, frame_crc(static_cast<std::uint8_t>(type), request_id,
                         payload));
  out.append(payload);
  return out;
}

std::string encode_auth_request(const AuthRequestMsg& msg) {
  std::string payload;
  payload.reserve(12 + msg.response.size() * 8);
  put_u64(payload, msg.device_id);
  put_u32(payload, static_cast<std::uint32_t>(msg.response.size()));
  for (const std::uint64_t word : msg.response) {
    put_u64(payload, word);
  }
  return encode_frame(MsgType::kAuthRequest, msg.request_id, payload);
}

std::string encode_auth_response(const AuthResponseMsg& msg) {
  std::string payload;
  payload.reserve(12);
  payload.push_back(static_cast<char>(msg.status));
  payload.push_back(static_cast<char>(msg.decision));
  put_u16(payload, 0);
  put_u64(payload, msg.retry_at_ns);
  return encode_frame(MsgType::kAuthResponse, msg.request_id, payload);
}

AuthRequestMsg parse_auth_request(const Frame& frame) {
  if (frame.type != MsgType::kAuthRequest) {
    throw ParseError("AuthRequest: frame type " +
                     std::to_string(static_cast<int>(frame.type)) +
                     " is not kAuthRequest");
  }
  PayloadReader r(frame.payload, "AuthRequest");
  AuthRequestMsg msg;
  msg.request_id = frame.request_id;
  msg.device_id = r.u64();
  const std::uint32_t words = r.u32();
  // The length bound already caps payloads at 64 KiB; this turns an
  // inconsistent count into a typed error before any allocation.
  if (static_cast<std::uint64_t>(words) * 8 + 12 != frame.payload.size()) {
    throw ParseError("AuthRequest: word count " + std::to_string(words) +
                     " disagrees with payload size " +
                     std::to_string(frame.payload.size()) + " at offset 8");
  }
  msg.response.reserve(words);
  for (std::uint32_t i = 0; i < words; ++i) {
    msg.response.push_back(r.u64());
  }
  r.done();
  return msg;
}

AuthResponseMsg parse_auth_response(const Frame& frame) {
  if (frame.type != MsgType::kAuthResponse) {
    throw ParseError("AuthResponse: frame type " +
                     std::to_string(static_cast<int>(frame.type)) +
                     " is not kAuthResponse");
  }
  PayloadReader r(frame.payload, "AuthResponse");
  AuthResponseMsg msg;
  msg.request_id = frame.request_id;
  const std::uint8_t status = r.u8();
  if (status > static_cast<std::uint8_t>(ResponseStatus::kDraining)) {
    throw ParseError("AuthResponse: unknown status " +
                     std::to_string(status) + " at offset 0");
  }
  msg.status = static_cast<ResponseStatus>(status);
  msg.decision = r.u8();
  if (r.u16() != 0) {
    throw ParseError("AuthResponse: non-zero pad at offset 2");
  }
  msg.retry_at_ns = r.u64();
  r.done();
  return msg;
}

void FrameReader::feed(std::string_view bytes) {
  if (poisoned_) {
    throw ParseError(poison_what_);
  }
  // Compact lazily: drop the parsed prefix before it outgrows one frame.
  if (pos_ > kFrameHeaderBytes + kMaxFramePayload) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  buffer_.append(bytes);
}

std::optional<Frame> FrameReader::next() {
  if (poisoned_) {
    throw ParseError(poison_what_);
  }
  const std::size_t avail = buffer_.size() - pos_;
  if (avail < kFrameHeaderBytes) {
    return std::nullopt;
  }
  const char* h = buffer_.data() + pos_;
  const std::uint32_t magic = get_u32(h);
  if (magic != kFrameMagic) {
    poison("frame: bad magic 0x" + [&] {
      char hex[9];
      std::snprintf(hex, sizeof hex, "%08x", magic);
      return std::string(hex);
    }(), consumed_);
  }
  const std::uint8_t type = static_cast<std::uint8_t>(h[4]);
  if (type != static_cast<std::uint8_t>(MsgType::kAuthRequest) &&
      type != static_cast<std::uint8_t>(MsgType::kAuthResponse)) {
    poison("frame: unknown type " + std::to_string(type), consumed_ + 4);
  }
  if (h[5] != 0 || h[6] != 0 || h[7] != 0) {
    poison("frame: non-zero pad", consumed_ + 5);
  }
  const std::uint64_t request_id = get_u64(h + 8);
  const std::uint32_t len = get_u32(h + 16);
  if (len > kMaxFramePayload) {
    poison("frame: payload length " + std::to_string(len) +
               " exceeds the " + std::to_string(kMaxFramePayload) +
               "-byte bound",
           consumed_ + 16);
  }
  const std::uint32_t crc = get_u32(h + 20);
  if (avail < kFrameHeaderBytes + len) {
    return std::nullopt;  // Payload still in flight.
  }
  const std::string_view payload(buffer_.data() + pos_ + kFrameHeaderBytes,
                                 len);
  const std::uint32_t expect = frame_crc(type, request_id, payload);
  if (crc != expect) {
    char detail[48];
    std::snprintf(detail, sizeof detail, "%08x, computed 0x%08x)", crc,
                  expect);
    poison("frame: CRC mismatch (stored 0x" + std::string(detail),
           consumed_ + 20);
  }
  Frame frame;
  frame.type = static_cast<MsgType>(type);
  frame.request_id = request_id;
  frame.payload.assign(payload);
  pos_ += kFrameHeaderBytes + len;
  consumed_ += kFrameHeaderBytes + len;
  return frame;
}

void FrameReader::poison(const std::string& what, std::uint64_t offset) {
  poisoned_ = true;
  poison_what_ = what + " at stream offset " + std::to_string(offset);
  throw ParseError(poison_what_);
}

const char* to_string(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kDecision:
      return "decision";
    case ResponseStatus::kRetryAfter:
      return "retry-after";
    case ResponseStatus::kShed:
      return "shed";
    case ResponseStatus::kDeadline:
      return "deadline";
    case ResponseStatus::kLockedOut:
      return "locked-out";
    case ResponseStatus::kRateLimited:
      return "rate-limited";
    case ResponseStatus::kDraining:
      return "draining";
  }
  return "unknown";
}

}  // namespace pufaging::authd
