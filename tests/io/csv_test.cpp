#include "io/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/error.hpp"

namespace pufaging {
namespace {

TEST(Csv, HeaderAndRows) {
  CsvWriter csv({"month", "wchd"});
  csv.add_row(std::vector<std::string>{"0", "0.0249"});
  csv.add_row(std::vector<double>{1.0, 0.0252});
  EXPECT_EQ(csv.row_count(), 2U);
  const std::string text = csv.to_string();
  EXPECT_EQ(text, "month,wchd\n0,0.0249\n1,0.0252\n");
}

TEST(Csv, QuotingRules) {
  CsvWriter csv({"a", "b"});
  csv.add_row(std::vector<std::string>{"has,comma", "has\"quote"});
  csv.add_row(std::vector<std::string>{"has\nnewline", "plain"});
  EXPECT_EQ(csv.to_string(),
            "a,b\n\"has,comma\",\"has\"\"quote\"\n\"has\nnewline\",plain\n");
}

TEST(Csv, ColumnCountEnforced) {
  CsvWriter csv({"a", "b"});
  EXPECT_THROW(csv.add_row(std::vector<std::string>{"1"}), InvalidArgument);
  EXPECT_THROW(csv.add_row(std::vector<std::string>{"1", "2", "3"}),
               InvalidArgument);
  EXPECT_THROW(CsvWriter({}), InvalidArgument);
}

TEST(Csv, SaveToFile) {
  CsvWriter csv({"x"});
  csv.add_row(std::vector<std::string>{"42"});
  const std::string path = ::testing::TempDir() + "pufaging_csv_test.csv";
  csv.save(path);
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "x\n42\n");
  std::remove(path.c_str());
  EXPECT_THROW(csv.save("/nonexistent_dir_xyz/file.csv"), Error);
}

}  // namespace
}  // namespace pufaging
