// Zero-copy reader of published MeasurementStore snapshots.
//
// The streaming analysis driver wants the fleet's reference patterns
// without booting a campaign or replaying a WAL: a published snapshot
// already holds one device line per board with its reference pattern in
// hex. This reader resolves the MANIFEST, maps the named snapshot blob
// through the Vfs::map_file seam — a real mmap on RealFs, a buffered read
// on any other Vfs (FaultFs keeps its kill-point accounting) — verifies
// the manifest's CRC-32C against the mapped bytes, and parses only the
// header and device lines out of the checkpoint JSONL.
//
// Corruption surfaces as StoreError(kCorrupt), exactly like
// MeasurementStore recovery: a torn manifest, a CRC mismatch (short map,
// medium rot) and a malformed device line are all protocol violations,
// not plain I/O failures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitvector.hpp"
#include "store/vfs.hpp"
#include "tilecol/layout.hpp"

namespace pufaging::tilecol {

/// Fleet references recovered from a published snapshot, sorted by device
/// id ascending — the order every fleet statistic is defined in.
struct FleetSnapshot {
  std::uint32_t generation = 0;
  std::uint64_t next_month = 0;
  std::size_t reference_bits = 0;
  std::vector<std::uint32_t> device_ids;
  std::vector<BitVector> references;
  /// True when the snapshot bytes were mmapped rather than copied.
  bool zero_copy = false;
};

/// Reads the fleet references out of the store at `dir`. Throws
/// StoreError(kIo) when no MANIFEST exists (nothing published yet) and
/// StoreError(kCorrupt) when the manifest, CRC or device lines are
/// damaged.
FleetSnapshot read_fleet_snapshot(Vfs& vfs, const std::string& dir);

/// Packs the snapshot's references into a fresh tile buffer at `shape`.
TileBuffer pack_snapshot(const FleetSnapshot& snapshot, TileShape shape);

}  // namespace pufaging::tilecol
