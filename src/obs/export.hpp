// Exporters for metrics snapshots and traces.
//
// Two formats each, matching the two consumers:
//  - JSON-lines (one self-describing JSON object per line): machine
//    consumption — CI artifacts, the nightly read-back job, ad-hoc jq.
//  - Aligned plain-text tables (io/table): a human skimming a campaign's
//    stderr.
//
// Both are pure functions of the snapshot/trace, so under the FakeClock
// the full output is byte-for-byte deterministic and golden-pinned by
// tests/obs/export_test.cpp.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pufaging::obs {

/// One JSON object per metric, sorted by name:
///   {"type":"counter","name":...,"value":N}
///   {"type":"gauge","name":...,"value":X}
///   {"type":"histogram","name":...,"count":N,"sum":N,"min":N,"max":N,
///    "mean":X,"p50":N,"p99":N,"buckets":[[lower_bound,count],...]}
/// Histogram buckets list only non-empty buckets as [lower bound, count].
std::string metrics_to_jsonl(const MetricsSnapshot& snapshot);

/// Human-readable tables (counters+gauges, then histograms).
std::string metrics_table(const MetricsSnapshot& snapshot);

/// One JSON object per finished span, in (start_ns, span_id) order:
///   {"type":"span","name":...,"id":N,"parent":N,"start_ns":N,"end_ns":N,
///    "duration_ns":N}
std::string trace_to_jsonl(const std::vector<SpanRecord>& spans);

/// Per-span-name aggregation: count, total/mean/max duration.
std::string trace_table(const std::vector<SpanRecord>& spans);

}  // namespace pufaging::obs
