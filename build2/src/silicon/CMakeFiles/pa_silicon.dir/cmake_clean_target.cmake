file(REMOVE_RECURSE
  "libpa_silicon.a"
)
