#include "store/vfs.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

namespace pufaging {

namespace {

[[noreturn]] void throw_errno(const std::string& op, const std::string& path) {
  const int err = errno;
  const StoreError::Kind kind =
      err == ENOSPC ? StoreError::Kind::kNoSpace : StoreError::Kind::kIo;
  throw StoreError(kind, op + " '" + path + "': " + std::strerror(err) +
                             " (errno " + std::to_string(err) + ")");
}

}  // namespace

MappedFile MappedFile::buffered(std::string bytes) {
  MappedFile f;
  f.buffer_ = std::move(bytes);
  return f;
}

MappedFile MappedFile::adopt_mapping(void* base, std::size_t len) {
  MappedFile f;
  f.base_ = base;
  f.len_ = len;
  return f;
}

void MappedFile::release() noexcept {
  if (base_ != nullptr) {
    ::munmap(base_, len_);
    base_ = nullptr;
    len_ = 0;
  }
}

MappedFile Vfs::map_file(const std::string& path) {
  return MappedFile::buffered(read_file(path));
}

void Vfs::write_all(FileId file, std::string_view data) {
  std::size_t done = 0;
  while (done < data.size()) {
    done += write_some(file, data.data() + done, data.size() - done);
  }
}

RealFs& RealFs::instance() {
  static RealFs fs;
  return fs;
}

void RealFs::create_dirs(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw StoreError(StoreError::Kind::kIo,
                     "create_dirs '" + dir + "': " + ec.message() +
                         " (error " + std::to_string(ec.value()) + ")");
  }
}

bool RealFs::exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec);
}

std::vector<std::string> RealFs::list_dir(const std::string& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) {
      names.push_back(entry.path().filename().string());
    }
  }
  if (ec) {
    throw StoreError(StoreError::Kind::kIo,
                     "list_dir '" + dir + "': " + ec.message() +
                         " (error " + std::to_string(ec.value()) + ")");
  }
  std::sort(names.begin(), names.end());
  return names;
}

void RealFs::rename(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    throw_errno("rename", from);
  }
}

void RealFs::remove(const std::string& path) {
  if (::unlink(path.c_str()) != 0) {
    throw_errno("remove", path);
  }
}

void RealFs::fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    throw_errno("fsync_dir open", dir);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    throw_errno("fsync_dir", dir);
  }
  ::close(fd);
}

Vfs::FileId RealFs::open_append(const std::string& path,
                                bool truncate_existing) {
  int flags = O_WRONLY | O_CREAT | O_APPEND;
  if (truncate_existing) {
    flags |= O_TRUNC;
  }
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    throw_errno("open", path);
  }
  {
    const std::lock_guard<std::mutex> lock(names_mutex_);
    names_[fd] = path;
  }
  return fd;
}

std::string RealFs::name_of(FileId file) {
  const std::lock_guard<std::mutex> lock(names_mutex_);
  const auto it = names_.find(file);
  return it != names_.end()
             ? it->second + " (fd " + std::to_string(file) + ")"
             : "fd " + std::to_string(file);
}

std::size_t RealFs::write_some(FileId file, const char* data,
                               std::size_t len) {
  const ::ssize_t n = ::write(file, data, len);
  if (n <= 0) {
    throw_errno("write", name_of(file));
  }
  return static_cast<std::size_t>(n);
}

void RealFs::fsync(FileId file) {
  if (::fsync(file) != 0) {
    throw_errno("fsync", name_of(file));
  }
}

void RealFs::close(FileId file) noexcept {
  ::close(file);
  const std::lock_guard<std::mutex> lock(names_mutex_);
  names_.erase(file);
}

std::uint64_t RealFs::file_size(const std::string& path) {
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(path, ec);
  if (ec) {
    throw StoreError(StoreError::Kind::kIo,
                     "file_size '" + path + "': " + ec.message() +
                         " (error " + std::to_string(ec.value()) + ")");
  }
  return static_cast<std::uint64_t>(size);
}

std::string RealFs::read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    // ifstream reports no error code of its own, but the underlying
    // open(2) leaves its errno behind.
    throw_errno("read_file open", path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    throw StoreError(StoreError::Kind::kIo,
                     "read_file: read failed for '" + path + "'");
  }
  return buffer.str();
}

void RealFs::truncate(const std::string& path, std::uint64_t size) {
  if (::truncate(path.c_str(), static_cast<::off_t>(size)) != 0) {
    throw_errno("truncate", path);
  }
}

MappedFile RealFs::map_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw_errno("map_file open", path);
  }
  struct ::stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw_errno("map_file fstat", path);
  }
  const auto len = static_cast<std::size_t>(st.st_size);
  if (len == 0) {
    // mmap of length 0 is EINVAL; an empty view needs no mapping.
    ::close(fd);
    return MappedFile::buffered(std::string());
  }
  void* base = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // The mapping outlives the descriptor.
  if (base == MAP_FAILED) {
    throw_errno("map_file mmap", path);
  }
  return MappedFile::adopt_mapping(base, len);
}

}  // namespace pufaging
