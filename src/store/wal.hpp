// CRC32C-framed, length-prefixed append-only record log (WAL).
//
// The campaign appends one small record per completed month instead of
// rewriting the whole checkpoint; a crash can only ever damage the tail
// of the log, and the recovery scan (`scan_wal`) detects a torn or
// corrupt tail and reports the longest valid prefix instead of aborting.
//
// Frame layout (all integers little-endian, byte-serialized — the log is
// portable across hosts):
//
//   magic   u32   'PWAL' (0x4C415750)
//   gen     u32   segment generation; stale-segment records never replay
//   seq     u32   record index within the generation, starting at 0
//   len     u32   payload byte count
//   crc     u32   CRC-32C over gen|seq|len|payload
//   payload len bytes
//
// The CRC covers the header fields after the magic, so a bit flip in the
// length (which would otherwise mis-frame every later record) is caught,
// and the generation/sequence cannot be forged by shuffling frames
// between segments.
//
// Sub-segment compaction: a generation's log is split into bounded
// sub-segments so a decade-scale run never replays (or rewrites the tail
// of) one unbounded file:
//
//   wal-GGGGGGGG.log      sub-segment 0 (the name the MANIFEST records)
//   wal-GGGGGGGG.1.log    sub-segment 1, opened when 0 reached the cap
//   wal-GGGGGGGG.N.log    ...
//
// Sequence numbers run across the whole generation, so recovery replays
// the sub-segments in index order as one logical log; a roll fsyncs the
// finished sub-segment first, so only the *last* sub-segment can ever be
// torn by a crash.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "store/vfs.hpp"

namespace pufaging {

/// Hard upper bound on one record; a "length" beyond it is corruption,
/// not a huge record.
constexpr std::uint32_t kMaxWalRecordBytes = 1U << 26;  // 64 MiB

/// File name of one WAL sub-segment ("wal-GGGGGGGG.log" for index 0,
/// "wal-GGGGGGGG.N.log" beyond).
std::string wal_segment_name(std::uint32_t generation,
                             std::uint32_t segment_index);

/// Serializes one frame.
std::string encode_wal_frame(std::uint32_t generation, std::uint32_t sequence,
                             std::string_view payload);

/// Result of scanning a WAL image.
struct WalScanResult {
  /// Payloads of every valid record, in append order.
  std::vector<std::string> payloads;
  /// Byte length of the valid prefix (where a recovery truncate cuts).
  std::uint64_t valid_bytes = 0;
  /// True when bytes beyond the valid prefix existed (torn or corrupt
  /// tail — the difference is invisible and irrelevant after a crash).
  bool torn_tail = false;
};

/// Scans a raw WAL image: walks frames from the start, verifies magic,
/// bounds, CRC, generation and sequence continuity (sequences start at
/// `start_sequence` — non-zero when the image is a later sub-segment),
/// and stops at the first frame that fails — everything before it is the
/// valid prefix. Total function: never throws on any input bytes.
WalScanResult scan_wal(std::string_view image, std::uint32_t generation,
                       std::uint32_t start_sequence = 0);

/// Tuning and observability knobs of a WalWriter.
struct WalWriterOptions {
  /// Appends per fsync (fsync batching); clamped to >= 1.
  std::size_t fsync_every = 1;
  /// Sub-segment size cap in bytes; an append that would push the current
  /// sub-segment past the cap rolls to the next one first. 0 = unbounded
  /// (a single segment per generation, the pre-compaction layout).
  std::uint64_t segment_cap_bytes = 0;
  /// Optional metrics sink (wal.appends, wal.append_bytes, wal.fsyncs,
  /// wal.fsync_ns, wal.segment_rolls); null = no instrumentation.
  obs::MetricsRegistry* metrics = nullptr;
  /// Clock for fsync latency; null = the real monotonic clock.
  obs::MonotonicClock* clock = nullptr;
};

/// Appends frames to a generation's WAL sub-segments through the Vfs with
/// batched fsync.
///
/// Durability contract: a record is guaranteed to survive a power cut
/// only after the fsync that covers it (`fsync_every` appends, an
/// explicit `flush`, a sub-segment roll — which flushes the finished
/// sub-segment before opening the next — or `close`). Records written but
/// not yet fsynced may be lost or torn — the recovery scan turns either
/// into "that record never happened", which the deterministic campaign
/// simply recomputes.
///
/// Failure handling: if an append fails mid-frame (ENOSPC half-way
/// through a record), the writer rolls the file back to the last frame
/// boundary so the on-disk log stays well-formed; if even the rollback
/// fails the writer poisons itself and every later append raises
/// StoreError rather than risk interleaving garbage.
class WalWriter {
 public:
  WalWriter(Vfs& vfs, std::string dir, std::uint32_t generation,
            std::uint32_t segment_index, std::uint32_t next_sequence,
            std::uint64_t segment_bytes, WalWriterOptions opts = {});

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record; rolls the sub-segment when the cap is reached
  /// and fsyncs when the batch is due.
  void append(std::string_view payload);

  /// Fsyncs any appends not yet covered by a batch fsync.
  void flush();

  /// Clean shutdown: flushes the unsynced frame tail, then closes the
  /// file. A power cut immediately after close() loses zero frames.
  /// Appending after close() is an error.
  void close();

  std::uint32_t next_sequence() const { return sequence_; }
  std::uint32_t segment_index() const { return segment_index_; }
  /// Bytes in the current (last) sub-segment.
  std::uint64_t segment_bytes() const { return segment_bytes_; }

 private:
  void roll_segment();

  Vfs& vfs_;
  std::string dir_;
  std::string path_;
  VfsFile file_;
  std::uint32_t generation_;
  std::uint32_t segment_index_;
  std::uint32_t sequence_;
  std::uint64_t segment_bytes_;
  WalWriterOptions opts_;
  std::size_t unsynced_ = 0;
  bool poisoned_ = false;
  bool closed_ = false;
};

}  // namespace pufaging
