#include "silicon/powerup.hpp"

#include "common/error.hpp"
#include "common/math.hpp"

namespace pufaging {

void PowerUpSampler::rebuild(std::span<const double> mismatch,
                             double noise_sigma) {
  if (noise_sigma <= 0.0) {
    throw InvalidArgument("PowerUpSampler::rebuild: noise sigma must be > 0");
  }
  thresholds_.resize(mismatch.size());
  probabilities_.resize(mismatch.size());
  const double inv_sigma = 1.0 / noise_sigma;
  for (std::size_t i = 0; i < mismatch.size(); ++i) {
    const double p = normal_cdf(mismatch[i] * inv_sigma);
    probabilities_[i] = p;
    thresholds_[i] = bernoulli_threshold(p);
  }
}

void PowerUpSampler::sample(BitVector& out, Xoshiro256StarStar& rng) const {
  if (thresholds_.empty()) {
    throw Error("PowerUpSampler::sample: rebuild() not called");
  }
  if (out.size() != thresholds_.size()) {
    out = BitVector(thresholds_.size());
  }
  for (std::size_t i = 0; i < thresholds_.size(); ++i) {
    out.set(i, rng.next() < thresholds_[i]);
  }
}

BitVector PowerUpSampler::sample(Xoshiro256StarStar& rng) const {
  BitVector out(thresholds_.size());
  sample(out, rng);
  return out;
}

void PowerUpSampler::sample_prefix(BitVector& out, std::size_t count,
                                   Xoshiro256StarStar& rng) const {
  if (count > thresholds_.size()) {
    throw InvalidArgument("PowerUpSampler::sample_prefix: count too large");
  }
  if (out.size() != count) {
    out = BitVector(count);
  }
  for (std::size_t i = 0; i < count; ++i) {
    out.set(i, rng.next() < thresholds_[i]);
  }
}

}  // namespace pufaging
