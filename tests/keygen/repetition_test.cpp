#include "keygen/repetition.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace pufaging {
namespace {

TEST(Repetition, Parameters) {
  RepetitionCode code(5);
  EXPECT_EQ(code.block_length(), 5U);
  EXPECT_EQ(code.message_length(), 1U);
  EXPECT_EQ(code.correctable(), 2U);
  EXPECT_EQ(code.name(), "repetition(5,1)");
}

TEST(Repetition, RejectsEvenOrZeroLength) {
  EXPECT_THROW(RepetitionCode(0), InvalidArgument);
  EXPECT_THROW(RepetitionCode(4), InvalidArgument);
  EXPECT_NO_THROW(RepetitionCode(1));
}

TEST(Repetition, EncodeExpandsBit) {
  RepetitionCode code(3);
  BitVector one(1);
  one.set(0, true);
  EXPECT_EQ(code.encode(one).to_string(), "111");
  EXPECT_EQ(code.encode(BitVector(1)).to_string(), "000");
  EXPECT_THROW(code.encode(BitVector(2)), InvalidArgument);
}

TEST(Repetition, MajorityDecoding) {
  RepetitionCode code(5);
  const DecodeResult r = code.decode(BitVector::from_string("11010"));
  EXPECT_TRUE(r.success);
  EXPECT_TRUE(r.message.get(0));
  EXPECT_EQ(r.corrected, 2U);
  const DecodeResult r0 = code.decode(BitVector::from_string("01000"));
  EXPECT_FALSE(r0.message.get(0));
  EXPECT_EQ(r0.corrected, 1U);
  EXPECT_THROW(code.decode(BitVector(4)), InvalidArgument);
}

// Property: any error pattern of weight <= t decodes correctly.
class RepetitionErrors
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(RepetitionErrors, CorrectsUpToCapacity) {
  const auto [n, errors] = GetParam();
  RepetitionCode code(n);
  ASSERT_LE(errors, code.correctable());
  Xoshiro256StarStar rng(n * 31 + errors);
  for (int trial = 0; trial < 50; ++trial) {
    BitVector message(1);
    message.set(0, rng.bernoulli(0.5));
    BitVector word = code.encode(message);
    // Flip `errors` distinct random positions.
    std::vector<std::size_t> positions;
    while (positions.size() < errors) {
      const std::size_t p = rng.below(n);
      if (std::find(positions.begin(), positions.end(), p) ==
          positions.end()) {
        positions.push_back(p);
        word.flip(p);
      }
    }
    const DecodeResult r = code.decode(word);
    EXPECT_TRUE(r.success);
    EXPECT_EQ(r.message.get(0), message.get(0));
    EXPECT_EQ(r.corrected, errors);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RepetitionErrors,
    ::testing::Values(std::make_tuple(3U, 1U), std::make_tuple(5U, 2U),
                      std::make_tuple(7U, 3U), std::make_tuple(9U, 4U),
                      std::make_tuple(11U, 5U), std::make_tuple(15U, 7U)));

}  // namespace
}  // namespace pufaging
