#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace pufaging {

double mean(std::span<const double> xs) {
  if (xs.empty()) {
    throw InvalidArgument("mean: empty sample");
  }
  double sum = 0.0;
  for (double x : xs) {
    sum += x;
  }
  return sum / static_cast<double>(xs.size());
}

double sample_stddev(std::span<const double> xs) {
  if (xs.size() < 2) {
    return 0.0;
  }
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) {
    ss += (x - m) * (x - m);
  }
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double median(std::span<const double> xs) {
  if (xs.empty()) {
    throw InvalidArgument("median: empty sample");
  }
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  if (n % 2 == 1) {
    return sorted[n / 2];
  }
  return 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

SampleSummary summarize(std::span<const double> xs) {
  if (xs.empty()) {
    throw InvalidArgument("summarize: empty sample");
  }
  SampleSummary s;
  s.count = xs.size();
  s.mean = mean(xs);
  s.stddev = sample_stddev(xs);
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  s.median = median(xs);
  return s;
}

double geometric_monthly_change(double start, double end, std::size_t steps) {
  if (start <= 0.0 || end <= 0.0) {
    throw InvalidArgument("geometric_monthly_change: values must be positive");
  }
  if (steps == 0) {
    throw InvalidArgument("geometric_monthly_change: steps must be > 0");
  }
  return std::pow(end / start, 1.0 / static_cast<double>(steps)) - 1.0;
}

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  if (count_ == 0) {
    throw InvalidArgument("RunningStats::mean: no samples");
  }
  return mean_;
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  if (count_ == 0) {
    throw InvalidArgument("RunningStats::min: no samples");
  }
  return min_;
}

double RunningStats::max() const {
  if (count_ == 0) {
    throw InvalidArgument("RunningStats::max: no samples");
  }
  return max_;
}

}  // namespace pufaging
