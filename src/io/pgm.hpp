// Bitmap writers for the start-up pattern visualization (paper Fig. 4).
#pragma once

#include <string>

#include "common/bitvector.hpp"

namespace pufaging {

/// Renders a bit vector as a binary PGM (P5) image of the given width;
/// ones are black (like the paper's figure), zeros white. The last row is
/// padded with white. Returns the PGM file contents.
std::string bits_to_pgm(const BitVector& bits, std::size_t width);

/// Saves `bits_to_pgm` output to a file; throws Error on I/O failure.
void save_pgm(const BitVector& bits, std::size_t width,
              const std::string& path);

/// Renders a downsampled ASCII view: each character covers a `cell_w` x
/// `cell_h` block of bits and shades by the block's ones-density using the
/// ramp " .:-=+*#%@".
std::string bits_to_ascii(const BitVector& bits, std::size_t width,
                          std::size_t cell_w = 4, std::size_t cell_h = 8);

}  // namespace pufaging
