#include "keygen/bch.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace pufaging {
namespace {

BitVector random_message(std::size_t k, Xoshiro256StarStar& rng) {
  BitVector m(k);
  for (std::size_t i = 0; i < k; ++i) {
    m.set(i, rng.bernoulli(0.5));
  }
  return m;
}

BitVector with_errors(const BitVector& word, std::size_t errors,
                      Xoshiro256StarStar& rng) {
  BitVector w = word;
  std::vector<std::size_t> positions;
  while (positions.size() < errors) {
    const std::size_t p = rng.below(word.size());
    if (std::find(positions.begin(), positions.end(), p) == positions.end()) {
      positions.push_back(p);
      w.flip(p);
    }
  }
  return w;
}

TEST(Bch, TextbookParameters) {
  // Classic (n, k, t) triples from Lin & Costello Table 6.1.
  struct Expected {
    unsigned m;
    std::size_t t;
    std::size_t k;
  };
  const Expected cases[] = {
      {4, 1, 11}, {4, 2, 7},  {4, 3, 5},   {5, 1, 26},  {5, 2, 21},
      {5, 3, 16}, {6, 1, 57}, {6, 2, 51},  {7, 1, 120}, {7, 2, 113},
      {8, 1, 247}, {8, 2, 239}, {8, 9, 187}, {8, 18, 131}};
  for (const Expected& e : cases) {
    BchCode code(e.m, e.t);
    EXPECT_EQ(code.block_length(), (std::size_t{1} << e.m) - 1);
    EXPECT_EQ(code.message_length(), e.k)
        << "BCH m=" << e.m << " t=" << e.t;
    EXPECT_EQ(code.correctable(), e.t);
  }
}

TEST(Bch, GeneratorForHamming15_11) {
  // BCH(15, 11, t=1) is the Hamming code with g(x) = x^4 + x + 1.
  BchCode code(4, 1);
  const std::vector<std::uint8_t> expected = {1, 1, 0, 0, 1};
  EXPECT_EQ(code.generator(), expected);
}

TEST(Bch, RejectsExcessiveT) {
  EXPECT_THROW(BchCode(4, 8), InvalidArgument);
  EXPECT_THROW(BchCode(4, 0), InvalidArgument);
}

TEST(Bch, SystematicEncode) {
  BchCode code(5, 2);  // (31, 21)
  Xoshiro256StarStar rng(8);
  const BitVector m = random_message(code.message_length(), rng);
  const BitVector w = code.encode(m);
  EXPECT_EQ(w.size(), 31U);
  // Message occupies the top k coefficients.
  for (std::size_t i = 0; i < code.message_length(); ++i) {
    EXPECT_EQ(w.get(31 - 21 + i), m.get(i));
  }
  EXPECT_THROW(code.encode(BitVector(20)), InvalidArgument);
}

TEST(Bch, CleanRoundTrip) {
  for (unsigned m : {4U, 5U, 6U, 8U}) {
    BchCode code(m, 2);
    Xoshiro256StarStar rng(m);
    for (int t = 0; t < 20; ++t) {
      const BitVector msg = random_message(code.message_length(), rng);
      const DecodeResult r = code.decode(code.encode(msg));
      ASSERT_TRUE(r.success);
      EXPECT_EQ(r.message, msg);
      EXPECT_EQ(r.corrected, 0U);
    }
  }
  EXPECT_THROW(BchCode(4, 1).decode(BitVector(14)), InvalidArgument);
}

TEST(Bch, EncodedWordsAreCodewords) {
  // All-zero syndrome <=> decode reports zero corrections.
  BchCode code(6, 3);
  Xoshiro256StarStar rng(9);
  for (int t = 0; t < 10; ++t) {
    const BitVector msg = random_message(code.message_length(), rng);
    EXPECT_EQ(code.decode(code.encode(msg)).corrected, 0U);
  }
}

struct BchCase {
  unsigned m;
  std::size_t t;
  std::size_t errors;
};

class BchErrors : public ::testing::TestWithParam<BchCase> {};

TEST_P(BchErrors, CorrectsUpToCapacity) {
  const BchCase c = GetParam();
  BchCode code(c.m, c.t);
  ASSERT_LE(c.errors, code.correctable());
  Xoshiro256StarStar rng(c.m * 1000 + c.t * 10 + c.errors);
  const int trials = code.block_length() > 100 ? 15 : 40;
  for (int trial = 0; trial < trials; ++trial) {
    const BitVector msg = random_message(code.message_length(), rng);
    const BitVector w = with_errors(code.encode(msg), c.errors, rng);
    const DecodeResult r = code.decode(w);
    ASSERT_TRUE(r.success) << "m=" << c.m << " t=" << c.t
                           << " errors=" << c.errors;
    EXPECT_EQ(r.message, msg);
    EXPECT_EQ(r.corrected, c.errors);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BchErrors,
    ::testing::Values(BchCase{4, 2, 1}, BchCase{4, 2, 2}, BchCase{4, 3, 3},
                      BchCase{5, 3, 2}, BchCase{5, 3, 3}, BchCase{6, 4, 4},
                      BchCase{7, 5, 5}, BchCase{8, 8, 8}, BchCase{8, 18, 18},
                      BchCase{8, 18, 7}));

TEST(Bch, BeyondCapacityIsDetectedOrWrongButNeverCrashes) {
  BchCode code(5, 2);
  Xoshiro256StarStar rng(10);
  int detected = 0;
  const int trials = 60;
  for (int t = 0; t < trials; ++t) {
    const BitVector msg = random_message(code.message_length(), rng);
    const BitVector w = with_errors(code.encode(msg), 5, rng);
    const DecodeResult r = code.decode(w);
    if (!r.success) {
      ++detected;
    }
  }
  // Most weight-5 patterns on a t=2 code land between spheres.
  EXPECT_GT(detected, trials / 4);
}

}  // namespace
}  // namespace pufaging
