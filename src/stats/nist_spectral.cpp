// SP 800-22 tests 2.6 (spectral / DFT) and 2.7 (non-overlapping template).
#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"
#include "stats/fft.hpp"
#include "stats/nist.hpp"

namespace pufaging {

NistResult nist_spectral(const BitVector& bits) {
  NistResult result;
  result.name = "spectral";
  // Truncate to a power of two for the radix-2 transform.
  std::size_t n = 1;
  while (n * 2 <= bits.size()) {
    n *= 2;
  }
  if (n < 1024) {
    result.applicable = false;
    return result;
  }
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = bits.get(i) ? 1.0 : -1.0;
  }
  const auto spectrum = fft_real(x);

  const double nn = static_cast<double>(n);
  // 95% peak threshold.
  const double threshold = std::sqrt(std::log(1.0 / 0.05) * nn);
  const std::size_t half = n / 2;
  std::size_t below = 0;
  for (std::size_t i = 0; i < half; ++i) {
    if (std::abs(spectrum[i]) < threshold) {
      ++below;
    }
  }
  const double expected = 0.95 * static_cast<double>(half);
  const double d = (static_cast<double>(below) - expected) /
                   std::sqrt(nn * 0.95 * 0.05 / 4.0);
  result.statistic = d;
  result.p_value = std::erfc(std::fabs(d) / std::sqrt(2.0));
  return result;
}

NistResult nist_overlapping_template(const BitVector& bits) {
  NistResult result;
  result.name = "overlapping_template";
  // SP 800-22 2.8 with the standard parameters: m = 9 (all-ones
  // template), M = 1032-bit blocks, K = 5 categories; the category
  // probabilities below are the reference values for eta = 2*lambda
  // with lambda = (M - m + 1) / 2^m.
  constexpr std::size_t kM = 9;
  constexpr std::size_t kBlockLen = 1032;
  constexpr double kPi[6] = {0.364091, 0.185659, 0.139381,
                             0.100571, 0.070432, 0.139865};
  const std::size_t blocks = bits.size() / kBlockLen;
  if (blocks < 128) {  // spec: n >= 10^6 recommended; gate at ~131k bits
    result.applicable = false;
    return result;
  }
  std::size_t v[6] = {0, 0, 0, 0, 0, 0};
  for (std::size_t b = 0; b < blocks; ++b) {
    std::size_t count = 0;
    std::size_t run = 0;
    for (std::size_t i = 0; i < kBlockLen; ++i) {
      if (bits.get(b * kBlockLen + i)) {
        ++run;
        if (run >= kM) {
          ++count;  // overlapping: every window ending here matches
        }
      } else {
        run = 0;
      }
    }
    ++v[std::min<std::size_t>(count, 5)];
  }
  double chi2 = 0.0;
  const double n = static_cast<double>(blocks);
  for (int i = 0; i < 6; ++i) {
    const double expected = n * kPi[i];
    chi2 += (static_cast<double>(v[i]) - expected) *
            (static_cast<double>(v[i]) - expected) / expected;
  }
  result.statistic = chi2;
  result.p_value = gamma_q(2.5, chi2 / 2.0);  // 5 dof
  return result;
}

NistResult nist_non_overlapping_template(const BitVector& bits,
                                         const BitVector& templ) {
  NistResult result;
  result.name = "non_overlapping_template";
  // Default template: the aperiodic 9-bit pattern 000000001.
  BitVector pattern = templ;
  if (pattern.empty()) {
    pattern = BitVector(9);
    pattern.set(8, true);
  }
  const std::size_t m = pattern.size();
  constexpr std::size_t kBlocks = 8;
  const std::size_t block_len = bits.size() / kBlocks;
  if (m < 2 || block_len < m * 10 || bits.size() < 1000) {
    result.applicable = false;
    return result;
  }

  const double m_d = static_cast<double>(m);
  const double block_d = static_cast<double>(block_len);
  const double mean = (block_d - m_d + 1.0) / std::pow(2.0, m_d);
  const double variance =
      block_d * (1.0 / std::pow(2.0, m_d) -
                 (2.0 * m_d - 1.0) / std::pow(2.0, 2.0 * m_d));
  if (variance <= 0.0) {
    result.applicable = false;
    return result;
  }

  double chi2 = 0.0;
  for (std::size_t b = 0; b < kBlocks; ++b) {
    std::size_t count = 0;
    std::size_t i = 0;
    while (i + m <= block_len) {
      bool match = true;
      for (std::size_t j = 0; j < m; ++j) {
        if (bits.get(b * block_len + i + j) != pattern.get(j)) {
          match = false;
          break;
        }
      }
      if (match) {
        ++count;
        i += m;  // non-overlapping: skip past the match
      } else {
        ++i;
      }
    }
    const double diff = static_cast<double>(count) - mean;
    chi2 += diff * diff / variance;
  }
  result.statistic = chi2;
  result.p_value = gamma_q(static_cast<double>(kBlocks) / 2.0, chi2 / 2.0);
  return result;
}

}  // namespace pufaging
