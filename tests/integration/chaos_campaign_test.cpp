// The chaos campaign's contracts: an all-zero fault plan is bit-identical
// to a fault-free run, a non-zero plan is bit-identical at any thread
// count (fault draws live in their own per-(device, month) streams), and
// a permanent board dropout degrades the analysis gracefully instead of
// aborting the campaign.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/summary.hpp"
#include "common/error.hpp"
#include "testbed/campaign.hpp"

namespace pufaging {
namespace {

CampaignConfig small_config(std::size_t threads) {
  CampaignConfig config;
  config.months = 3;
  config.measurements_per_month = 50;
  config.threads = threads;
  return config;
}

FaultPlan noisy_plan() {
  FaultPlan plan;
  plan.i2c_corrupt_rate = 0.02;
  plan.i2c_drop_rate = 0.01;
  plan.i2c_nak_rate = 0.01;
  plan.hang_rate = 0.002;
  plan.hang_cycles = 4;
  plan.reset_rate = 0.002;
  plan.brownout_rate = 0.01;
  plan.stuck_relay_rate = 0.002;
  return plan;
}

void expect_series_identical(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.references.size(), b.references.size());
  for (std::size_t d = 0; d < a.references.size(); ++d) {
    EXPECT_EQ(a.references[d], b.references[d]) << "reference of device " << d;
  }
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t m = 0; m < a.series.size(); ++m) {
    const FleetMonthMetrics& x = a.series[m];
    const FleetMonthMetrics& y = b.series[m];
    // Exact comparisons on purpose: the guarantee is bit-identity.
    EXPECT_EQ(x.wchd_avg, y.wchd_avg) << "month " << m;
    EXPECT_EQ(x.wchd_wc, y.wchd_wc) << "month " << m;
    EXPECT_EQ(x.fhw_avg, y.fhw_avg) << "month " << m;
    EXPECT_EQ(x.stable_avg, y.stable_avg) << "month " << m;
    EXPECT_EQ(x.noise_entropy_avg, y.noise_entropy_avg) << "month " << m;
    EXPECT_EQ(x.bchd_avg, y.bchd_avg) << "month " << m;
    EXPECT_EQ(x.puf_entropy, y.puf_entropy) << "month " << m;
    EXPECT_EQ(x.coverage, y.coverage) << "month " << m;
    EXPECT_EQ(x.devices_reporting, y.devices_reporting) << "month " << m;
    EXPECT_EQ(x.degraded, y.degraded) << "month " << m;
    ASSERT_EQ(x.devices.size(), y.devices.size()) << "month " << m;
    for (std::size_t d = 0; d < x.devices.size(); ++d) {
      EXPECT_EQ(x.devices[d].device_id, y.devices[d].device_id);
      EXPECT_EQ(x.devices[d].measurement_count,
                y.devices[d].measurement_count);
      EXPECT_EQ(x.devices[d].wchd_mean, y.devices[d].wchd_mean);
      EXPECT_EQ(x.devices[d].noise_entropy, y.devices[d].noise_entropy);
      EXPECT_EQ(x.devices[d].first_pattern, y.devices[d].first_pattern);
    }
  }
}

TEST(ChaosCampaign, AllZeroPlanBitIdenticalToFaultFree) {
  const CampaignResult clean = run_campaign(small_config(2));
  CampaignConfig zero = small_config(2);
  zero.faults = FaultPlan{};  // explicit, still all-zero
  const CampaignResult with_plan = run_campaign(zero);
  expect_series_identical(clean, with_plan);
  EXPECT_TRUE(with_plan.health.months.empty());
  EXPECT_TRUE(with_plan.completed);
}

TEST(ChaosCampaign, NoisyPlanBitIdenticalAcrossThreadCounts) {
  CampaignConfig serial_cfg = small_config(1);
  serial_cfg.faults = noisy_plan();
  const CampaignResult serial = run_campaign(serial_cfg);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    CampaignConfig parallel_cfg = small_config(threads);
    parallel_cfg.faults = noisy_plan();
    const CampaignResult parallel = run_campaign(parallel_cfg);
    expect_series_identical(serial, parallel);
    ASSERT_EQ(serial.health.months.size(), parallel.health.months.size());
    for (std::size_t m = 0; m < serial.health.months.size(); ++m) {
      EXPECT_EQ(serial.health.months[m].crc_retries,
                parallel.health.months[m].crc_retries);
      EXPECT_EQ(serial.health.months[m].timeouts,
                parallel.health.months[m].timeouts);
      EXPECT_EQ(serial.health.months[m].frames_lost,
                parallel.health.months[m].frames_lost);
      EXPECT_EQ(serial.health.months[m].measurements_dropped,
                parallel.health.months[m].measurements_dropped);
      EXPECT_EQ(serial.health.months[m].coverage,
                parallel.health.months[m].coverage);
    }
  }
}

TEST(ChaosCampaign, NoisyPlanProducesHealthLedger) {
  CampaignConfig config = small_config(4);
  config.faults = noisy_plan();
  const CampaignResult result = run_campaign(config);
  // One health entry per monthly snapshot.
  ASSERT_EQ(result.health.months.size(), config.months + 1);
  // At 2% corruption over 16 devices x 50 slots x 4 months, retries are a
  // statistical certainty.
  EXPECT_GT(result.health.total_crc_retries(), 0U);
  EXPECT_GT(result.health.total_timeouts(), 0U);
  EXPECT_TRUE(result.health.degraded() ||
              result.health.total_measurements_dropped() == 0);
}

TEST(ChaosCampaign, PermanentDropoutDegradesGracefully) {
  // Board 5 dies for good at month 2 of a 4-month campaign: the campaign
  // must complete, quarantine the board, and analyze the surviving 15
  // devices with honest coverage accounting.
  CampaignConfig config;
  config.months = 4;
  config.measurements_per_month = 50;
  config.threads = 4;
  config.faults.dropouts.push_back({5, 2});
  const CampaignResult result = run_campaign(config);
  EXPECT_TRUE(result.completed);
  ASSERT_EQ(result.series.size(), config.months + 1);
  ASSERT_EQ(result.health.months.size(), config.months + 1);

  for (std::size_t m = 0; m < 2; ++m) {
    EXPECT_EQ(result.series[m].devices.size(), 16U) << "month " << m;
    EXPECT_EQ(result.series[m].devices_reporting, 16U) << "month " << m;
    EXPECT_FALSE(result.series[m].degraded) << "month " << m;
    EXPECT_DOUBLE_EQ(result.series[m].coverage, 1.0) << "month " << m;
  }
  for (std::size_t m = 2; m <= config.months; ++m) {
    EXPECT_EQ(result.series[m].devices.size(), 15U) << "month " << m;
    EXPECT_EQ(result.series[m].devices_reporting, 15U) << "month " << m;
    EXPECT_EQ(result.series[m].devices_expected, 16U) << "month " << m;
    EXPECT_TRUE(result.series[m].degraded) << "month " << m;
    EXPECT_NEAR(result.series[m].coverage, 15.0 / 16.0, 1e-12)
        << "month " << m;
    // The dead board's metrics are gone, not zero-filled.
    for (const DeviceMonthMetrics& d : result.series[m].devices) {
      EXPECT_NE(d.device_id, 5U);
    }
    // Health: the dropped slots are accounted and the board is quarantined.
    EXPECT_EQ(result.health.months[m].measurements_dropped,
              config.measurements_per_month)
        << "month " << m;
    EXPECT_EQ(result.health.months[m].boards_reporting, 15U) << "month " << m;
  }
  EXPECT_GE(result.health.max_boards_quarantined(), 1U);
  EXPECT_TRUE(result.health.degraded());

  // The first two months still carry all 16 references.
  ASSERT_EQ(result.references.size(), 16U);
  for (const BitVector& ref : result.references) {
    EXPECT_FALSE(ref.empty());
  }
}

TEST(ChaosCampaign, DropoutFromMonthZeroNeverEstablishesReference) {
  CampaignConfig config;
  config.months = 1;
  config.measurements_per_month = 30;
  config.threads = 2;
  config.faults.dropouts.push_back({0, 0});
  const CampaignResult result = run_campaign(config);
  ASSERT_EQ(result.references.size(), 16U);
  EXPECT_TRUE(result.references[0].empty());
  EXPECT_FALSE(result.references[1].empty());
  for (const FleetMonthMetrics& m : result.series) {
    EXPECT_EQ(m.devices.size(), 15U);
    EXPECT_TRUE(m.degraded);
  }
}

TEST(ChaosCampaign, TotalBlackoutCompletesWithZeroCoverage) {
  // Worst case on the fault axis: every relay stuck, no board ever powers
  // up. The campaign must run to completion with well-defined zeroed
  // metrics (coverage 0, nothing NaN), not throw mid-analysis —
  // regression for the summary's geometric-change throwing on a dead
  // endpoint.
  CampaignConfig config = small_config(2);
  config.fleet.device_count = 4;
  config.faults.stuck_relay_rate = 1.0;
  const CampaignResult result = run_campaign(config);
  ASSERT_EQ(result.series.size(), config.months + 1);
  for (const FleetMonthMetrics& m : result.series) {
    EXPECT_EQ(m.devices_reporting, 0U);
    EXPECT_DOUBLE_EQ(m.coverage, 0.0);
    EXPECT_TRUE(m.degraded);
    EXPECT_FALSE(std::isnan(m.wchd_avg));
    EXPECT_FALSE(std::isnan(m.bchd_avg));
    EXPECT_FALSE(std::isnan(m.puf_entropy));
  }
  for (const BitVector& reference : result.references) {
    EXPECT_TRUE(reference.empty());  // no month-0 read-out ever arrived
  }
  EXPECT_EQ(result.health.total_measurements_dropped(),
            config.fleet.device_count * (config.months + 1) *
                config.measurements_per_month);
  EXPECT_TRUE(result.health.degraded());

  // The summary over the dead series renders "n/a", never NaN.
  const std::string rendered =
      render_summary_table(build_summary_table(result.series));
  EXPECT_NE(rendered.find("n/a"), std::string::npos);
  EXPECT_EQ(rendered.find("nan"), std::string::npos);
}

TEST(ChaosCampaign, InvalidPlanAndPolicyAreRejected) {
  CampaignConfig config = small_config(1);
  config.faults.i2c_drop_rate = 1.5;
  EXPECT_THROW(run_campaign(config), InvalidArgument);
  config = small_config(1);
  config.faults.i2c_drop_rate = 0.01;
  config.retry.quarantine_after = 0;
  EXPECT_THROW(run_campaign(config), InvalidArgument);
}

}  // namespace
}  // namespace pufaging
