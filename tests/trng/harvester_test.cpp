#include "trng/harvester.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "silicon/device_factory.hpp"

namespace pufaging {
namespace {

SramDevice device(std::uint32_t id = 0) {
  return make_device(paper_fleet_config(), id);
}

TEST(Harvester, SelectsOnlyUnstableCells) {
  SramDevice d = device();
  HarvesterConfig config;
  const CellSelection sel = characterize(d, config);
  EXPECT_FALSE(sel.cells.empty());
  // The paper: ~14% of cells are unstable at 1000 measurements; with the
  // narrower [0.1, 0.9] band expect a few percent of 8192.
  EXPECT_GT(sel.cells.size(), 100U);
  EXPECT_LT(sel.cells.size(), 2000U);
  // Every selected cell is analytically unstable-ish.
  for (std::uint32_t cell : sel.cells) {
    const double p = d.one_probability(cell);
    EXPECT_GT(p, 0.02) << "cell " << cell;
    EXPECT_LT(p, 0.98) << "cell " << cell;
  }
  EXPECT_GT(sel.estimated_min_entropy_per_bit, 0.1);
  EXPECT_LE(sel.estimated_min_entropy_per_bit, 1.0);
}

TEST(Harvester, SelectionIsSorted) {
  SramDevice d = device(1);
  const CellSelection sel = characterize(d, HarvesterConfig{});
  EXPECT_TRUE(std::is_sorted(sel.cells.begin(), sel.cells.end()));
}

TEST(Harvester, Validation) {
  SramDevice d = device(2);
  HarvesterConfig bad;
  bad.characterization_measurements = 1;
  EXPECT_THROW(characterize(d, bad), InvalidArgument);
  HarvesterConfig bad2;
  bad2.p_low = 0.9;
  bad2.p_high = 0.1;
  EXPECT_THROW(characterize(d, bad2), InvalidArgument);
}

TEST(Harvester, HarvestProducesRequestedBits) {
  SramDevice d = device(3);
  const CellSelection sel = characterize(d, HarvesterConfig{});
  const std::uint64_t before = d.measurement_count();
  const BitVector raw = harvest(d, sel, 5000);
  EXPECT_EQ(raw.size(), 5000U);
  // Power-ups consumed = ceil(5000 / cells_per_powerup).
  const std::uint64_t used = d.measurement_count() - before;
  EXPECT_EQ(used, (5000 + sel.cells.size() - 1) / sel.cells.size());
}

TEST(Harvester, RawStreamIsActuallyNoisy) {
  SramDevice d = device(4);
  const CellSelection sel = characterize(d, HarvesterConfig{});
  const BitVector a = harvest(d, sel, 4000);
  const BitVector b = harvest(d, sel, 4000);
  // Two consecutive harvests differ in a sizable fraction of bits.
  EXPECT_GT(fractional_hamming_distance(a, b), 0.05);
}

TEST(Harvester, EmptySelectionRejected) {
  SramDevice d = device(5);
  CellSelection empty;
  EXPECT_THROW(harvest(d, empty, 100), InvalidArgument);
}

}  // namespace
}  // namespace pufaging
