// Static per-cell mismatch of an SRAM array.
//
// Model (standard SRAM PUF generative model; Maes, CHES 2013 [18] of the
// paper): each 6T cell i carries a static mismatch parameter v_i — the
// effective threshold-voltage imbalance |Vth,P2 - Vth,P1| signed by which
// inverter is stronger — frozen at manufacturing by process variation.
// At power-up the cell resolves to 1 iff v_i + (electrical noise) > 0, so
// the one-probability of the cell is p_i = Phi(v_i / sigma_noise).
//
// Mismatch is measured in units of the process-variation sigma (sigma_pv
// == 1), which fixes the scale for the noise sigma and aging drift.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace pufaging {

/// Parameters of the manufacturing-time mismatch distribution.
struct PopulationParams {
  /// Mean mismatch of this device in sigma_pv units. Positive values bias
  /// the array toward power-up ones; the paper's devices show fractional
  /// Hamming weights of 60-70%, i.e. device_bias ~ Phi^-1(0.6..0.7).
  double device_bias = 0.325;

  /// Process-variation sigma (the unit scale; keep at 1.0).
  double sigma_pv = 1.0;

  /// Per-cell temperature-coefficient spread of the mismatch, in sigma_pv
  /// units per degree C: cell i's effective mismatch at temperature T is
  /// v_i + tc_i * (T - 25) with tc_i ~ N(0, tc_sigma_per_c). This is the
  /// classic V-shape of WCHD around the enrollment temperature (see [17]
  /// of the paper, which adapts the voltage ramp to fight exactly this
  /// temperature sensitivity).
  double tc_sigma_per_c = 1.2e-3;

  /// Spatial correlation of process variation: neighbour weight of the
  /// 3x3 smoothing kernel applied to the mismatch field (0 = i.i.d.).
  /// Real silicon shows short-range layout correlation (visible as the
  /// blotchy texture of the paper's Fig. 4); the kernel is renormalized
  /// so per-cell marginals stay exactly N(device_bias, sigma_pv) — none
  /// of the paper's metrics depend on the correlation, only the picture.
  double spatial_smoothing = 0.15;

  /// Row width of the physical array layout (bits per word line) used by
  /// the spatial kernel.
  std::size_t row_width = 128;
};

/// The frozen mismatch values of one SRAM array, plus the mutable aging
/// drift applied on top of them.
///
/// Mismatch is generated with a counter-based RNG addressed by
/// (device_key, cell index), so any cell's manufacturing value is
/// reproducible independent of construction order.
class CellPopulation {
 public:
  /// Generates `cell_count` cells for the device identified by `device_key`.
  CellPopulation(std::size_t cell_count, std::uint64_t device_key,
                 const PopulationParams& params);

  std::size_t size() const { return mismatch_.size(); }

  /// Current effective mismatch of cell i (manufacturing value plus
  /// accumulated aging drift) at the 25 C reference temperature.
  double mismatch(std::size_t i) const { return mismatch_[i]; }

  /// Manufacturing-time mismatch of cell i (before any aging).
  double pristine_mismatch(std::size_t i) const { return pristine_[i]; }

  /// Temperature coefficient of cell i (sigma_pv units per degree C).
  double temperature_coefficient(std::size_t i) const { return tc_[i]; }

  /// Effective mismatch of cell i at `temperature_c`.
  double mismatch_at(std::size_t i, double temperature_c) const {
    return mismatch_[i] + tc_[i] * (temperature_c - 25.0);
  }

  /// Mutable view of the effective mismatch values, for the aging model.
  std::span<double> mismatch_values() { return mismatch_; }
  std::span<const double> mismatch_values() const { return mismatch_; }

  /// Resets all cells to their manufacturing values (un-ages the device).
  void restore_pristine();

  const PopulationParams& params() const { return params_; }

 private:
  PopulationParams params_;
  std::vector<double> pristine_;
  std::vector<double> mismatch_;
  std::vector<double> tc_;
};

}  // namespace pufaging
