#include "keygen/fuzzy_extractor.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/error.hpp"
#include "keygen/concatenated.hpp"
#include "keygen/golay.hpp"
#include "keygen/repetition.hpp"
#include "silicon/device_factory.hpp"

namespace pufaging {
namespace {

BitVector random_bits(std::size_t n, std::uint64_t seed, double p = 0.627) {
  Xoshiro256StarStar rng(seed);
  BitVector v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v.set(i, rng.bernoulli(p));
  }
  return v;
}

std::shared_ptr<const BlockCode> golay() {
  return std::make_shared<GolayCode>();
}

TEST(FuzzyExtractor, Sizing) {
  FuzzyExtractor fx(golay());
  EXPECT_EQ(fx.response_bits(3), 72U);
  EXPECT_EQ(fx.secret_bits(3), 36U);
  EXPECT_THROW(FuzzyExtractor(nullptr), InvalidArgument);
}

TEST(FuzzyExtractor, CleanReconstruction) {
  FuzzyExtractor fx(golay());
  const BitVector response = random_bits(48, 20);
  Xoshiro256StarStar rng(21);
  BitVector secret;
  const HelperData helper = fx.enroll(response, 2, rng, secret);
  EXPECT_EQ(helper.code_offset.size(), 48U);
  EXPECT_EQ(secret.size(), 24U);
  const ReconstructResult r = fx.reconstruct(response, helper);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.message, secret);
  EXPECT_EQ(r.corrected, 0U);
}

TEST(FuzzyExtractor, ToleratesErrorsWithinCapacity) {
  FuzzyExtractor fx(golay());
  const BitVector response = random_bits(48, 22);
  Xoshiro256StarStar rng(23);
  BitVector secret;
  const HelperData helper = fx.enroll(response, 2, rng, secret);
  BitVector noisy = response;
  noisy.flip(0);
  noisy.flip(13);
  noisy.flip(23);  // 3 errors in block 0
  noisy.flip(25);  // 1 error in block 1
  const ReconstructResult r = fx.reconstruct(noisy, helper);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.message, secret);
  EXPECT_EQ(r.corrected, 4U);
}

TEST(FuzzyExtractor, DetectsOverload) {
  FuzzyExtractor fx(golay());
  const BitVector response = random_bits(24, 24);
  Xoshiro256StarStar rng(25);
  BitVector secret;
  const HelperData helper = fx.enroll(response, 1, rng, secret);
  BitVector noisy = response;
  for (std::size_t i = 0; i < 4; ++i) {
    noisy.flip(i);  // 4 errors: detected by incomplete decoding
  }
  EXPECT_FALSE(fx.reconstruct(noisy, helper).success);
}

TEST(FuzzyExtractor, WrongDeviceYieldsGarbageOrFailure) {
  FuzzyExtractor fx(golay());
  const BitVector response = random_bits(48, 26);
  Xoshiro256StarStar rng(27);
  BitVector secret;
  const HelperData helper = fx.enroll(response, 2, rng, secret);
  const BitVector other = random_bits(48, 9999);
  const ReconstructResult r = fx.reconstruct(other, helper);
  EXPECT_TRUE(!r.success || !(r.message == secret));
}

TEST(FuzzyExtractor, HelperDataMasksTheResponse) {
  // The code offset is response XOR codeword(s); with a uniform secret it
  // must not equal the response itself.
  FuzzyExtractor fx(golay());
  const BitVector response = random_bits(24, 28);
  Xoshiro256StarStar rng(29);
  BitVector secret;
  const HelperData helper = fx.enroll(response, 1, rng, secret);
  EXPECT_NE(helper.code_offset, response);
  // And XORing back the encoded secret reproduces the response exactly.
  GolayCode code;
  const BitVector codeword = code.encode(secret);
  BitVector reconstructed = helper.code_offset;
  reconstructed ^= codeword;
  EXPECT_EQ(reconstructed, response);
}

TEST(FuzzyExtractor, WorksWithConcatenatedCode) {
  auto code = std::make_shared<ConcatenatedCode>(
      std::make_shared<GolayCode>(), std::make_shared<RepetitionCode>(5));
  FuzzyExtractor fx(code);
  const BitVector response = random_bits(240, 30);
  Xoshiro256StarStar rng(31);
  BitVector secret;
  const HelperData helper = fx.enroll(response, 2, rng, secret);
  // 3% BER, the paper's end-of-life level.
  Xoshiro256StarStar noise(32);
  BitVector noisy = response;
  for (std::size_t i = 0; i < noisy.size(); ++i) {
    if (noise.bernoulli(0.03)) {
      noisy.flip(i);
    }
  }
  const ReconstructResult r = fx.reconstruct(noisy, helper);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.message, secret);
}

TEST(FuzzyExtractor, Validation) {
  FuzzyExtractor fx(golay());
  Xoshiro256StarStar rng(33);
  BitVector secret;
  EXPECT_THROW(fx.enroll(BitVector(24), 0, rng, secret), InvalidArgument);
  EXPECT_THROW(fx.enroll(BitVector(25), 1, rng, secret), InvalidArgument);
  HelperData helper;
  helper.code_offset = BitVector(24);
  EXPECT_THROW(fx.reconstruct(BitVector(23), helper), InvalidArgument);
  helper.code_offset = BitVector(23);
  EXPECT_THROW(fx.reconstruct(BitVector(23), helper), InvalidArgument);
}

TEST(FuzzyExtractor, RoundTripsUnderRealSiliconAging) {
  // End-to-end against the silicon model, the fleet-auth life cycle in
  // miniature: enroll on a device's pristine power-up window, then keep
  // reconstructing the same secret from fresh noisy reads as the device
  // ages one and two years. Fixed seeds make every read deterministic.
  FuzzyExtractor fx(golay());
  constexpr std::size_t kBlocks = 11;
  constexpr std::size_t kWindow = kBlocks * 24;

  SramDevice device = make_device(paper_fleet_config(), 3);
  const BitVector enroll_read = device.measure();
  ASSERT_GE(enroll_read.size(), kWindow);
  BitVector response(kWindow);
  for (std::size_t i = 0; i < kWindow; ++i) {
    response.set(i, enroll_read.get(i));
  }

  Xoshiro256StarStar rng(41);
  BitVector secret;
  const HelperData helper = fx.enroll(response, kBlocks, rng, secret);
  EXPECT_EQ(secret.size(), kBlocks * 12);

  std::size_t previous_corrected = 0;
  for (int year = 0; year < 3; ++year) {
    if (year > 0) {
      device.age_months(12.0);
    }
    const BitVector read = device.measure();
    BitVector noisy(kWindow);
    for (std::size_t i = 0; i < kWindow; ++i) {
      noisy.set(i, read.get(i));
    }
    const ReconstructResult r = fx.reconstruct(noisy, helper);
    ASSERT_TRUE(r.success) << "year " << year;
    EXPECT_EQ(r.message, secret) << "year " << year;
    if (year == 0) {
      previous_corrected = r.corrected;
    }
    if (year == 2) {
      // Two years of BTI drift must cost at least as many corrections as
      // the pristine re-read did.
      EXPECT_GE(r.corrected, previous_corrected);
    }
  }
}

TEST(DeriveKey, DeterministicAndContextSeparated) {
  const BitVector secret = random_bits(24, 34, 0.5);
  const auto k1 = derive_key(secret, "ctx-a", 16);
  const auto k2 = derive_key(secret, "ctx-a", 16);
  const auto k3 = derive_key(secret, "ctx-b", 16);
  EXPECT_EQ(k1.size(), 16U);
  EXPECT_EQ(k1, k2);
  EXPECT_NE(k1, k3);
  BitVector other = secret;
  other.flip(0);
  EXPECT_NE(derive_key(other, "ctx-a", 16), k1);
}

}  // namespace
}  // namespace pufaging
