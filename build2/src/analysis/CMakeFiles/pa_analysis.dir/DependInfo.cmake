
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/entropy.cpp" "src/analysis/CMakeFiles/pa_analysis.dir/entropy.cpp.o" "gcc" "src/analysis/CMakeFiles/pa_analysis.dir/entropy.cpp.o.d"
  "/root/repo/src/analysis/hamming.cpp" "src/analysis/CMakeFiles/pa_analysis.dir/hamming.cpp.o" "gcc" "src/analysis/CMakeFiles/pa_analysis.dir/hamming.cpp.o.d"
  "/root/repo/src/analysis/initial_quality.cpp" "src/analysis/CMakeFiles/pa_analysis.dir/initial_quality.cpp.o" "gcc" "src/analysis/CMakeFiles/pa_analysis.dir/initial_quality.cpp.o.d"
  "/root/repo/src/analysis/lifetime.cpp" "src/analysis/CMakeFiles/pa_analysis.dir/lifetime.cpp.o" "gcc" "src/analysis/CMakeFiles/pa_analysis.dir/lifetime.cpp.o.d"
  "/root/repo/src/analysis/monthly.cpp" "src/analysis/CMakeFiles/pa_analysis.dir/monthly.cpp.o" "gcc" "src/analysis/CMakeFiles/pa_analysis.dir/monthly.cpp.o.d"
  "/root/repo/src/analysis/one_probability.cpp" "src/analysis/CMakeFiles/pa_analysis.dir/one_probability.cpp.o" "gcc" "src/analysis/CMakeFiles/pa_analysis.dir/one_probability.cpp.o.d"
  "/root/repo/src/analysis/reliability_model.cpp" "src/analysis/CMakeFiles/pa_analysis.dir/reliability_model.cpp.o" "gcc" "src/analysis/CMakeFiles/pa_analysis.dir/reliability_model.cpp.o.d"
  "/root/repo/src/analysis/summary.cpp" "src/analysis/CMakeFiles/pa_analysis.dir/summary.cpp.o" "gcc" "src/analysis/CMakeFiles/pa_analysis.dir/summary.cpp.o.d"
  "/root/repo/src/analysis/timeseries.cpp" "src/analysis/CMakeFiles/pa_analysis.dir/timeseries.cpp.o" "gcc" "src/analysis/CMakeFiles/pa_analysis.dir/timeseries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/common/CMakeFiles/pa_common.dir/DependInfo.cmake"
  "/root/repo/build2/src/stats/CMakeFiles/pa_stats.dir/DependInfo.cmake"
  "/root/repo/build2/src/io/CMakeFiles/pa_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
