#include "testbed/i2c.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "testbed/crc8.hpp"

namespace pufaging {
namespace {

TEST(Crc8, KnownVectorAndProperties) {
  // CRC-8/SMBus of "123456789" is 0xF4.
  const std::vector<std::uint8_t> check = {'1', '2', '3', '4', '5',
                                           '6', '7', '8', '9'};
  EXPECT_EQ(crc8(check), 0xF4);
  EXPECT_EQ(crc8({}), 0x00);
  // Single-bit change flips the CRC.
  std::vector<std::uint8_t> a = {0x01, 0x02};
  std::vector<std::uint8_t> b = {0x01, 0x03};
  EXPECT_NE(crc8(a), crc8(b));
}

TEST(I2cFrame, SealAndValidate) {
  I2cFrame frame;
  frame.address = 3;
  frame.sequence = 1234567;
  frame.payload = {0xDE, 0xAD, 0xBE, 0xEF};
  frame.seal();
  EXPECT_TRUE(frame.valid());
  frame.payload[2] ^= 0x10;
  EXPECT_FALSE(frame.valid());
  frame.payload[2] ^= 0x10;
  EXPECT_TRUE(frame.valid());
  frame.sequence ^= 1;  // header corruption is also caught
  EXPECT_FALSE(frame.valid());
}

TEST(I2cFrame, EverySingleBitFlipIsDetected) {
  // CRC-8 guarantees Hamming distance >= 2, so any single-bit corruption
  // anywhere in the frame — address, sequence, payload or the CRC byte
  // itself — must invalidate it. The fault injector flips exactly one bit,
  // so this property is what makes the retry loop sound.
  I2cFrame frame;
  frame.address = 19;
  frame.sequence = 0xA5C3F00D;
  frame.payload = {0x00, 0xFF, 0x5A, 0xC3, 0x81, 0x7E, 0x01, 0x80};
  frame.seal();
  ASSERT_TRUE(frame.valid());
  for (int bit = 0; bit < 8; ++bit) {
    frame.address ^= static_cast<std::uint8_t>(1 << bit);
    EXPECT_FALSE(frame.valid()) << "address bit " << bit;
    frame.address ^= static_cast<std::uint8_t>(1 << bit);
  }
  for (int bit = 0; bit < 32; ++bit) {
    frame.sequence ^= 1U << bit;
    EXPECT_FALSE(frame.valid()) << "sequence bit " << bit;
    frame.sequence ^= 1U << bit;
  }
  for (std::size_t byte = 0; byte < frame.payload.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      frame.payload[byte] ^= static_cast<std::uint8_t>(1 << bit);
      EXPECT_FALSE(frame.valid())
          << "payload byte " << byte << " bit " << bit;
      frame.payload[byte] ^= static_cast<std::uint8_t>(1 << bit);
    }
  }
  for (int bit = 0; bit < 8; ++bit) {
    frame.crc ^= static_cast<std::uint8_t>(1 << bit);
    EXPECT_FALSE(frame.valid()) << "crc bit " << bit;
    frame.crc ^= static_cast<std::uint8_t>(1 << bit);
  }
  EXPECT_TRUE(frame.valid());
}

TEST(I2cBus, TransferDurationScalesWithPayload) {
  EventQueue q;
  I2cBus bus(q, 100000.0);
  I2cFrame small;
  small.payload.resize(16);
  I2cFrame big;
  big.payload.resize(1024);
  const double small_t = bus.transfer_duration(small);
  const double big_t = bus.transfer_duration(big);
  EXPECT_GT(big_t, small_t);
  // 1 KByte at 100 kHz, 9 bits/byte: ~92.7 ms.
  EXPECT_NEAR(big_t, (1030.0 * 9.0 + 2.0) / 100000.0, 1e-9);
  EXPECT_THROW(I2cBus(q, 0.0), InvalidArgument);
}

TEST(I2cBus, DeliversFrameAfterBusTime) {
  EventQueue q;
  I2cBus bus(q, 100000.0);
  I2cFrame frame;
  frame.address = 7;
  frame.payload = {1, 2, 3};
  frame.seal();
  bool delivered = false;
  bus.transfer(frame, [&](I2cFrame f) {
    delivered = true;
    EXPECT_TRUE(f.valid());
    EXPECT_EQ(f.address, 7);
  });
  EXPECT_TRUE(bus.busy());
  EXPECT_FALSE(delivered);
  q.run_until(1.0);
  EXPECT_TRUE(delivered);
  EXPECT_FALSE(bus.busy());
  EXPECT_EQ(bus.frames_transferred(), 1U);
}

TEST(I2cBus, SequentialArbitration) {
  EventQueue q;
  I2cBus bus(q, 100000.0);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    I2cFrame frame;
    frame.address = static_cast<std::uint8_t>(i);
    frame.payload.resize(100);
    frame.seal();
    bus.transfer(frame,
                 [&order, i](const I2cFrame&) { order.push_back(i); });
  }
  q.run_until(1.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(I2cBus, FaultInjectionCorruptsRoughlyAtRate) {
  EventQueue q;
  I2cBus bus(q, 10e6);
  bus.inject_faults(0.5, 42);
  int bad = 0;
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    I2cFrame frame;
    frame.payload.resize(32);
    frame.seal();
    bus.transfer(frame, [&](const I2cFrame& f) { bad += f.valid() ? 0 : 1; });
  }
  q.run_until(10.0);
  EXPECT_EQ(bus.frames_transferred(), static_cast<std::uint64_t>(n));
  EXPECT_EQ(bus.frames_corrupted(), static_cast<std::uint64_t>(bad));
  EXPECT_NEAR(static_cast<double>(bad) / n, 0.5, 0.13);
  EXPECT_THROW(bus.inject_faults(1.5, 1), InvalidArgument);
}

TEST(I2cBus, DropProfileLosesFramesWithoutCallback) {
  EventQueue q;
  I2cBus bus(q, 10e6);
  I2cFaultProfile profile;
  profile.drop_rate = 0.5;
  bus.inject_fault_profile(profile, 7);
  int delivered = 0;
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    I2cFrame frame;
    frame.payload.resize(16);
    frame.seal();
    bus.transfer_with_status(frame, [&](I2cStatus status, const I2cFrame&) {
      EXPECT_EQ(status, I2cStatus::kOk);
      ++delivered;
    });
  }
  q.run_until(10.0);
  EXPECT_EQ(bus.frames_lost() + static_cast<std::uint64_t>(delivered),
            static_cast<std::uint64_t>(n));
  EXPECT_NEAR(static_cast<double>(bus.frames_lost()) / n, 0.5, 0.13);
  // A lost frame still occupied the bus: all n transfers were arbitrated.
  EXPECT_FALSE(bus.busy());
}

TEST(I2cBus, NakProfileReportsStatusQuickly) {
  EventQueue q;
  I2cBus bus(q, 100000.0);
  I2cFaultProfile profile;
  profile.nak_rate = 1.0;
  bus.inject_fault_profile(profile, 3);
  I2cFrame frame;
  frame.payload.resize(1024);
  frame.seal();
  bool naked = false;
  bus.transfer_with_status(frame, [&](I2cStatus status, const I2cFrame&) {
    naked = true;
    EXPECT_EQ(status, I2cStatus::kNak);
  });
  // A NAK aborts after the address byte: far sooner than the full frame.
  q.run_until(bus.nak_duration() + 1e-9);
  EXPECT_TRUE(naked);
  EXPECT_EQ(bus.frames_naked(), 1U);
  EXPECT_LT(bus.nak_duration(), bus.transfer_duration(frame) / 100.0);
}

TEST(I2cBus, ProfileValidationAndLegacyEquivalence) {
  EventQueue q;
  I2cBus bus(q, 10e6);
  I2cFaultProfile bad;
  bad.drop_rate = -0.1;
  EXPECT_THROW(bus.inject_fault_profile(bad, 1), InvalidArgument);
  bad = I2cFaultProfile{};
  bad.nak_rate = 1.1;
  EXPECT_THROW(bus.inject_fault_profile(bad, 1), InvalidArgument);

  // inject_faults(rate, seed) and a corruption-only profile with the same
  // seed must corrupt the exact same frames (legacy compatibility).
  EventQueue q1;
  I2cBus legacy(q1, 10e6);
  legacy.inject_faults(0.3, 99);
  EventQueue q2;
  I2cBus profiled(q2, 10e6);
  I2cFaultProfile corrupt_only;
  corrupt_only.corrupt_rate = 0.3;
  profiled.inject_fault_profile(corrupt_only, 99);
  std::vector<bool> legacy_bad;
  std::vector<bool> profiled_bad;
  for (int i = 0; i < 200; ++i) {
    I2cFrame frame;
    frame.payload.resize(8);
    frame.seal();
    legacy.transfer(frame,
                    [&](const I2cFrame& f) { legacy_bad.push_back(!f.valid()); });
    profiled.transfer(frame, [&](const I2cFrame& f) {
      profiled_bad.push_back(!f.valid());
    });
  }
  q1.run_until(10.0);
  q2.run_until(10.0);
  EXPECT_EQ(legacy_bad, profiled_bad);
}

TEST(I2cBus, NoFaultsByDefault) {
  EventQueue q;
  I2cBus bus(q, 10e6);
  int bad = 0;
  for (int i = 0; i < 100; ++i) {
    I2cFrame frame;
    frame.payload.resize(64);
    frame.seal();
    bus.transfer(frame, [&](const I2cFrame& f) { bad += f.valid() ? 0 : 1; });
  }
  q.run_until(10.0);
  EXPECT_EQ(bad, 0);
  EXPECT_EQ(bus.frames_corrupted(), 0U);
}

}  // namespace
}  // namespace pufaging
