#include "analysis/entropy.hpp"

#include <vector>

#include "common/error.hpp"
#include "common/math.hpp"
#include "tilecol/kernels.hpp"

namespace pufaging {

double puf_min_entropy(std::span<const BitVector> references) {
  return puf_min_entropy(references, tilecol::TileShape{});
}

double puf_min_entropy(std::span<const BitVector> references,
                       tilecol::TileShape shape) {
  if (references.size() < 2) {
    throw InvalidArgument("puf_min_entropy: need at least two references");
  }
  const std::size_t n_bits = references.front().size();
  for (const BitVector& r : references) {
    if (r.size() != n_bits) {
      throw InvalidArgument("puf_min_entropy: reference size mismatch");
    }
  }
  // Column ones counts over the tiled rows: the counts are integers, so
  // neither the tile shape nor the blocked accumulation order can change
  // them, and the entropy sum below runs in the same bit order as the
  // historical per-bit loop — bit-identical.
  const std::size_t n = references.size();
  const tilecol::TileBuffer tiles =
      tilecol::pack_bitvector_rows(references, shape);
  std::vector<std::uint32_t> ones(n_bits);
  tilecol::column_ones(tiles.layout(), tiles.data(), n_bits, ones.data());

  const double inv_devices = 1.0 / static_cast<double>(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n_bits; ++i) {
    sum += binary_min_entropy(static_cast<double>(ones[i]) * inv_devices);
  }
  return sum / static_cast<double>(n_bits);
}

double average_min_entropy(std::span<const double> one_probabilities) {
  if (one_probabilities.empty()) {
    throw InvalidArgument("average_min_entropy: empty input");
  }
  double sum = 0.0;
  for (double p : one_probabilities) {
    sum += binary_min_entropy(p);
  }
  return sum / static_cast<double>(one_probabilities.size());
}

}  // namespace pufaging
