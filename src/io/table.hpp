// Aligned plain-text table rendering (paper Table I and bench output).
#pragma once

#include <string>
#include <vector>

namespace pufaging {

/// Column alignment for TablePrinter.
enum class Align { kLeft, kRight };

/// Collects rows of cells and renders an aligned ASCII table with a header
/// rule, e.g.:
///
///   Evaluation      Start    End      Relative   Monthly
///   -------------   ------   ------   --------   -------
///   WCHD AVG.       2.49%    2.97%    +19.3%     +0.74%
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header,
                        std::vector<Align> alignments = {});

  /// Appends a row; short rows are padded with empty cells.
  void add_row(std::vector<std::string> cells);

  /// Renders the table with `gap` spaces between columns.
  std::string to_string(std::size_t gap = 3) const;

  /// Helper: formats `fraction` as a percentage like "2.97%".
  static std::string percent(double fraction, int decimals = 2);

  /// Helper: formats a relative change like "+19.3%" (or "negligible" when
  /// |change| < 0.0001, matching the paper's Table I footnote).
  static std::string signed_percent(double fraction, int decimals = 2,
                                    bool negligible_label = false);

 private:
  std::vector<std::string> header_;
  std::vector<Align> alignments_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pufaging
