#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <unordered_map>

namespace pufaging::obs {

namespace {

std::uint64_t next_tracer_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Tracer::Tracer(MonotonicClock& clock) : clock_(clock), id_(next_tracer_id()) {}

Tracer::~Tracer() = default;

Tracer::Shard& Tracer::local_shard() {
  thread_local std::unordered_map<std::uint64_t, Shard*> cache;
  Shard*& slot = cache[id_];
  if (slot == nullptr) {
    auto shard = std::make_unique<Shard>();
    Shard* raw = shard.get();
    {
      std::lock_guard<std::mutex> lock(shards_mu_);
      shards_.push_back(std::move(shard));
    }
    slot = raw;
  }
  return *slot;
}

std::vector<std::uint32_t>& Tracer::local_stack() {
  thread_local std::unordered_map<std::uint64_t,
                                  std::vector<std::uint32_t>> stacks;
  return stacks[id_];
}

Tracer::Span Tracer::span(std::string_view name) {
  Span s;
  s.tracer_ = this;
  s.name_ = std::string(name);
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    s.span_id_ = ++next_span_id_;
  }
  std::vector<std::uint32_t>& stack = local_stack();
  s.parent_id_ = stack.empty() ? 0 : stack.back();
  stack.push_back(s.span_id_);
  s.start_ns_ = clock_.now_ns();
  return s;
}

Tracer::Span& Tracer::Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    finish();
    tracer_ = other.tracer_;
    name_ = std::move(other.name_);
    start_ns_ = other.start_ns_;
    span_id_ = other.span_id_;
    parent_id_ = other.parent_id_;
    other.tracer_ = nullptr;
  }
  return *this;
}

void Tracer::Span::finish() {
  if (tracer_ == nullptr) {
    return;
  }
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  SpanRecord record;
  record.name = std::move(name_);
  record.start_ns = start_ns_;
  record.end_ns = tracer->clock_.now_ns();
  record.span_id = span_id_;
  record.parent_id = parent_id_;
  // Pop this span off the thread's open stack. Spans normally finish in
  // strict LIFO order; if one was moved across scopes and finished out of
  // order, remove it wherever it sits so nesting stays consistent.
  std::vector<std::uint32_t>& stack = tracer->local_stack();
  if (!stack.empty() && stack.back() == span_id_) {
    stack.pop_back();
  } else {
    const auto it = std::find(stack.begin(), stack.end(), span_id_);
    if (it != stack.end()) {
      stack.erase(it);
    }
  }
  tracer->record(std::move(record));
}

void Tracer::record(SpanRecord record) {
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    if (retained_ >= kMaxSpansRetained) {
      ++dropped_;
      return;
    }
    ++retained_;
  }
  Shard& shard = local_shard();
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.records.push_back(std::move(record));
}

std::vector<SpanRecord> Tracer::finished() const {
  std::vector<Shard*> shards;
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    shards.reserve(shards_.size());
    for (const auto& shard : shards_) {
      shards.push_back(shard.get());
    }
  }
  std::vector<SpanRecord> out;
  for (Shard* shard : shards) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.insert(out.end(), shard->records.begin(), shard->records.end());
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_ns != b.start_ns) {
                return a.start_ns < b.start_ns;
              }
              return a.span_id < b.span_id;
            });
  return out;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(shards_mu_);
  return dropped_;
}

}  // namespace pufaging::obs
