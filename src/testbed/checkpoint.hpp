// Campaign checkpoint/resume: crash-tolerant long campaigns.
//
// The paper's rig ran for two wall-clock years; the one certainty about a
// two-year run is that the collector host reboots at some point. A
// checkpoint captures everything `run_campaign` needs to continue a
// campaign bit-identically: each device's measurement-RNG state and
// counter (aging is replayed — it is a pure function of the config and the
// month sequence), the resilience state machine of every board, the
// completed part of the fleet series, the month-0 references and the
// health ledger.
//
// On-disk format: one JSONL file (`state.jsonl`) in the checkpoint
// directory — a header line, one line per device, one line per completed
// month, one health line. Doubles that must survive the round trip
// bit-exactly (the series) are stored as hex bit patterns of their IEEE-754
// encoding. Writes go to a temp file which is atomically renamed, so a
// crash mid-checkpoint leaves the previous checkpoint intact.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/monthly.hpp"
#include "testbed/faults.hpp"

namespace pufaging {

/// Resumable state of one device: the measurement RNG and how many
/// measurements it has produced. Aging state is deliberately absent — it
/// is replayed deterministically on resume.
struct DeviceCheckpoint {
  std::uint32_t device_id = 0;
  std::array<std::uint64_t, 4> rng_state{};
  std::uint64_t measurement_count = 0;
};

/// Everything needed to continue a campaign after the last completed month.
struct CampaignCheckpoint {
  /// First month that has NOT been completed yet (resume starts here).
  std::size_t next_month = 0;

  // Config fingerprint, validated on resume: resuming under a different
  // campaign configuration would silently produce garbage.
  std::uint64_t fleet_seed = 0;
  std::size_t device_count = 0;
  std::size_t months = 0;
  std::size_t measurements_per_month = 0;
  std::string fault_plan_json;  ///< Compact JSON dump of the FaultPlan.

  std::vector<DeviceCheckpoint> devices;
  std::vector<BoardFaultState> fault_states;

  /// Month-0 reference per device; empty BitVector = not yet established
  /// (the board has not delivered a single measurement).
  std::vector<BitVector> references;

  /// Completed monthly snapshots (next_month entries).
  std::vector<FleetMonthMetrics> series;

  CampaignHealth health;
};

/// True when `dir` holds a checkpoint file.
bool has_checkpoint(const std::string& dir);

/// Writes the checkpoint to `dir` (created if missing) via a temp file and
/// atomic rename. Throws IoError on filesystem failure.
void save_checkpoint(const std::string& dir, const CampaignCheckpoint& ckpt);

/// Loads the checkpoint from `dir`. Throws IoError when absent, ParseError
/// when malformed.
CampaignCheckpoint load_checkpoint(const std::string& dir);

/// Bit-exact double <-> hex helpers (IEEE-754 bit pattern as 16 hex
/// digits); used by the checkpoint serializer and its tests.
std::string double_to_hex_bits(double value);
double double_from_hex_bits(const std::string& hex);

/// FleetMonthMetrics round trip with bit-exact doubles (used per JSONL
/// month line).
Json fleet_month_to_json(const FleetMonthMetrics& m);
FleetMonthMetrics fleet_month_from_json(const Json& json);

}  // namespace pufaging
