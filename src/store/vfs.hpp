// The filesystem seam of the durable measurement store.
//
// Everything the store does to disk goes through this narrow, append-only
// interface so that (a) the production path (`RealFs`) can be audited in
// one place for the fsync/rename discipline crash safety depends on, and
// (b) the crash-matrix harness can substitute `FaultFs` (faultfs.hpp): an
// in-memory filesystem that models the page cache explicitly — what has
// merely been written and what has actually been fsynced are tracked
// separately, so a simulated power cut can discard exactly the
// non-durable bytes, not just kill the process.
//
// Interface contract (what the store is allowed to assume):
//  - Files are append-only. `open_append` positions at the end (or
//    truncates to empty first); there is no seek and no in-place rewrite.
//    Atomic replacement is write-new-file → fsync → rename.
//  - `write_some` may write fewer bytes than asked (short write); callers
//    loop (`write_all`) or treat the shortfall as an error.
//  - Data is durable only after `fsync` on the file; a file's *name* (its
//    directory entry — creation, rename, removal) is durable only after
//    `fsync_dir` on the containing directory.
//  - `rename` is atomic with respect to a crash: afterwards the target
//    refers either to the old content or the new content, never a mix.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace pufaging {

/// Typed failure of the durable store. Derives from IoError so existing
/// call sites that treat checkpoint I/O failures as IoError keep working;
/// the kind lets policy code distinguish a full disk (retryable after an
/// operator intervenes) from corruption (needs recovery) from plain I/O.
class StoreError : public IoError {
 public:
  enum class Kind {
    kIo,       ///< Generic filesystem failure.
    kNoSpace,  ///< ENOSPC: the device is full.
    kCorrupt,  ///< On-disk state violates the store's invariants.
  };

  StoreError(Kind kind, const std::string& what) : IoError(what), kind_(kind) {}

  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

/// Thrown by FaultFs when the simulated power cut fires. Deliberately NOT
/// a StoreError: nothing in the library may catch and "handle" a power
/// cut — it models the process ceasing to exist, and only the crash
/// harness (which plays the role of the next boot) catches it.
class PowerCutError : public Error {
 public:
  explicit PowerCutError(const std::string& what) : Error(what) {}
};

/// Read-only view of a whole file, either zero-copy (mmap, production
/// path) or buffered (an owned copy — the default for any Vfs that does
/// not override map_file, which keeps FaultFs' kill-point accounting on
/// the ordinary read_file path). Move-only; the mapping (when any) is
/// released on destruction. The bytes a consumer sees are identical
/// either way — zero_copy() only reports how they got here.
class MappedFile {
 public:
  MappedFile() = default;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  MappedFile(MappedFile&& other) noexcept { swap(other); }
  MappedFile& operator=(MappedFile&& other) noexcept {
    if (this != &other) {
      release();
      swap(other);
    }
    return *this;
  }
  ~MappedFile() { release(); }

  /// Wraps an owned copy of the bytes.
  static MappedFile buffered(std::string bytes);
  /// Adopts an existing mmap region; the destructor munmaps it.
  static MappedFile adopt_mapping(void* base, std::size_t len);

  const char* data() const {
    return base_ != nullptr ? static_cast<const char*>(base_)
                            : buffer_.data();
  }
  std::size_t size() const { return base_ != nullptr ? len_ : buffer_.size(); }
  std::string_view view() const { return {data(), size()}; }
  bool zero_copy() const { return base_ != nullptr; }

 private:
  void release() noexcept;
  void swap(MappedFile& other) noexcept {
    buffer_.swap(other.buffer_);
    std::swap(base_, other.base_);
    std::swap(len_, other.len_);
  }

  std::string buffer_;
  void* base_ = nullptr;
  std::size_t len_ = 0;
};

/// Abstract filesystem. All methods throw StoreError on failure unless
/// noted; FaultFs methods additionally throw PowerCutError once its kill
/// point has fired.
class Vfs {
 public:
  /// Opaque open-file token (fd-like).
  using FileId = int;

  virtual ~Vfs() = default;

  // Namespace operations -------------------------------------------------
  virtual void create_dirs(const std::string& dir) = 0;
  virtual bool exists(const std::string& path) = 0;
  /// Plain file names (not paths) inside `dir`, sorted.
  virtual std::vector<std::string> list_dir(const std::string& dir) = 0;
  virtual void rename(const std::string& from, const std::string& to) = 0;
  virtual void remove(const std::string& path) = 0;
  /// Makes the directory's entries (creations/renames/removals) durable.
  virtual void fsync_dir(const std::string& dir) = 0;

  // File operations -------------------------------------------------------
  /// Opens for appending, creating the file when missing;
  /// `truncate_existing` starts from empty instead of the current end.
  virtual FileId open_append(const std::string& path,
                             bool truncate_existing) = 0;
  /// Appends up to `len` bytes; returns how many were written (>= 1 on
  /// success — a short write is not an error, zero never happens).
  virtual std::size_t write_some(FileId file, const char* data,
                                 std::size_t len) = 0;
  /// Makes previously written bytes of this file durable.
  virtual void fsync(FileId file) = 0;
  /// Never throws: close is part of unwind paths.
  virtual void close(FileId file) noexcept = 0;
  virtual std::uint64_t file_size(const std::string& path) = 0;
  virtual std::string read_file(const std::string& path) = 0;
  /// Shrinks the file to `size` bytes (the recovery scan's torn-tail cut).
  virtual void truncate(const std::string& path, std::uint64_t size) = 0;

  /// Whole-file read-only view. The base implementation buffers through
  /// read_file — same bytes, same error surface, same fault-injection
  /// coverage — so only filesystems with a real page cache (RealFs)
  /// override it with an actual mmap.
  virtual MappedFile map_file(const std::string& path);

  /// write_some loop; throws StoreError if the bytes cannot all be written.
  void write_all(FileId file, std::string_view data);
};

/// RAII wrapper around a Vfs FileId.
class VfsFile {
 public:
  VfsFile() = default;
  VfsFile(Vfs& vfs, Vfs::FileId id) : vfs_(&vfs), id_(id) {}
  VfsFile(const VfsFile&) = delete;
  VfsFile& operator=(const VfsFile&) = delete;
  VfsFile(VfsFile&& other) noexcept : vfs_(other.vfs_), id_(other.id_) {
    other.vfs_ = nullptr;
  }
  VfsFile& operator=(VfsFile&& other) noexcept {
    if (this != &other) {
      reset();
      vfs_ = other.vfs_;
      id_ = other.id_;
      other.vfs_ = nullptr;
    }
    return *this;
  }
  ~VfsFile() { reset(); }

  Vfs::FileId id() const { return id_; }
  explicit operator bool() const { return vfs_ != nullptr; }

  void reset() noexcept {
    if (vfs_ != nullptr) {
      vfs_->close(id_);
      vfs_ = nullptr;
    }
  }

 private:
  Vfs* vfs_ = nullptr;
  Vfs::FileId id_ = -1;
};

/// The production filesystem: POSIX fds with real fsync. Every store on
/// the real disk shares the singleton; the only state is a lock-guarded
/// fd -> path table so write/fsync failures can name the file, not just
/// the descriptor.
class RealFs final : public Vfs {
 public:
  static RealFs& instance();

  void create_dirs(const std::string& dir) override;
  bool exists(const std::string& path) override;
  std::vector<std::string> list_dir(const std::string& dir) override;
  void rename(const std::string& from, const std::string& to) override;
  void remove(const std::string& path) override;
  void fsync_dir(const std::string& dir) override;

  FileId open_append(const std::string& path, bool truncate_existing) override;
  std::size_t write_some(FileId file, const char* data,
                         std::size_t len) override;
  void fsync(FileId file) override;
  void close(FileId file) noexcept override;
  std::uint64_t file_size(const std::string& path) override;
  std::string read_file(const std::string& path) override;
  void truncate(const std::string& path, std::uint64_t size) override;
  /// Real zero-copy mmap (falls back to the buffered base behaviour for
  /// empty files, where mmap has nothing to map).
  MappedFile map_file(const std::string& path) override;

 private:
  /// The path `file` was opened under, for error messages.
  std::string name_of(FileId file);

  std::mutex names_mutex_;
  std::map<FileId, std::string> names_;
};

}  // namespace pufaging
