// Poison-trace bundles: each grid cell's worst-case run, captured as a
// self-contained, replayable artifact.
//
// "The grid says cell (r=3, p=hairtrigger) loses half its coverage" is
// only actionable if someone can hold that exact failing run in their
// hands. A poison bundle is that run, frozen:
//
//   <dir>/poison.json     config capsule: grid identity + cell coords +
//                         the *materialized* fault plan, retry policy and
//                         fleet seed (replay needs no grid spec)
//   <dir>/expected.jsonl  the run's bit-exact identity: every monthly
//                         fleet snapshot, the month-0 references and the
//                         health ledger, doubles as IEEE-754 hex
//   <dir>/obs.jsonl       the run's chaos.* metric stream (informational
//                         context for a human; not part of the replay
//                         comparison)
//   <dir>/store/          the run's durable-store checkpoint, inspectable
//                         with `pufaging recover`
//
// `replay_poison_bundle` re-executes the campaign from poison.json alone
// and byte-compares its regenerated identity against expected.jsonl: any
// drift in the simulation, the kernels or the resilience machinery shows
// up as a first-diff line. By the campaign determinism contract the
// replay must match at any thread count.
#pragma once

#include <cstdint>
#include <string>

#include "chaoslab/grid.hpp"

namespace pufaging::chaoslab {

/// Everything replay needs, denormalized from the grid spec.
struct PoisonBundle {
  std::string grid_name;
  std::string fingerprint;  ///< grid_fingerprint of the producing spec.
  std::size_t rate_index = 0;
  std::size_t policy_index = 0;
  std::size_t seed_index = 0;
  double rate_scale = 0.0;
  std::string policy_label;

  FaultPlan plan;  ///< Already scaled — applied as-is on replay.
  RetryPolicy policy;
  std::uint64_t fleet_seed = 0;
  std::size_t months = 0;
  std::size_t measurements_per_month = 0;
  std::size_t device_count = 0;
  std::size_t total_bits = 0;
  std::size_t puf_window_bits = 0;
};

/// The bundle capsule for a cell's worst-case seed (CellSummary::
/// worst_seed_index).
PoisonBundle poison_bundle_for(const GridSpec& spec, const CellSummary& cell);

Json poison_bundle_to_json(const PoisonBundle& bundle);
PoisonBundle poison_bundle_from_json(const Json& json);

/// The campaign config a bundle replays (threads == 1 by default; replay
/// may override — the result is bit-identical either way).
CampaignConfig poison_campaign_config(const PoisonBundle& bundle);

/// A campaign result's bit-exact identity as JSONL: one line per monthly
/// snapshot (hex doubles), one references line, one health line. Equal
/// strings == equal results.
std::string result_identity_jsonl(const CampaignResult& result);

/// Re-runs the cell's worst-case campaign and writes the full bundle
/// into `dir` (created; must not already contain a store). Returns the
/// bundle capsule.
PoisonBundle export_poison_bundle(const GridSpec& spec,
                                  const CellSummary& cell,
                                  const std::string& dir);

/// Outcome of a replay comparison.
struct ReplayReport {
  bool identical = false;
  std::size_t lines_compared = 0;
  /// First differing line (prefixed expected/actual), empty when
  /// identical.
  std::string first_diff;

  std::string render() const;
};

/// Loads `dir`'s capsule, re-runs the campaign at `threads` workers and
/// byte-compares against expected.jsonl.
ReplayReport replay_poison_bundle(const std::string& dir,
                                  std::size_t threads);

}  // namespace pufaging::chaoslab
