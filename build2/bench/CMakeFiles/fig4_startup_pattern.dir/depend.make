# Empty dependencies file for fig4_startup_pattern.
# This may be replaced when dependencies are built.
