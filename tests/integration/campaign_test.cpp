// Integration: fast-path campaign -> analysis -> summary table.
#include <gtest/gtest.h>

#include "common/error.hpp"

#include "analysis/initial_quality.hpp"
#include "analysis/summary.hpp"
#include "analysis/timeseries.hpp"
#include "stats/regression.hpp"
#include "testbed/campaign.hpp"

namespace pufaging {
namespace {

CampaignConfig small_config() {
  CampaignConfig config;
  config.months = 3;
  config.measurements_per_month = 150;
  config.keep_first_month_batches = true;
  return config;
}

TEST(CampaignIntegration, SeriesShape) {
  const CampaignResult r = run_campaign(small_config());
  ASSERT_EQ(r.series.size(), 4U);  // months 0..3
  EXPECT_EQ(r.references.size(), 16U);
  for (std::size_t m = 0; m < r.series.size(); ++m) {
    EXPECT_DOUBLE_EQ(r.series[m].month, static_cast<double>(m));
    EXPECT_EQ(r.series[m].devices.size(), 16U);
    for (const DeviceMonthMetrics& d : r.series[m].devices) {
      EXPECT_EQ(d.measurement_count, 150U);
    }
  }
}

TEST(CampaignIntegration, ReferencesAreFirstMeasurements) {
  const CampaignResult r = run_campaign(small_config());
  for (std::size_t d = 0; d < 16; ++d) {
    EXPECT_EQ(r.references[d], r.series[0].devices[d].first_pattern);
    EXPECT_EQ(r.references[d], r.first_month_batches[d].front());
  }
}

TEST(CampaignIntegration, FirstMonthBatchesFeedInitialQuality) {
  const CampaignResult r = run_campaign(small_config());
  ASSERT_EQ(r.first_month_batches.size(), 16U);
  const InitialQualityReport report =
      evaluate_initial_quality(r.first_month_batches);
  EXPECT_EQ(report.wchd_samples.size(), 16U * 149U);
  EXPECT_EQ(report.bchd_samples.size(), 120U);
  // Fig. 5 qualitative separation.
  for (double w : report.wchd_samples) {
    EXPECT_LT(w, 0.15);
  }
  for (double b : report.bchd_samples) {
    EXPECT_GT(b, 0.40);
    EXPECT_LT(b, 0.50);
  }
}

TEST(CampaignIntegration, SummaryTableBuilds) {
  const CampaignResult r = run_campaign(small_config());
  const SummaryTable table = build_summary_table(r.series);
  EXPECT_EQ(table.months, 3U);
  const std::string rendered = render_summary_table(table);
  EXPECT_NE(rendered.find("WCHD"), std::string::npos);
  EXPECT_NE(rendered.find("Noise entropy"), std::string::npos);
}

TEST(CampaignIntegration, TimeSeriesExtractionAndCsv) {
  const CampaignResult r = run_campaign(small_config());
  std::vector<MetricSeries> series;
  series.push_back(extract_series(
      r.series, "wchd_avg",
      [](const FleetMonthMetrics& m) { return m.wchd_avg; }));
  for (std::uint32_t d : {0U, 7U, 15U}) {
    series.push_back(extract_device_series(
        r.series, d, "S" + std::to_string(d),
        [](const DeviceMonthMetrics& m) { return m.wchd_mean; }));
  }
  const CsvWriter csv = series_to_csv(series);
  EXPECT_EQ(csv.row_count(), 4U);
  EXPECT_NO_THROW(render_chart(series));
}

TEST(CampaignIntegration, WchdTrendsUpward) {
  const CampaignResult r = run_campaign(small_config());
  const MetricSeries s = extract_series(
      r.series, "wchd",
      [](const FleetMonthMetrics& m) { return m.wchd_avg; });
  const LinearFit fit = linear_fit(s.months, s.values);
  EXPECT_GT(fit.slope, 0.0);
}

TEST(CampaignIntegration, DeterministicAcrossRuns) {
  const CampaignResult a = run_campaign(small_config());
  const CampaignResult b = run_campaign(small_config());
  ASSERT_EQ(a.series.size(), b.series.size());
  EXPECT_DOUBLE_EQ(a.series.back().wchd_avg, b.series.back().wchd_avg);
  EXPECT_DOUBLE_EQ(a.series.back().puf_entropy, b.series.back().puf_entropy);
  EXPECT_EQ(a.references[5], b.references[5]);
}

TEST(CampaignIntegration, AcceleratedModeUsesHigherBaseline) {
  CampaignConfig config = small_config();
  config.keep_first_month_batches = false;
  const CampaignResult nominal = run_campaign(config);
  config.accelerated = true;
  config.operating_point = accelerated_conditions();
  const CampaignResult accel = run_campaign(config);
  EXPECT_GT(accel.series.front().wchd_avg,
            1.5 * nominal.series.front().wchd_avg);
}

TEST(CampaignIntegration, Validation) {
  CampaignConfig config;
  config.measurements_per_month = 0;
  EXPECT_THROW(run_campaign(config), InvalidArgument);
}

}  // namespace
}  // namespace pufaging
