# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build2/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build2/tests/pa_common_test[1]_include.cmake")
include("/root/repo/build2/tests/pa_stats_test[1]_include.cmake")
include("/root/repo/build2/tests/pa_io_test[1]_include.cmake")
include("/root/repo/build2/tests/pa_silicon_test[1]_include.cmake")
include("/root/repo/build2/tests/pa_analysis_test[1]_include.cmake")
include("/root/repo/build2/tests/pa_testbed_test[1]_include.cmake")
include("/root/repo/build2/tests/pa_keygen_test[1]_include.cmake")
include("/root/repo/build2/tests/pa_trng_test[1]_include.cmake")
include("/root/repo/build2/tests/pa_golden_test[1]_include.cmake")
include("/root/repo/build2/tests/pa_integration_test[1]_include.cmake")
