#include "analysis/hamming.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace pufaging {
namespace {

TEST(WithinClassHd, PerMeasurementAndMean) {
  const BitVector ref = BitVector::from_string("0000");
  const std::vector<BitVector> ms = {
      BitVector::from_string("0000"), BitVector::from_string("0001"),
      BitVector::from_string("0011")};
  const std::vector<double> hds = within_class_hds(ref, ms);
  ASSERT_EQ(hds.size(), 3U);
  EXPECT_DOUBLE_EQ(hds[0], 0.0);
  EXPECT_DOUBLE_EQ(hds[1], 0.25);
  EXPECT_DOUBLE_EQ(hds[2], 0.5);
  EXPECT_DOUBLE_EQ(mean_within_class_hd(ref, ms), 0.25);
}

TEST(WithinClassHd, EmptyMeasurementsThrow) {
  const BitVector ref(4);
  EXPECT_THROW(mean_within_class_hd(ref, std::vector<BitVector>{}),
               InvalidArgument);
}

TEST(BetweenClassHd, AllPairsInOrder) {
  const std::vector<BitVector> refs = {BitVector::from_string("0000"),
                                       BitVector::from_string("1111"),
                                       BitVector::from_string("1100")};
  const std::vector<double> bchds = between_class_hds(refs);
  ASSERT_EQ(bchds.size(), 3U);  // C(3,2)
  EXPECT_DOUBLE_EQ(bchds[0], 1.0);   // (0,1)
  EXPECT_DOUBLE_EQ(bchds[1], 0.5);   // (0,2)
  EXPECT_DOUBLE_EQ(bchds[2], 0.5);   // (1,2)
}

TEST(BetweenClassHd, PairCountForPaperFleet) {
  std::vector<BitVector> refs(16, BitVector(8));
  EXPECT_EQ(between_class_hds(refs).size(), 120U);  // C(16,2)
  EXPECT_THROW(between_class_hds(std::vector<BitVector>(1, BitVector(8))),
               InvalidArgument);
}

TEST(FractionalWeights, PerMeasurement) {
  const std::vector<BitVector> ms = {BitVector::from_string("1100"),
                                     BitVector::from_string("1110")};
  const std::vector<double> ws = fractional_weights(ms);
  ASSERT_EQ(ws.size(), 2U);
  EXPECT_DOUBLE_EQ(ws[0], 0.5);
  EXPECT_DOUBLE_EQ(ws[1], 0.75);
}

}  // namespace
}  // namespace pufaging
