// Parallel campaign engine: wall-clock scaling of the paper-scale
// campaign (24 months x 16 devices x 1000 measurements/month) over the
// thread count, plus a bit-identity audit of every parallel run against
// the threads=1 reference path. Devices carry independent counter-based
// RNG streams split off the fleet seed, so the speedup is pure scheduling
// — the output bits do not change.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <vector>

#include "analysis/monthly.hpp"
#include "analysis/streaming_fold.hpp"
#include "bench_common.hpp"
#include "common/bitkernel.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "testbed/campaign.hpp"
#include "tilecol/kernels.hpp"
#include "tilecol/layout.hpp"

namespace pufaging {
namespace {

CampaignConfig paper_scale(std::size_t threads) {
  CampaignConfig config;  // 24 months, 16 devices, 1000 meas/month
  config.threads = threads;
  return config;
}

bool bit_identical(const CampaignResult& a, const CampaignResult& b) {
  if (a.references != b.references || a.series.size() != b.series.size()) {
    return false;
  }
  for (std::size_t m = 0; m < a.series.size(); ++m) {
    const FleetMonthMetrics& x = a.series[m];
    const FleetMonthMetrics& y = b.series[m];
    if (x.wchd_avg != y.wchd_avg || x.wchd_wc != y.wchd_wc ||
        x.fhw_avg != y.fhw_avg || x.fhw_wc != y.fhw_wc ||
        x.stable_avg != y.stable_avg || x.stable_wc != y.stable_wc ||
        x.noise_entropy_avg != y.noise_entropy_avg ||
        x.noise_entropy_wc != y.noise_entropy_wc ||
        x.bchd_avg != y.bchd_avg || x.bchd_wc != y.bchd_wc ||
        x.puf_entropy != y.puf_entropy ||
        x.devices.size() != y.devices.size()) {
      return false;
    }
    for (std::size_t d = 0; d < x.devices.size(); ++d) {
      const DeviceMonthMetrics& p = x.devices[d];
      const DeviceMonthMetrics& q = y.devices[d];
      if (p.device_id != q.device_id || p.wchd_mean != q.wchd_mean ||
          p.fhw_mean != q.fhw_mean || p.stable_ratio != q.stable_ratio ||
          p.noise_entropy != q.noise_entropy ||
          p.first_pattern != q.first_pattern) {
        return false;
      }
    }
  }
  return true;
}

// Random full-word pattern (bits must be a multiple of 64 — both bench
// shapes below use the paper's 8192).
BitVector random_pattern(Xoshiro256StarStar& rng, std::size_t bits) {
  std::vector<std::uint8_t> bytes(bits / 8);
  for (std::size_t i = 0; i < bytes.size(); i += 8) {
    const std::uint64_t draw = rng.next();
    for (std::size_t k = 0; k < 8; ++k) {
      bytes[i + k] = static_cast<std::uint8_t>((draw >> (k * 8)) & 0xFFU);
    }
  }
  return BitVector::from_bytes(bytes, bits);
}

// The PR 3 analysis row path vs the tilecol engine, on the analysis
// stage of the full 2-year 16-board protocol (24 months x 16 devices x
// 1000 measurements of 8192 bits, pre-generated once so only the
// analysis is on the clock). The row path is the literal old loop: three
// separate kernel passes per measurement (HD, weight, ones) and the
// materialized all-pairs combine. The tile path is production: fused
// row_stats per measurement and the streaming tile fold.
void tilecol_analysis() {
  std::printf("\ntilecol analysis engine vs the separate-pass row path\n");
  std::printf("(2-year protocol: 24 months x 16 devices x 1000 "
              "measurements x 8192 bits)\n");
  const std::size_t devices = 16;
  const std::size_t meas_per_month = 1000;
  const std::size_t months = 24;
  const std::size_t bits = 8192;
  const std::size_t words = bits / 64;

  Xoshiro256StarStar rng(0xBE7C4A11ULL);
  std::vector<BitVector> references;
  std::vector<std::vector<BitVector>> batches(devices);
  for (std::size_t d = 0; d < devices; ++d) {
    references.push_back(random_pattern(rng, bits));
    batches[d].reserve(meas_per_month);
    for (std::size_t m = 0; m < meas_per_month; ++m) {
      batches[d].push_back(random_pattern(rng, bits));
    }
  }
  // Per-device metrics for the cross-device stage, built once untimed
  // (both paths share them; the per-measurement kernels dominate).
  std::vector<DeviceMonthMetrics> metrics;
  for (std::size_t d = 0; d < devices; ++d) {
    DeviceMonthAccumulator acc(static_cast<std::uint32_t>(d), references[d]);
    for (const BitVector& m : batches[d]) {
      acc.add(m);
    }
    metrics.push_back(acc.finalize());
  }

  // Engine vs engine, each at the best tier its PR could dispatch: the
  // PR 3 ladder topped out at AVX2/NEON, so the row path runs at that
  // ceiling; the tile path runs the full ladder (AVX-512 where the CPU
  // has it). On hardware without AVX-512 the tiers coincide and the
  // comparison degenerates to fused-vs-three-passes at the same tier.
  const std::vector<bitkernel::Level> avail = bitkernel::available_levels();
  bitkernel::Level pr3_best = bitkernel::Level::kScalar;
  for (const bitkernel::Level level : avail) {
    if (level != bitkernel::Level::kAvx512) {
      pr3_best = level;
    }
  }
  const bitkernel::Level best = avail.back();
  const bitkernel::Kernels& k = bitkernel::kernels_for(pr3_best);
  std::uint64_t row_sink = 0;
  std::uint64_t tile_sink = 0;
  std::vector<std::uint32_t> ones(bits);
  FleetMonthMetrics row_month;
  FleetMonthMetrics tile_month;

  const auto row_path = [&] {
    const bitkernel::ScopedLevel scope(pr3_best);
    for (std::size_t d = 0; d < devices; ++d) {
      std::fill(ones.begin(), ones.end(), 0U);
      for (const BitVector& m : batches[d]) {
        row_sink += k.xor_popcount(references[d].words().data(),
                                   m.words().data(), words);
        row_sink += k.popcount(m.words().data(), words);
        k.accumulate_ones(m.words().data(), bits, ones.data());
      }
      row_sink += ones[bits - 1];
    }
    row_month = combine_fleet_month(metrics, 0.0);
  };
  // The tile path is the engine as designed: the month's batch lands in
  // the columnar layout (one batch-rows tile, so the fused kernel streams
  // contiguous rows), then a single row_stats_batch dispatch replaces the
  // three per-measurement passes. Buffers are allocated once; the timed
  // region re-packs every month, so the ingest cost stays on the clock.
  std::vector<tilecol::TileBuffer> tiled;
  for (std::size_t d = 0; d < devices; ++d) {
    tiled.emplace_back(tilecol::TileLayout(
        meas_per_month, words, tilecol::TileShape{meas_per_month, words}));
  }
  std::vector<std::uint64_t> dists(meas_per_month);
  std::vector<std::uint64_t> pops(meas_per_month);
  const auto tile_path = [&] {
    const bitkernel::ScopedLevel scope(best);
    for (std::size_t d = 0; d < devices; ++d) {
      std::fill(ones.begin(), ones.end(), 0U);
      for (std::size_t m = 0; m < meas_per_month; ++m) {
        tiled[d].pack_row(m, batches[d][m].words().data());
      }
      bitkernel::row_stats_batch(tiled[d].data(), meas_per_month, words,
                                 bits, references[d].words().data(),
                                 ones.data(), dists.data(), pops.data());
      for (std::size_t m = 0; m < meas_per_month; ++m) {
        tile_sink += dists[m] + pops[m];
      }
      tile_sink += ones[bits - 1];
    }
    tile_month = fold_fleet_month(metrics, 0.0);
  };

  const auto time_months = [&](const auto& body) {
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t month = 0; month < months; ++month) {
      body();
    }
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(stop - start).count();
  };
  const double row_s = time_months(row_path);
  const double tile_s = time_months(tile_path);
  benchmark::DoNotOptimize(row_sink);
  benchmark::DoNotOptimize(tile_sink);

  const bool identical =
      row_sink == tile_sink && row_month.bchd_avg == tile_month.bchd_avg &&
      row_month.bchd_wc == tile_month.bchd_wc &&
      row_month.puf_entropy == tile_month.puf_entropy &&
      row_month.wchd_avg == tile_month.wchd_avg;
  const double speedup = row_s / tile_s;
  std::printf("  PR 3 row path (3 passes @ %s)    %8.2f s   reference\n",
              bitkernel::level_name(pr3_best), row_s);
  std::printf("  tilecol (fused + fold @ %s)    %8.2f s   %.2fx, "
              "bit-identical: %s\n",
              bitkernel::level_name(best), tile_s, speedup,
              identical ? "yes" : "NO - BUG");
  std::printf("BENCH {\"bench\":\"campaign_scaling.tilecol_analysis\","
              "\"row_s\":%.4f,\"tile_s\":%.4f,\"speedup\":%.3f,"
              "\"bit_identical\":%s}\n",
              row_s, tile_s, speedup, identical ? "true" : "false");
  if (!identical) {
    std::printf("BIT MISMATCH: the tilecol analysis diverged from the row "
                "path\n");
    std::exit(1);
  }
  if (speedup < 1.5) {
    std::printf("warning: tilecol speedup %.2fx is below the 1.5x target%s\n",
                speedup,
                best == pr3_best ? " (no AVX-512 tier on this CPU, so both "
                                   "paths run the same ladder ceiling)"
                                 : "");
  }
}

// The 10,000-board what-if: the full cross-device BCHD fold at fleet
// scale, where materializing the pair vectors is ~800 MB and the
// streaming fold's scratch is ~13 MB. Times the real fold and prints the
// deterministic footprint accounting next to it.
void tenk_board_fold() {
  std::printf("\n10,000-board streaming BCHD fold (8192-bit patterns):\n");
  const std::size_t boards = 10000;
  const std::size_t bits = 8192;
  Xoshiro256StarStar rng(0x7E2B0A2DULL);
  std::vector<BitVector> refs;
  refs.reserve(boards);
  for (std::size_t d = 0; d < boards; ++d) {
    refs.push_back(random_pattern(rng, bits));
  }
  const auto start = std::chrono::steady_clock::now();
  const tilecol::TileBuffer tiles =
      tilecol::pack_bitvector_rows(refs, tilecol::TileShape{});
  const tilecol::PairHammingFold fold =
      tilecol::fold_pair_fractional_hds(tiles.layout(), tiles.data(), bits);
  const auto stop = std::chrono::steady_clock::now();
  const double wall_s = std::chrono::duration<double>(stop - start).count();
  benchmark::DoNotOptimize(fold.sum);

  const FoldFootprint fp = fold_footprint(boards, bits);
  const double streaming_mb =
      static_cast<double>(fp.streaming_bytes) / (1024.0 * 1024.0);
  const double materialized_mb =
      static_cast<double>(fp.materialized_bytes) / (1024.0 * 1024.0);
  std::printf("  %zu pairs folded in %.2f s, bchd_avg %.4f%%\n", fold.pairs,
              wall_s, 100.0 * fold.sum / static_cast<double>(fold.pairs));
  std::printf("  scratch: streaming %.1f MB vs materialized %.1f MB "
              "(%.0fx smaller)\n",
              streaming_mb, materialized_mb, materialized_mb / streaming_mb);
  std::printf("BENCH {\"bench\":\"campaign_scaling.tenk_fold\","
              "\"boards\":%zu,\"wall_s\":%.4f,\"streaming_mb\":%.2f,"
              "\"materialized_mb\":%.2f}\n",
              boards, wall_s, streaming_mb, materialized_mb);
}

void reproduce() {
  bench::banner("Campaign scaling - parallel engine vs serial reference");
  const std::size_t hw = ThreadPool::resolve_thread_count(0);
  std::printf("paper-scale campaign: 24 months x 16 devices x 1000 "
              "measurements/month (hardware concurrency: %zu)\n\n",
              hw);

  const auto time_run = [](const CampaignConfig& config, CampaignResult& out) {
    const auto start = std::chrono::steady_clock::now();
    out = run_campaign(config);
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(stop - start).count();
  };

  CampaignResult reference;
  const double serial_s = time_run(paper_scale(1), reference);
  std::printf("  threads  wall-clock   speedup   bit-identical\n");
  std::printf("  %7d  %8.2f s  %7.2fx   %s\n", 1, serial_s, 1.0,
              "reference");

  bool all_identical = true;
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4},
                                    std::size_t{8}}) {
    CampaignResult parallel;
    const double wall_s = time_run(paper_scale(threads), parallel);
    const bool identical = bit_identical(reference, parallel);
    all_identical = all_identical && identical;
    std::printf("  %7zu  %8.2f s  %7.2fx   %s\n", threads, wall_s,
                serial_s / wall_s, identical ? "yes" : "NO - BUG");
  }
  std::printf("\n%s\n",
              all_identical
                  ? "every thread count reproduced the serial bits exactly"
                  : "BIT MISMATCH: the parallel engine diverged from the "
                    "serial reference");
  if (!all_identical) {
    std::exit(1);
  }

  // Same axis for the kernel layer: the full campaign end to end with the
  // analysis kernels pinned to the scalar oracle vs the dispatched tier.
  // Like the thread sweep, the speedup must be pure scheduling - bits
  // identical - which run_campaign's kernel_level record plus the
  // bit_identical() audit verify.
  const bitkernel::Level best = bitkernel::active_level();
  if (best != bitkernel::Level::kScalar) {
    std::printf("\nkernel-tier sweep (threads=1):\n");
    CampaignResult scalar_result;
    double scalar_s = 0;
    {
      const bitkernel::ScopedLevel scope(bitkernel::Level::kScalar);
      scalar_s = time_run(paper_scale(1), scalar_result);
    }
    std::printf("  %-7s  %8.2f s  %7.2fx   reference\n", "scalar", scalar_s,
                1.0);
    const bool identical = bit_identical(scalar_result, reference);
    std::printf("  %-7s  %8.2f s  %7.2fx   %s\n",
                bitkernel::level_name(best), serial_s, scalar_s / serial_s,
                identical ? "yes" : "NO - BUG");
    if (!identical) {
      std::printf("BIT MISMATCH: kernel tier %s diverged from the scalar "
                  "oracle\n", bitkernel::level_name(best));
      std::exit(1);
    }
  }
  if (hw < 8) {
    std::printf("note: only %zu hardware thread(s) available; speedups "
                "above that are scheduling overhead, not scaling\n", hw);
  }

  // Observability overhead audit: the same paper-scale campaign with the
  // metrics registry and tracer attached. Two guarantees are on trial —
  //   1. bit-identity (hard requirement: the sinks must never feed back
  //      into the results; a mismatch exits non-zero), and
  //   2. < 2% end-to-end wall-clock overhead (reported; timing noise on a
  //      shared machine makes it a warning, not a hard failure).
  std::printf("\nobservability overhead (threads=1):\n");
  obs::MetricsRegistry metrics;
  obs::Tracer tracer;
  CampaignConfig instrumented_config = paper_scale(1);
  instrumented_config.metrics = &metrics;
  instrumented_config.tracer = &tracer;
  CampaignResult instrumented;
  const double instrumented_s = time_run(instrumented_config, instrumented);
  const bool obs_identical = bit_identical(reference, instrumented);
  const double overhead_pct = (instrumented_s / serial_s - 1.0) * 100.0;
  std::printf("  %-12s  %8.2f s   reference\n", "metrics off", serial_s);
  std::printf("  %-12s  %8.2f s   %+.2f%% overhead, bit-identical: %s\n",
              "metrics on", instrumented_s, overhead_pct,
              obs_identical ? "yes" : "NO - BUG");
  // Machine-readable line for CI trend tracking.
  std::printf("BENCH {\"bench\":\"campaign_scaling.obs_overhead\","
              "\"serial_s\":%.4f,\"instrumented_s\":%.4f,"
              "\"overhead_pct\":%.3f,\"bit_identical\":%s,"
              "\"powerup_samples\":%llu}\n",
              serial_s, instrumented_s, overhead_pct,
              obs_identical ? "true" : "false",
              static_cast<unsigned long long>(
                  metrics.snapshot().histograms.at("campaign.powerup_ns")
                      .count));
  if (!obs_identical) {
    std::printf("BIT MISMATCH: attaching metrics changed the campaign "
                "results\n");
    std::exit(1);
  }
  if (overhead_pct > 2.0) {
    std::printf("warning: observability overhead %.2f%% exceeds the 2%% "
                "budget\n", overhead_pct);
  }

  tilecol_analysis();
  tenk_board_fold();
}

void BM_CampaignMonthThreads(benchmark::State& state) {
  // One monthly snapshot of the 16-device fleet at the given thread count.
  CampaignConfig config;
  config.months = 0;
  config.measurements_per_month = 200;
  config.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_campaign(config));
  }
}
BENCHMARK(BM_CampaignMonthThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace
}  // namespace pufaging

int main(int argc, char** argv) {
  return pufaging::bench::run(argc, argv, pufaging::reproduce);
}
