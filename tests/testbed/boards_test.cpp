#include "testbed/boards.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "silicon/device_factory.hpp"

namespace pufaging {
namespace {

TEST(SignalChannel, DeliversToWaiter) {
  SignalChannel ch;
  int fired = 0;
  ch.wait([&] { ++fired; });
  EXPECT_EQ(fired, 0);
  ch.signal();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(ch.raised(), 1U);
}

TEST(SignalChannel, PendingSignalFiresImmediately) {
  SignalChannel ch;
  ch.signal();
  ch.signal();
  int fired = 0;
  ch.wait([&] { ++fired; });
  EXPECT_EQ(fired, 1);
  ch.wait([&] { ++fired; });
  EXPECT_EQ(fired, 2);
  // Third wait has no pending signal.
  ch.wait([&] { ++fired; });
  EXPECT_EQ(fired, 2);
}

TEST(SignalChannel, SecondWaiterIsAProtocolError) {
  SignalChannel ch;
  ch.wait([] {});
  EXPECT_THROW(ch.wait([] {}), ProtocolError);
}

class SlaveBoardTest : public ::testing::Test {
 protected:
  SlaveBoardTest()
      : slave_(3, make_device(paper_fleet_config(), 3), queue_, timing_) {
    power_.emplace(queue_);
    power_->add_channel(3);
    slave_.attach_power(*power_);
  }

  EventQueue queue_;
  TestbedTiming timing_;
  std::optional<PowerSwitch> power_;
  SlaveBoard slave_;
};

TEST_F(SlaveBoardTest, DataReadyAfterBootDelay) {
  EXPECT_FALSE(slave_.data_ready());
  EXPECT_THROW(slave_.make_frame(), ProtocolError);
  power_->set(3, true);
  EXPECT_FALSE(slave_.data_ready());  // still booting
  queue_.run_until(timing_.boot_delay_s + timing_.read_delay_s + 0.01);
  EXPECT_TRUE(slave_.data_ready());
  const I2cFrame frame = slave_.make_frame();
  EXPECT_TRUE(frame.valid());
  EXPECT_EQ(frame.address, 3);
  EXPECT_EQ(frame.payload.size(), 1024U);  // 1 KByte read-out
}

TEST_F(SlaveBoardTest, PowerLossDropsData) {
  power_->set(3, true);
  queue_.run_until(1.0);
  EXPECT_TRUE(slave_.data_ready());
  power_->set(3, false);
  EXPECT_FALSE(slave_.data_ready());
  EXPECT_THROW(slave_.make_frame(), ProtocolError);
}

TEST_F(SlaveBoardTest, FastPowerCycleDiscardsStaleBoot) {
  power_->set(3, true);
  queue_.run_until(0.1);  // before boot completes
  power_->set(3, false);
  power_->set(3, true);
  queue_.run_until(10.0);
  EXPECT_TRUE(slave_.data_ready());
  // Two power-ups happened: two measurements latched.
  EXPECT_EQ(slave_.device().measurement_count(), 2U);
}

TEST_F(SlaveBoardTest, FrameIsStableForRetries) {
  power_->set(3, true);
  queue_.run_until(1.0);
  const I2cFrame a = slave_.make_frame();
  const I2cFrame b = slave_.make_frame();
  EXPECT_EQ(a.payload, b.payload);
  EXPECT_EQ(a.sequence, b.sequence);
}

TEST_F(SlaveBoardTest, NamesFollowPaperConvention) {
  EXPECT_EQ(slave_.name(), "S3");
  EXPECT_EQ(slave_.board_id(), 3U);
}

TEST(MasterBoard, RequiresSlavesAndConnection) {
  EventQueue q;
  PowerSwitch power(q);
  I2cBus bus(q);
  EXPECT_THROW(MasterBoard("M0", {}, q, power, bus, TestbedTiming{}, nullptr),
               InvalidArgument);
}

}  // namespace
}  // namespace pufaging
