# Empty compiler generated dependencies file for pa_silicon.
# This may be replaced when dependencies are built.
