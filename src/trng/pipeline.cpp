#include "trng/pipeline.hpp"

#include "common/error.hpp"
#include "trng/estimators.hpp"

namespace pufaging {

TrngPipeline::TrngPipeline(SramDevice& device, TrngConfig config)
    : device_(&device), config_(config) {
  recharacterize();
}

void TrngPipeline::recharacterize() {
  selection_ = characterize(*device_, config_.harvester,
                            config_.operating_point);
  if (selection_.cells.empty()) {
    throw Error("TrngPipeline: device has no unstable cells to harvest");
  }
}

std::vector<std::uint8_t> TrngPipeline::generate(std::size_t bytes) {
  if (bytes == 0) {
    return {};
  }
  const double h = selection_.estimated_min_entropy_per_bit;
  Sha256Conditioner conditioner(h, config_.safety_factor);
  // Round the request up to whole conditioner blocks (32 bytes each).
  const std::size_t blocks = (bytes + 31) / 32;
  const std::size_t raw_bits = conditioner.required_input_bits(32) * blocks;

  const std::uint64_t power_ups_before = device_->measurement_count();
  const BitVector raw =
      harvest(*device_, selection_, raw_bits, config_.operating_point);

  stats_ = TrngStats{};
  stats_.raw_bits = raw.size();
  stats_.min_entropy_per_bit = h;
  stats_.assessed_min_entropy = assessed_min_entropy(raw);
  stats_.power_ups = device_->measurement_count() - power_ups_before;
  stats_.health = run_health_tests(raw, h);
  if (!stats_.health.pass()) {
    throw Error("TrngPipeline: health tests rejected the raw noise stream");
  }
  std::vector<std::uint8_t> conditioned = conditioner.condition(raw);
  conditioned.resize(bytes);
  stats_.output_bytes = bytes;
  return conditioned;
}

}  // namespace pufaging
