
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/keygen/bch_test.cpp" "tests/CMakeFiles/pa_keygen_test.dir/keygen/bch_test.cpp.o" "gcc" "tests/CMakeFiles/pa_keygen_test.dir/keygen/bch_test.cpp.o.d"
  "/root/repo/tests/keygen/bit_selection_test.cpp" "tests/CMakeFiles/pa_keygen_test.dir/keygen/bit_selection_test.cpp.o" "gcc" "tests/CMakeFiles/pa_keygen_test.dir/keygen/bit_selection_test.cpp.o.d"
  "/root/repo/tests/keygen/code_property_test.cpp" "tests/CMakeFiles/pa_keygen_test.dir/keygen/code_property_test.cpp.o" "gcc" "tests/CMakeFiles/pa_keygen_test.dir/keygen/code_property_test.cpp.o.d"
  "/root/repo/tests/keygen/concatenated_test.cpp" "tests/CMakeFiles/pa_keygen_test.dir/keygen/concatenated_test.cpp.o" "gcc" "tests/CMakeFiles/pa_keygen_test.dir/keygen/concatenated_test.cpp.o.d"
  "/root/repo/tests/keygen/debias_test.cpp" "tests/CMakeFiles/pa_keygen_test.dir/keygen/debias_test.cpp.o" "gcc" "tests/CMakeFiles/pa_keygen_test.dir/keygen/debias_test.cpp.o.d"
  "/root/repo/tests/keygen/debiased_key_generator_test.cpp" "tests/CMakeFiles/pa_keygen_test.dir/keygen/debiased_key_generator_test.cpp.o" "gcc" "tests/CMakeFiles/pa_keygen_test.dir/keygen/debiased_key_generator_test.cpp.o.d"
  "/root/repo/tests/keygen/fuzzy_extractor_test.cpp" "tests/CMakeFiles/pa_keygen_test.dir/keygen/fuzzy_extractor_test.cpp.o" "gcc" "tests/CMakeFiles/pa_keygen_test.dir/keygen/fuzzy_extractor_test.cpp.o.d"
  "/root/repo/tests/keygen/gf2m_test.cpp" "tests/CMakeFiles/pa_keygen_test.dir/keygen/gf2m_test.cpp.o" "gcc" "tests/CMakeFiles/pa_keygen_test.dir/keygen/gf2m_test.cpp.o.d"
  "/root/repo/tests/keygen/golay_test.cpp" "tests/CMakeFiles/pa_keygen_test.dir/keygen/golay_test.cpp.o" "gcc" "tests/CMakeFiles/pa_keygen_test.dir/keygen/golay_test.cpp.o.d"
  "/root/repo/tests/keygen/key_generator_test.cpp" "tests/CMakeFiles/pa_keygen_test.dir/keygen/key_generator_test.cpp.o" "gcc" "tests/CMakeFiles/pa_keygen_test.dir/keygen/key_generator_test.cpp.o.d"
  "/root/repo/tests/keygen/leakage_test.cpp" "tests/CMakeFiles/pa_keygen_test.dir/keygen/leakage_test.cpp.o" "gcc" "tests/CMakeFiles/pa_keygen_test.dir/keygen/leakage_test.cpp.o.d"
  "/root/repo/tests/keygen/polar_test.cpp" "tests/CMakeFiles/pa_keygen_test.dir/keygen/polar_test.cpp.o" "gcc" "tests/CMakeFiles/pa_keygen_test.dir/keygen/polar_test.cpp.o.d"
  "/root/repo/tests/keygen/repetition_test.cpp" "tests/CMakeFiles/pa_keygen_test.dir/keygen/repetition_test.cpp.o" "gcc" "tests/CMakeFiles/pa_keygen_test.dir/keygen/repetition_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/testbed/CMakeFiles/pa_testbed.dir/DependInfo.cmake"
  "/root/repo/build2/src/analysis/CMakeFiles/pa_analysis.dir/DependInfo.cmake"
  "/root/repo/build2/src/trng/CMakeFiles/pa_trng.dir/DependInfo.cmake"
  "/root/repo/build2/src/keygen/CMakeFiles/pa_keygen.dir/DependInfo.cmake"
  "/root/repo/build2/src/silicon/CMakeFiles/pa_silicon.dir/DependInfo.cmake"
  "/root/repo/build2/src/stats/CMakeFiles/pa_stats.dir/DependInfo.cmake"
  "/root/repo/build2/src/io/CMakeFiles/pa_io.dir/DependInfo.cmake"
  "/root/repo/build2/src/common/CMakeFiles/pa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
