// Reproduces paper Fig. 4: visualized start-up pattern of the first 1 KByte
// of SRAM on board S0 (ones dark, zeros light). The pattern is biased
// toward ones (FHW ~ 63%) with device-unique spatial structure.
// Also writes the full-resolution image to fig4_s0.pgm.
#include "bench_common.hpp"
#include "io/pgm.hpp"
#include "silicon/device_factory.hpp"

namespace pufaging {
namespace {

void reproduce() {
  bench::banner("Fig. 4 - Start-up pattern of 1KB memory on board S0");

  SramDevice s0 = make_device(paper_fleet_config(), 0);
  const BitVector pattern = s0.measure();

  // 8192 bits as a 128x64 bitmap, down-sampled to ASCII (2x4 per char).
  std::printf("%s", bits_to_ascii(pattern, 128, 2, 4).c_str());
  std::printf("\nFHW of this read-out: %.2f%% (paper band: 60-70%%)\n",
              100.0 * pattern.fractional_weight());

  save_pgm(pattern, 128, "fig4_s0.pgm");
  std::printf("full-resolution image written to fig4_s0.pgm (128x64)\n");
}

void BM_MeasureWindow(benchmark::State& state) {
  SramDevice d = make_device(paper_fleet_config(), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.measure());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(BM_MeasureWindow);

void BM_MeasureFullArray(benchmark::State& state) {
  SramDevice d = make_device(paper_fleet_config(), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.measure_full());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          2560);
}
BENCHMARK(BM_MeasureFullArray);

void BM_RenderAscii(benchmark::State& state) {
  SramDevice d = make_device(paper_fleet_config(), 0);
  const BitVector pattern = d.measure();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bits_to_ascii(pattern, 128, 2, 4));
  }
}
BENCHMARK(BM_RenderAscii);

}  // namespace
}  // namespace pufaging

int main(int argc, char** argv) {
  return pufaging::bench::run(argc, argv, pufaging::reproduce);
}
