# Empty dependencies file for key_lifecycle.
# This may be replaced when dependencies are built.
