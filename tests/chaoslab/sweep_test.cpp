#include "chaoslab/sweep.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "chaoslab/cliff.hpp"
#include "chaoslab/test_support.hpp"
#include "common/bitkernel.hpp"
#include "common/error.hpp"

namespace pufaging::chaoslab {
namespace {

std::string read_text(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string riskcliff_dump(const GridSpec& spec, const SweepResult& sweep) {
  return riskcliff_to_json(spec, sweep.fingerprint, sweep.cells,
                           detect_cliffs(spec, sweep.cells))
      .dump();
}

TEST(GridSweep, CompletesEveryCellInOrder) {
  const GridSpec spec = tiny_grid_spec();
  SweepOptions options;
  options.threads = 2;
  const SweepResult result = run_grid_sweep(spec, options);

  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.cells_executed, spec.cell_count());
  EXPECT_EQ(result.cells_resumed, 0u);
  ASSERT_EQ(result.cells.size(), spec.cell_count());
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    EXPECT_EQ(spec.cell_index(result.cells[i].rate_index,
                              result.cells[i].policy_index),
              i);
    EXPECT_EQ(result.cells[i].runs.size(), spec.seeds_per_cell);
  }
  // Higher fault scale must not *improve* best-case coverage for the
  // same policy (sanity of the scaling axis, not a strict theorem —
  // checked on the extreme columns where the signal is unambiguous).
  const CellSummary& mild = result.cells[spec.cell_index(0, 1)];
  const CellSummary& brutal = result.cells[spec.cell_index(2, 1)];
  EXPECT_GT(mild.coverage_mean.mean, brutal.coverage_mean.mean);
}

TEST(GridSweep, ThreadCountIsBitIdentical) {
  const GridSpec spec = tiny_grid_spec();
  SweepOptions serial;
  serial.threads = 1;
  SweepOptions parallel;
  parallel.threads = 4;
  const SweepResult a = run_grid_sweep(spec, serial);
  const SweepResult b = run_grid_sweep(spec, parallel);
  EXPECT_EQ(riskcliff_dump(spec, a), riskcliff_dump(spec, b));
}

TEST(GridSweep, CliffHashIsSimdTierInvariant) {
  // The riskcliff document (hex-exact cell aggregates + the cliff
  // location hash) must not move when the campaigns underneath run on a
  // different kernel tier — the chaos analytics sit on the same
  // bit-identity contract as the physics.
  const GridSpec spec = tiny_grid_spec();
  SweepOptions options;
  options.threads = 2;
  std::string scalar_dump;
  {
    bitkernel::ScopedLevel scoped(bitkernel::Level::kScalar);
    scalar_dump = riskcliff_dump(spec, run_grid_sweep(spec, options));
  }
  const bitkernel::Level best = bitkernel::available_levels().back();
  bitkernel::ScopedLevel scoped(best);
  EXPECT_EQ(riskcliff_dump(spec, run_grid_sweep(spec, options)), scalar_dump)
      << "tier " << bitkernel::level_name(best)
      << " moved the riskcliff document";
}

TEST(GridSweep, HaltAndResumeIsByteIdentical) {
  const GridSpec spec = tiny_grid_spec();

  ScratchDir straight_dir("sweep_straight");
  SweepOptions straight;
  straight.out_dir = straight_dir.str();
  straight.threads = 2;
  const SweepResult uninterrupted = run_grid_sweep(spec, straight);
  ASSERT_TRUE(uninterrupted.completed);

  ScratchDir killed_dir("sweep_killed");
  SweepOptions first_leg;
  first_leg.out_dir = killed_dir.str();
  first_leg.threads = 1;
  first_leg.halt_after_cells = 2;
  const SweepResult halted = run_grid_sweep(spec, first_leg);
  EXPECT_FALSE(halted.completed);
  EXPECT_EQ(halted.cells_executed, 2u);
  EXPECT_EQ(halted.cells.size(), 2u);

  SweepOptions second_leg;
  second_leg.out_dir = killed_dir.str();
  second_leg.threads = 4;  // different thread count on purpose
  second_leg.resume = true;
  const SweepResult resumed = run_grid_sweep(spec, second_leg);
  EXPECT_TRUE(resumed.completed);
  // Completed cells were not re-run.
  EXPECT_EQ(resumed.cells_resumed, 2u);
  EXPECT_EQ(resumed.cells_executed, spec.cell_count() - 2);

  // The headline acceptance check: riskcliff.json byte-identical to the
  // uninterrupted sweep, and so is the state file.
  EXPECT_EQ(riskcliff_dump(spec, resumed),
            riskcliff_dump(spec, uninterrupted));
  EXPECT_EQ(read_text(killed_dir.path / "gridstate.jsonl"),
            read_text(straight_dir.path / "gridstate.jsonl"));
}

TEST(GridSweep, ResumeDiscardsTornTailAndRerunsThatCell) {
  const GridSpec spec = tiny_grid_spec();
  ScratchDir dir("sweep_torn");
  SweepOptions first_leg;
  first_leg.out_dir = dir.str();
  first_leg.threads = 2;
  first_leg.halt_after_cells = 3;
  run_grid_sweep(spec, first_leg);

  // Tear the last cell line mid-record, as a crash during append would.
  const auto state_path = dir.path / "gridstate.jsonl";
  std::string state = read_text(state_path);
  ASSERT_GT(state.size(), 40u);
  state.resize(state.size() - 25);
  {
    std::ofstream out(state_path, std::ios::binary | std::ios::trunc);
    out << state;
  }

  SweepOptions second_leg;
  second_leg.out_dir = dir.str();
  second_leg.threads = 2;
  second_leg.resume = true;
  const SweepResult resumed = run_grid_sweep(spec, second_leg);
  EXPECT_TRUE(resumed.completed);
  EXPECT_EQ(resumed.cells_resumed, 2u);  // torn third cell discarded
  EXPECT_EQ(resumed.cells_executed, spec.cell_count() - 2);

  ScratchDir straight_dir("sweep_torn_ref");
  SweepOptions straight;
  straight.out_dir = straight_dir.str();
  straight.threads = 2;
  const SweepResult uninterrupted = run_grid_sweep(spec, straight);
  EXPECT_EQ(riskcliff_dump(spec, resumed),
            riskcliff_dump(spec, uninterrupted));
}

TEST(GridSweep, ResumeRefusesForeignFingerprint) {
  const GridSpec spec = tiny_grid_spec();
  ScratchDir dir("sweep_foreign");
  SweepOptions first_leg;
  first_leg.out_dir = dir.str();
  first_leg.threads = 2;
  first_leg.halt_after_cells = 1;
  run_grid_sweep(spec, first_leg);

  GridSpec other = spec;
  other.master_seed ^= 1;
  SweepOptions resume;
  resume.out_dir = dir.str();
  resume.resume = true;
  EXPECT_THROW(run_grid_sweep(other, resume), IoError);

  // Without --resume the stale state is overwritten, not trusted.
  SweepOptions fresh;
  fresh.out_dir = dir.str();
  fresh.threads = 2;
  fresh.halt_after_cells = 0;
  const SweepResult result = run_grid_sweep(other, fresh);
  EXPECT_EQ(result.cells_resumed, 0u);
  EXPECT_EQ(result.cells.size(), 0u);
  const std::string state = read_text(dir.path / "gridstate.jsonl");
  EXPECT_NE(state.find(grid_fingerprint(other)), std::string::npos);
}

TEST(GridSweep, ParseGridStateRejectsGarbageHeader) {
  const GridSpec spec = tiny_grid_spec();
  const std::string fp = grid_fingerprint(spec);
  EXPECT_THROW(parse_grid_state("", spec, fp), ParseError);
  EXPECT_THROW(parse_grid_state("not json\n", spec, fp), ParseError);
  EXPECT_THROW(
      parse_grid_state("{\"kind\":\"something_else\",\"fingerprint\":\"" +
                           fp + "\"}\n",
                       spec, fp),
      ParseError);
}

TEST(GridSweep, InvalidSpecIsRejectedUpFront) {
  GridSpec spec = tiny_grid_spec();
  spec.seeds_per_cell = 0;
  EXPECT_THROW(run_grid_sweep(spec, SweepOptions{}), InvalidArgument);
}

}  // namespace
}  // namespace pufaging::chaoslab
