file(REMOVE_RECURSE
  "CMakeFiles/chaos_campaign.dir/chaos_campaign.cpp.o"
  "CMakeFiles/chaos_campaign.dir/chaos_campaign.cpp.o.d"
  "chaos_campaign"
  "chaos_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaos_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
