// Deterministic random-number generation for reproducible simulation.
//
// Three generators are provided:
//  - SplitMix64: seed expansion / hashing.
//  - Xoshiro256StarStar: fast general-purpose stream generator, used on the
//    hot path of power-up sampling (one uniform per SRAM cell per read-out).
//  - Philox4x32: counter-based generator, used where random values must be
//    addressable by coordinates (device, cell) so that fleet construction is
//    order-independent and parallel-friendly.
//
// All generators are deterministic functions of their seeds; the whole
// two-year campaign simulation is bit-exactly reproducible from one seed.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

namespace pufaging {

/// SplitMix64 (Steele, Lea, Flood 2014). Primarily a seed expander: feed it
/// an arbitrary 64-bit value and draw as many well-mixed words as needed.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna 2018). Fast, 256-bit state, passes
/// BigCrush; the workhorse stream generator for measurement noise.
class Xoshiro256StarStar {
 public:
  /// Seeds the 256-bit state by expanding `seed` through SplitMix64.
  explicit Xoshiro256StarStar(std::uint64_t seed);

  /// Next 64 uniform random bits.
  std::uint64_t next();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal variate (Marsaglia polar method with caching).
  double gaussian();

  /// Normal variate with the given mean and standard deviation.
  double gaussian(double mean, double stddev);

  /// Bernoulli draw that is exact to within 2^-64 of probability `p01`
  /// expressed as a 64-bit threshold; see `bernoulli_threshold`.
  bool bernoulli_u64(std::uint64_t threshold) { return next() < threshold; }

  /// Bernoulli draw with probability `p` in [0, 1].
  bool bernoulli(double p);

  /// Uniform integer in [0, bound).
  std::uint64_t below(std::uint64_t bound);

  /// The raw 256-bit generator state, for campaign checkpointing. The
  /// cached spare gaussian (if any) is NOT part of the state; capture only
  /// at points where no gaussian() call is half-consumed (true between
  /// measurements — the power-up sampling hot path never draws gaussians).
  std::array<std::uint64_t, 4> state() const { return state_; }

  /// Restores a previously captured state and drops any cached gaussian.
  void set_state(const std::array<std::uint64_t, 4>& state);

 private:
  std::array<std::uint64_t, 4> state_{};
  std::optional<double> cached_gaussian_;
};

/// Converts probability p in [0,1] to a threshold t such that a uniform
/// 64-bit draw u satisfies Pr(u < t) == p up to 2^-64 resolution.
std::uint64_t bernoulli_threshold(double p);

/// Philox4x32-10 (Salmon et al., SC'11). Counter-based: random value =
/// f(key, counter), so coordinates map directly to reproducible randomness.
class Philox4x32 {
 public:
  using Counter = std::array<std::uint32_t, 4>;
  using Key = std::array<std::uint32_t, 2>;

  /// 10-round Philox block function.
  static Counter block(Counter counter, Key key);

  /// Convenience: 64-bit value addressed by (key64, index).
  static std::uint64_t at(std::uint64_t key64, std::uint64_t index);

  /// Standard normal variate addressed by (key64, index), via Box-Muller on
  /// two lanes of one Philox block. Deterministic per coordinate.
  static double gaussian_at(std::uint64_t key64, std::uint64_t index);
};

/// Splits a root seed into an independent child-stream seed addressed by
/// (domain, index), via one counter-based Philox evaluation:
///
///     child = Philox(root ^ domain, index)
///
/// Because the split is a pure function of its coordinates, streams can be
/// derived in any order — or concurrently from many threads — and always
/// yield the same child seeds. This is how the fleet seed fans out into
/// per-device process-variation keys and measurement-noise streams, which
/// in turn is what makes the parallel campaign engine bit-identical to the
/// serial one: device d's randomness never depends on when (or on which
/// thread) device d is simulated.
std::uint64_t split_seed(std::uint64_t root, std::uint64_t domain,
                         std::uint64_t index);

}  // namespace pufaging
