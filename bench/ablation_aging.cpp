// Ablation B: the three BTI aging components (DESIGN.md calibration note).
// Each component is switched off in turn over a 12-month run to show what
// it contributes to the Table I trajectories:
//  - systematic drift     -> stable-cell decline & noise-entropy rise
//  - per-cell variability -> WCHD rise with flat ensemble statistics
//  - noise-floor growth   -> uniform rise of all three noise metrics
#include "bench_common.hpp"
#include "io/table.hpp"
#include "testbed/campaign.hpp"

namespace pufaging {
namespace {

struct Variant {
  const char* name;
  double amplitude;
  double variability;
  double noise_growth;
};

void reproduce() {
  bench::banner("Ablation B - contribution of each BTI aging component");
  const AgingParams defaults;

  const Variant variants[] = {
      {"full model", defaults.amplitude_noise_units,
       defaults.variability_noise_units, defaults.noise_growth_per_tau},
      {"no systematic drift", 0.0, defaults.variability_noise_units,
       defaults.noise_growth_per_tau},
      {"no variability", defaults.amplitude_noise_units, 0.0,
       defaults.noise_growth_per_tau},
      {"no noise growth", defaults.amplitude_noise_units,
       defaults.variability_noise_units, 0.0},
      {"no aging at all", 0.0, 0.0, 0.0},
  };

  TablePrinter t({"Variant", "dWCHD", "dStable", "dNoiseEnt", "dHW"},
                 {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                  Align::kRight});
  for (const Variant& v : variants) {
    CampaignConfig config;
    config.months = 12;
    config.measurements_per_month = 300;
    config.fleet.device.aging.amplitude_noise_units = v.amplitude;
    config.fleet.device.aging.variability_noise_units = v.variability;
    config.fleet.device.aging.noise_growth_per_tau = v.noise_growth;
    const CampaignResult r = run_campaign(config);
    const FleetMonthMetrics& s = r.series.front();
    const FleetMonthMetrics& e = r.series.back();
    t.add_row({v.name,
               TablePrinter::signed_percent(e.wchd_avg / s.wchd_avg - 1.0, 1),
               TablePrinter::signed_percent(
                   e.stable_avg / s.stable_avg - 1.0, 1),
               TablePrinter::signed_percent(
                   e.noise_entropy_avg / s.noise_entropy_avg - 1.0, 1),
               TablePrinter::signed_percent(e.fhw_avg / s.fhw_avg - 1.0, 2)});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf(
      "\n(12-month relative changes; the paper's 24-month full-model values\n"
      " are WCHD +19.3%%, stable -2.5%%, noise entropy +19.3%%, HW flat)\n");
}

void BM_AgingSubsteps(benchmark::State& state) {
  // Integration cost as a function of Euler substeps per month.
  const auto substeps = static_cast<std::size_t>(state.range(0));
  SramDevice d = make_device(paper_fleet_config(), 0);
  std::vector<double> mismatch(8192, 0.1);
  BtiAgingModel model(AgingParams{}, 1.0 / 17.5);
  for (auto _ : state) {
    model.advance(mismatch, 1.0 / 17.5, 1.0, nominal_conditions(), {},
                  substeps);
  }
}
BENCHMARK(BM_AgingSubsteps)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pufaging

int main(int argc, char** argv) {
  return pufaging::bench::run(argc, argv, pufaging::reproduce);
}
