// Repetition code: the classic inner code for PUF fuzzy extractors.
#pragma once

#include "keygen/code.hpp"

namespace pufaging {

/// (n, 1) repetition code with odd n; majority decoding corrects
/// t = (n-1)/2 errors. As the inner stage of a concatenated construction
/// it hammers the raw PUF BER (a few percent, rising with age) down to the
/// residual rate the outer code mops up.
class RepetitionCode final : public BlockCode {
 public:
  explicit RepetitionCode(std::size_t n);

  std::size_t block_length() const override { return n_; }
  std::size_t message_length() const override { return 1; }
  std::size_t correctable() const override { return (n_ - 1) / 2; }
  std::string name() const override;

  BitVector encode(const BitVector& message) const override;
  DecodeResult decode(const BitVector& word) const override;

 private:
  std::size_t n_;
};

}  // namespace pufaging
