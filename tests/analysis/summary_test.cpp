#include "analysis/summary.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace pufaging {
namespace {

FleetMonthMetrics month_metrics(double month, double wchd, double hnoise) {
  FleetMonthMetrics m;
  m.month = month;
  m.devices.resize(2);
  m.devices[0].first_pattern = BitVector(8);
  m.devices[1].first_pattern = BitVector(8);
  m.wchd_avg = wchd;
  m.wchd_wc = wchd * 1.1;
  m.fhw_avg = 0.627;
  m.fhw_wc = 0.6578;
  m.stable_avg = 0.859;
  m.stable_wc = 0.872;
  m.noise_entropy_avg = hnoise;
  m.noise_entropy_wc = hnoise * 0.9;
  m.bchd_avg = 0.4679;
  m.bchd_wc = 0.4431;
  m.puf_entropy = 0.6492;
  return m;
}

TEST(SummaryTable, PaperNumbersReproduceChangeColumns) {
  const std::vector<FleetMonthMetrics> series = {
      month_metrics(0.0, 0.0249, 0.0305), month_metrics(24.0, 0.0297, 0.0364)};
  const SummaryTable table = build_summary_table(series);
  EXPECT_EQ(table.months, 24U);
  ASSERT_EQ(table.rows.size(), 11U);

  const SummaryRow& wchd_avg = table.rows[0];
  EXPECT_EQ(wchd_avg.metric, "WCHD");
  EXPECT_EQ(wchd_avg.variant, "AVG.");
  EXPECT_DOUBLE_EQ(wchd_avg.start, 0.0249);
  EXPECT_DOUBLE_EQ(wchd_avg.end, 0.0297);
  EXPECT_NEAR(wchd_avg.relative_change, 0.193, 0.002);
  EXPECT_NEAR(wchd_avg.monthly_change, 0.0074, 1e-4);

  const SummaryRow& hnoise = table.rows[6];
  EXPECT_EQ(hnoise.metric, "Noise entropy");
  EXPECT_NEAR(hnoise.relative_change, 0.193, 0.002);
}

TEST(SummaryTable, FlatMetricsHaveNegligibleChange) {
  const std::vector<FleetMonthMetrics> series = {
      month_metrics(0.0, 0.0249, 0.0305), month_metrics(24.0, 0.0297, 0.0364)};
  const SummaryTable table = build_summary_table(series);
  // HW AVG. row has identical start and end.
  EXPECT_DOUBLE_EQ(table.rows[2].relative_change, 0.0);
  const std::string rendered = render_summary_table(table);
  EXPECT_NE(rendered.find("negligible"), std::string::npos);
  EXPECT_NE(rendered.find("WCHD"), std::string::npos);
  EXPECT_NE(rendered.find("PUF entropy"), std::string::npos);
  EXPECT_NE(rendered.find("+19.3%"), std::string::npos);
}

TEST(SummaryTable, Validation) {
  EXPECT_THROW(build_summary_table({}), InvalidArgument);
  EXPECT_THROW(build_summary_table({month_metrics(0, 0.02, 0.03)}),
               InvalidArgument);
  EXPECT_THROW(build_summary_table({month_metrics(0, 0.02, 0.03),
                                    month_metrics(0.0, 0.03, 0.04)}),
               InvalidArgument);
}

TEST(SummaryTable, DeadEndpointYieldsNaNotNaN) {
  // A campaign whose final month lost every board reports zeroed metrics;
  // the change columns are undefined there, and must say so instead of
  // emitting NaN (regression: geometric_monthly_change threw on zero).
  std::vector<FleetMonthMetrics> series = {month_metrics(0.0, 0.0249, 0.0305),
                                           month_metrics(24.0, 0.0, 0.0)};
  series[1].fhw_avg = 0.0;
  series[1].fhw_wc = 0.0;
  series[1].stable_avg = 0.0;
  series[1].stable_wc = 0.0;
  series[1].bchd_avg = 0.0;
  series[1].bchd_wc = 0.0;
  series[1].puf_entropy = 0.0;
  const SummaryTable table = build_summary_table(series);
  for (const SummaryRow& row : table.rows) {
    EXPECT_FALSE(row.change_defined) << row.metric << " " << row.variant;
    EXPECT_DOUBLE_EQ(row.relative_change, 0.0);
    EXPECT_DOUBLE_EQ(row.monthly_change, 0.0);
    EXPECT_FALSE(std::isnan(row.relative_change));
  }
  const std::string rendered = render_summary_table(table);
  EXPECT_NE(rendered.find("n/a"), std::string::npos);
  EXPECT_EQ(rendered.find("nan"), std::string::npos);
  EXPECT_EQ(rendered.find("-nan"), std::string::npos);
}

TEST(SummaryTable, IntermediateMonthsIgnored) {
  const std::vector<FleetMonthMetrics> series = {
      month_metrics(0.0, 0.02, 0.03), month_metrics(1.0, 0.09, 0.09),
      month_metrics(10.0, 0.04, 0.05)};
  const SummaryTable table = build_summary_table(series);
  EXPECT_EQ(table.months, 10U);
  EXPECT_DOUBLE_EQ(table.rows[0].start, 0.02);
  EXPECT_DOUBLE_EQ(table.rows[0].end, 0.04);
}

}  // namespace
}  // namespace pufaging
