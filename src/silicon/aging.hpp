// Bias Temperature Instability (BTI) aging of SRAM cells.
//
// Physics reproduced from Section II-B of the paper, with three standard
// BTI phenomena, all power-law in stress time (tau(t) = t^exponent):
//
//  1. Systematic NBTI/PBTI drift toward balance. While a cell stores state
//     Q, the switched-on PMOS accumulates threshold shift; because the
//     preferred state keeps the *stronger* transistor on, the shift always
//     reduces |Vth,P2 - Vth,P1|. Mean-field form: with q_i = Pr(power-up
//     to 1), dv_i = -amplitude * (2 q_i - 1) * d(tau). Fastest for fully
//     skewed cells, zero for balanced ones — exactly the self-limiting,
//     non-monotonic behaviour the paper's Section IV-D discussion derives.
//  2. Stochastic aging variability. BTI in deeply scaled devices is a
//     discrete-trap phenomenon: individual cells take cell-specific random
//     walks on top of the mean drift. Modelled as a frozen per-cell random
//     direction eta_i accumulating as variability * eta_i * d(tau). This
//     component moves individual cells (raising WCHD against the day-0
//     reference) while leaving every ensemble-static metric (HW, BCHD, PUF
//     entropy) unchanged.
//  3. Noise-floor growth. Aging generates interface traps whose random
//     telegraph noise raises the power-up noise sigma; modelled as a
//     multiplicative factor 1 + noise_growth * tau(t) on sigma_n. Raises
//     WCHD, noise entropy and the unstable-cell count together.
//
// Stress time advances faster at elevated temperature/voltage (Arrhenius +
// exponential voltage law), and the drift amplitude itself grows with
// temperature — the combination reproduces the accelerated-aging
// comparison of Section IV-D.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "silicon/operating_point.hpp"

namespace pufaging {

/// Parameters of the BTI aging law. The default values are calibrated so a
/// 16-device fleet reproduces the paper's Table I trajectories.
struct AgingParams {
  /// Systematic drift per unit tau for a fully skewed cell, in units of
  /// the nominal noise sigma.
  double amplitude_noise_units = 0.031;

  /// Stochastic per-cell drift per unit tau (std of the frozen random
  /// direction), in nominal-noise-sigma units.
  double variability_noise_units = 0.170;

  /// Relative noise-sigma growth per unit tau.
  double noise_growth_per_tau = 0.036;

  /// Power-law exponent of tau(t) = t^exponent with t in stress months.
  /// Sub-linear => monthly change decreases over the test, as observed.
  double exponent = 0.45;

  /// Fraction of the powered time the boards are actually on; the paper's
  /// rig has a 5.4 s cycle with 3.8 s on (Fig. 3), i.e. ~0.704.
  double duty_cycle = 3.8 / 5.4;

  /// Relative increase of the drift amplitude per degree C above 25 C.
  /// This super-Arrhenius component of BTI is what the standard
  /// acceleration-factor extrapolation misattributes to pure time
  /// compression — and therefore why accelerated aging overestimates the
  /// nominal degradation rate (the paper's central finding: 1.28%/month
  /// from accelerated data [5] vs 0.74%/month measured at nominal).
  double amplitude_temp_coeff_per_c = 0.028;
};

/// Parameters mapping operating conditions to a stress-time acceleration
/// factor (relative to nominal conditions).
struct AccelerationParams {
  double activation_energy_ev = 0.5;  ///< Arrhenius Ea for BTI.
  double voltage_gamma_per_v = 2.0;   ///< Exponential voltage factor.
};

/// Computes the stress-time acceleration factor of an operating point
/// relative to nominal conditions (== 1 at nominal).
double acceleration_factor(const OperatingPoint& op,
                           const AccelerationParams& params = {});

/// Mutable aging state + drift integrator for one device.
class BtiAgingModel {
 public:
  /// `variability_key` seeds the frozen per-cell random directions
  /// (component 2); pass the device key so aging is reproducible per
  /// device.
  BtiAgingModel(const AgingParams& params, double nominal_noise_sigma,
                std::uint64_t variability_key = 0);

  /// Advances aging by `months` of wall-clock time at operating point `op`.
  /// `mismatch` is updated in place; `noise_sigma` is the *unaged* sigma at
  /// the operating point (the model applies its own growth factor when
  /// evaluating q_i). Integration uses `substeps_per_month` Euler steps.
  void advance(std::span<double> mismatch, double noise_sigma, double months,
               const OperatingPoint& op = nominal_conditions(),
               const AccelerationParams& accel = {},
               std::size_t substeps_per_month = 4);

  /// Accumulated effective stress time in months (wall months x duty x AF).
  double stress_months() const { return stress_months_; }

  /// Multiplier to apply to the unaged noise sigma (>= 1; component 3).
  double noise_factor() const { return 1.0 + noise_growth_; }

  const AgingParams& params() const { return params_; }

 private:
  AgingParams params_;
  double drift_per_tau_;       ///< Systematic amplitude, absolute units.
  double variability_per_tau_; ///< Stochastic amplitude, absolute units.
  std::uint64_t variability_key_;
  double stress_months_ = 0.0;
  double noise_growth_ = 0.0;
};

}  // namespace pufaging
