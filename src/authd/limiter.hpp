// Admission policy of the authentication daemon: token-bucket rate
// limiting plus an escalating per-device lockout ladder.
//
// The rate limiter throttles *volume*: each device id owns a token
// bucket refilled at a fixed rate, so a single chatty client cannot
// monopolize the admission queue. The lockout ladder throttles
// *impostors*: repeated kRejectKey decisions (the signature of
// brute-force guessing against an enrolled device — the Gao et al.
// recycled-silicon threat) walk the same bounded-retry → lockout →
// backed-off probe state machine the chaos rig uses for misbehaving
// boards. Each ladder level doubles the lockout window up to a cap;
// an accepted authentication resets the device to level zero.
//
// Both are pure functions of (state, now_ns) — no RNG, no wall clock of
// their own — so a FakeClock drives every test deterministically, and
// the ladder's durable form (snapshot + WAL events through a
// MeasurementStore) recovers bit-identically after any power cut: the
// kill-point sweep asserts state_hash() equality, not just "roughly the
// same lockouts".
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "store/store.hpp"

namespace pufaging::authd {

struct RateLimiterConfig {
  /// Bucket capacity (burst size) per device id; 0 disables limiting.
  std::uint32_t burst = 32;
  /// Sustained tokens per second per device id.
  double tokens_per_sec = 1000.0;
  /// Buckets tracked at once; least-recently-refilled evicted beyond it.
  std::size_t max_tracked = 1 << 20;
};

/// Per-device token buckets, lazily materialized. Untracked devices are
/// full buckets — forgetting a device can only err toward admitting.
class RateLimiter {
 public:
  explicit RateLimiter(const RateLimiterConfig& config);

  /// Takes one token for `device_id` at time `now_ns`. Returns 0 when
  /// admitted, else the earliest now_ns at which a token will exist.
  std::uint64_t try_acquire(std::uint64_t device_id, std::uint64_t now_ns);

  std::size_t tracked() const { return buckets_.size(); }

 private:
  struct Bucket {
    double tokens = 0.0;
    std::uint64_t refilled_ns = 0;
  };

  RateLimiterConfig config_;
  std::map<std::uint64_t, Bucket> buckets_;
};

struct LockoutConfig {
  /// Consecutive strikes before the first lockout.
  std::uint32_t retry_budget = 5;
  /// First lockout window; level L locks for base << L.
  std::uint64_t base_lockout_ns = 1'000'000'000;  // 1 s
  /// Highest backoff level (caps the shift; 2^10 s ~= 17 min default).
  std::uint32_t max_level = 10;
  /// Count kRejectDecode as a strike too. An impostor read under the
  /// wrong helper data usually fails ECC decode rather than reaching the
  /// key comparison, so a brute-force run against an enrolled identity
  /// looks like decode failures; with this off only kRejectKey walks the
  /// ladder. Genuine devices are protected either way by the budget and
  /// the accept-resets rule.
  bool strike_on_decode = true;
};

/// One device's position on the ladder.
struct LockoutEntry {
  std::uint32_t strikes = 0;      ///< Consecutive reject-key count.
  std::uint32_t level = 0;        ///< Backoff level reached so far.
  std::uint64_t locked_until_ns = 0;  ///< 0 = not currently locked.

  bool operator==(const LockoutEntry&) const = default;
};

/// Durable ladder event: the WAL record appended on every transition.
/// Versioned little-endian layout ("PALK1"); malformed input is a
/// ParseError with the failing offset.
struct LockoutEvent {
  std::uint64_t device_id = 0;
  LockoutEntry entry;  ///< The device's state AFTER the transition.
};

std::string serialize_lockout_event(const LockoutEvent& event);
LockoutEvent parse_lockout_event(std::string_view bytes);

class LockoutLadder {
 public:
  explicit LockoutLadder(const LockoutConfig& config);

  const LockoutConfig& config() const { return config_; }

  /// Gate check before admitting a request. Returns 0 when the device
  /// may proceed, else the ns timestamp its lockout expires at. After
  /// expiry the device is in probe: requests flow again, but the ladder
  /// level is retained, so the next strike run locks longer.
  std::uint64_t check(std::uint64_t device_id, std::uint64_t now_ns) const;

  /// Feeds one auth outcome through the state machine; `strike` is a
  /// failed attempt against this identity (kRejectKey, plus kRejectDecode
  /// when strike_on_decode). Returns the transition to persist when the
  /// device's entry changed (accept clearing a clean device returns
  /// nullopt).
  std::optional<LockoutEvent> on_decision(std::uint64_t device_id,
                                          bool accepted, bool strike,
                                          std::uint64_t now_ns);

  /// Devices with any ladder state (strikes, level or live lock).
  std::size_t tracked() const { return entries_.size(); }
  std::size_t locked(std::uint64_t now_ns) const;

  const LockoutEntry* find(std::uint64_t device_id) const;

  /// Replays one durable event (recovery path).
  void apply_event(const LockoutEvent& event);

  /// Serializes the whole table ("PALS1" | count | id,entry...), ids
  /// ascending — the snapshot blob published through the store.
  std::string serialize_snapshot() const;
  static LockoutLadder from_snapshot(std::string_view blob,
                                     const LockoutConfig& config);

  /// SHA-256 over the canonical snapshot serialization: the recovery
  /// bit-identity witness of the kill-point sweep.
  std::string state_hash() const;

 private:
  LockoutConfig config_;
  std::map<std::uint64_t, LockoutEntry> entries_;
};

/// Recovers a ladder from an opened store: snapshot + WAL event replay.
LockoutLadder load_lockouts(const MeasurementStore& store,
                            const LockoutConfig& config);

/// Publishes the ladder as the store's next snapshot generation.
void publish_lockouts(MeasurementStore& store, const LockoutLadder& ladder);

}  // namespace pufaging::authd
