#include "testbed/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <sstream>

#include "common/error.hpp"

namespace pufaging {

namespace {

constexpr int kCheckpointVersion = 1;

std::string u64_to_hex(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

std::uint64_t u64_from_hex(const std::string& hex) {
  if (hex.empty() || hex.size() > 16) {
    throw ParseError("checkpoint: bad u64 hex '" + hex + "'");
  }
  std::uint64_t v = 0;
  for (char c : hex) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      v |= static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      throw ParseError("checkpoint: bad u64 hex '" + hex + "'");
    }
  }
  return v;
}

Json device_metrics_to_json(const DeviceMonthMetrics& d) {
  Json obj = Json::object();
  obj.set("id", Json(d.device_id));
  obj.set("count", Json(d.measurement_count));
  obj.set("wchd", Json(double_to_hex_bits(d.wchd_mean)));
  obj.set("fhw", Json(double_to_hex_bits(d.fhw_mean)));
  obj.set("stable", Json(double_to_hex_bits(d.stable_ratio)));
  obj.set("noise", Json(double_to_hex_bits(d.noise_entropy)));
  obj.set("first_bits", Json(static_cast<std::uint64_t>(d.first_pattern.size())));
  obj.set("first", Json(d.first_pattern.to_hex()));
  return obj;
}

DeviceMonthMetrics device_metrics_from_json(const Json& obj) {
  DeviceMonthMetrics d;
  d.device_id = static_cast<std::uint32_t>(obj.at("id").as_int());
  d.measurement_count = static_cast<std::uint64_t>(obj.at("count").as_int());
  d.wchd_mean = double_from_hex_bits(obj.at("wchd").as_string());
  d.fhw_mean = double_from_hex_bits(obj.at("fhw").as_string());
  d.stable_ratio = double_from_hex_bits(obj.at("stable").as_string());
  d.noise_entropy = double_from_hex_bits(obj.at("noise").as_string());
  const auto bits = static_cast<std::size_t>(obj.at("first_bits").as_int());
  d.first_pattern = BitVector::from_hex(obj.at("first").as_string(), bits);
  return d;
}

/// One device's resumable state + resilience state + reference, shared by
/// the snapshot device lines and the WAL month-ledger records.
Json device_state_to_json(const DeviceCheckpoint& dev,
                          const BoardFaultState& fault_state,
                          const BitVector& reference) {
  Json obj = Json::object();
  obj.set("id", Json(dev.device_id));
  Json rng = Json::array();
  for (std::uint64_t word : dev.rng_state) {
    rng.push_back(Json(u64_to_hex(word)));
  }
  obj.set("rng", std::move(rng));
  obj.set("count", Json(dev.measurement_count));
  obj.set("fault_state", board_fault_state_to_json(fault_state));
  obj.set("reference_bits", Json(static_cast<std::uint64_t>(reference.size())));
  obj.set("reference", Json(reference.to_hex()));
  return obj;
}

void device_state_from_json(const Json& obj, DeviceCheckpoint& dev,
                            BoardFaultState& fault_state,
                            BitVector& reference) {
  dev.device_id = static_cast<std::uint32_t>(obj.at("id").as_int());
  const Json::Array& rng = obj.at("rng").as_array();
  if (rng.size() != dev.rng_state.size()) {
    throw ParseError("checkpoint: bad RNG state length");
  }
  for (std::size_t i = 0; i < rng.size(); ++i) {
    dev.rng_state[i] = u64_from_hex(rng[i].as_string());
  }
  dev.measurement_count = static_cast<std::uint64_t>(obj.at("count").as_int());
  fault_state = board_fault_state_from_json(obj.at("fault_state"));
  const auto bits = static_cast<std::size_t>(obj.at("reference_bits").as_int());
  reference = BitVector::from_hex(obj.at("reference").as_string(), bits);
}

void check_state_shape(const CampaignCheckpoint& ckpt, const char* who) {
  if (ckpt.devices.size() != ckpt.fault_states.size() ||
      ckpt.devices.size() != ckpt.references.size()) {
    throw InvalidArgument(std::string(who) +
                          ": device/fault-state/reference counts differ");
  }
}

}  // namespace

std::string double_to_hex_bits(double value) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof value);
  std::memcpy(&bits, &value, sizeof bits);
  return u64_to_hex(bits);
}

double double_from_hex_bits(const std::string& hex) {
  const std::uint64_t bits = u64_from_hex(hex);
  double value;
  std::memcpy(&value, &bits, sizeof value);
  return value;
}

Json fleet_month_to_json(const FleetMonthMetrics& m) {
  Json obj = Json::object();
  obj.set("month", Json(double_to_hex_bits(m.month)));
  obj.set("wchd_avg", Json(double_to_hex_bits(m.wchd_avg)));
  obj.set("wchd_wc", Json(double_to_hex_bits(m.wchd_wc)));
  obj.set("fhw_avg", Json(double_to_hex_bits(m.fhw_avg)));
  obj.set("fhw_wc", Json(double_to_hex_bits(m.fhw_wc)));
  obj.set("stable_avg", Json(double_to_hex_bits(m.stable_avg)));
  obj.set("stable_wc", Json(double_to_hex_bits(m.stable_wc)));
  obj.set("noise_avg", Json(double_to_hex_bits(m.noise_entropy_avg)));
  obj.set("noise_wc", Json(double_to_hex_bits(m.noise_entropy_wc)));
  obj.set("bchd_avg", Json(double_to_hex_bits(m.bchd_avg)));
  obj.set("bchd_wc", Json(double_to_hex_bits(m.bchd_wc)));
  obj.set("puf_entropy", Json(double_to_hex_bits(m.puf_entropy)));
  obj.set("expected", Json(static_cast<std::uint64_t>(m.devices_expected)));
  obj.set("reporting", Json(static_cast<std::uint64_t>(m.devices_reporting)));
  obj.set("coverage", Json(double_to_hex_bits(m.coverage)));
  obj.set("degraded", Json(m.degraded));
  Json devices = Json::array();
  for (const DeviceMonthMetrics& d : m.devices) {
    devices.push_back(device_metrics_to_json(d));
  }
  obj.set("devices", std::move(devices));
  return obj;
}

FleetMonthMetrics fleet_month_from_json(const Json& json) {
  FleetMonthMetrics m;
  m.month = double_from_hex_bits(json.at("month").as_string());
  m.wchd_avg = double_from_hex_bits(json.at("wchd_avg").as_string());
  m.wchd_wc = double_from_hex_bits(json.at("wchd_wc").as_string());
  m.fhw_avg = double_from_hex_bits(json.at("fhw_avg").as_string());
  m.fhw_wc = double_from_hex_bits(json.at("fhw_wc").as_string());
  m.stable_avg = double_from_hex_bits(json.at("stable_avg").as_string());
  m.stable_wc = double_from_hex_bits(json.at("stable_wc").as_string());
  m.noise_entropy_avg = double_from_hex_bits(json.at("noise_avg").as_string());
  m.noise_entropy_wc = double_from_hex_bits(json.at("noise_wc").as_string());
  m.bchd_avg = double_from_hex_bits(json.at("bchd_avg").as_string());
  m.bchd_wc = double_from_hex_bits(json.at("bchd_wc").as_string());
  m.puf_entropy = double_from_hex_bits(json.at("puf_entropy").as_string());
  m.devices_expected = static_cast<std::size_t>(json.at("expected").as_int());
  m.devices_reporting = static_cast<std::size_t>(json.at("reporting").as_int());
  m.coverage = double_from_hex_bits(json.at("coverage").as_string());
  m.degraded = json.at("degraded").as_bool();
  for (const Json& d : json.at("devices").as_array()) {
    m.devices.push_back(device_metrics_from_json(d));
  }
  return m;
}

std::string checkpoint_to_jsonl(const CampaignCheckpoint& ckpt) {
  check_state_shape(ckpt, "checkpoint_to_jsonl");
  std::ostringstream os;
  {
    Json header = Json::object();
    header.set("kind", Json("header"));
    header.set("version", Json(kCheckpointVersion));
    header.set("next_month", Json(static_cast<std::uint64_t>(ckpt.next_month)));
    header.set("fleet_seed", Json(u64_to_hex(ckpt.fleet_seed)));
    header.set("device_count",
               Json(static_cast<std::uint64_t>(ckpt.device_count)));
    header.set("months", Json(static_cast<std::uint64_t>(ckpt.months)));
    header.set("measurements_per_month",
               Json(static_cast<std::uint64_t>(ckpt.measurements_per_month)));
    header.set("fault_plan", Json(ckpt.fault_plan_json));
    os << header.dump() << "\n";
  }
  for (std::size_t d = 0; d < ckpt.devices.size(); ++d) {
    Json line = device_state_to_json(ckpt.devices[d], ckpt.fault_states[d],
                                     ckpt.references[d]);
    line.set("kind", Json("device"));
    os << line.dump() << "\n";
  }
  for (const FleetMonthMetrics& m : ckpt.series) {
    Json line = fleet_month_to_json(m);
    line.set("kind", Json("month"));
    os << line.dump() << "\n";
  }
  {
    Json line = Json::object();
    line.set("kind", Json("health"));
    line.set("months", campaign_health_to_json(ckpt.health));
    os << line.dump() << "\n";
  }
  return os.str();
}

CampaignCheckpoint checkpoint_from_jsonl(const std::string& text) {
  // Strictness first: the writer always terminates the blob with a
  // newline, and the health line is always last. A blob that ends
  // mid-line — the classic truncated-checkpoint failure — must be
  // rejected as a whole, never partially applied.
  if (text.empty()) {
    throw ParseError("checkpoint: empty state");
  }
  if (text.back() != '\n') {
    throw ParseError("checkpoint: truncated state (no trailing newline)");
  }

  CampaignCheckpoint ckpt;
  bool have_header = false;
  bool have_health = false;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    if (have_health) {
      throw ParseError("checkpoint: record after the trailing health line");
    }
    const Json obj = Json::parse(line);
    const std::string& kind = obj.at("kind").as_string();
    if (kind == "header") {
      if (have_header) {
        throw ParseError("checkpoint: duplicate header line");
      }
      if (obj.at("version").as_int() != kCheckpointVersion) {
        throw ParseError("checkpoint: unsupported checkpoint version");
      }
      ckpt.next_month = static_cast<std::size_t>(obj.at("next_month").as_int());
      ckpt.fleet_seed = u64_from_hex(obj.at("fleet_seed").as_string());
      ckpt.device_count =
          static_cast<std::size_t>(obj.at("device_count").as_int());
      ckpt.months = static_cast<std::size_t>(obj.at("months").as_int());
      ckpt.measurements_per_month = static_cast<std::size_t>(
          obj.at("measurements_per_month").as_int());
      ckpt.fault_plan_json = obj.at("fault_plan").as_string();
      have_header = true;
    } else if (!have_header) {
      throw ParseError("checkpoint: state must start with the header line");
    } else if (kind == "device") {
      DeviceCheckpoint dev;
      BoardFaultState fault_state;
      BitVector reference;
      device_state_from_json(obj, dev, fault_state, reference);
      ckpt.devices.push_back(dev);
      ckpt.fault_states.push_back(fault_state);
      ckpt.references.push_back(std::move(reference));
    } else if (kind == "month") {
      ckpt.series.push_back(fleet_month_from_json(obj));
    } else if (kind == "health") {
      ckpt.health = campaign_health_from_json(obj.at("months"));
      have_health = true;
    } else {
      throw ParseError("checkpoint: unknown record kind '" + kind + "'");
    }
  }
  if (!have_header) {
    throw ParseError("checkpoint: missing header line");
  }
  if (!have_health) {
    // The writer emits the health line last and unconditionally; its
    // absence means the tail of the blob was lost.
    throw ParseError("checkpoint: truncated state (missing health line)");
  }
  if (ckpt.devices.size() != ckpt.device_count) {
    throw ParseError("checkpoint: device line count mismatch");
  }
  if (ckpt.series.size() != ckpt.next_month) {
    throw ParseError("checkpoint: month line count mismatch");
  }
  return ckpt;
}

std::string month_ledger_to_json(const MonthLedger& ledger) {
  if (ledger.devices.size() != ledger.fault_states.size() ||
      ledger.devices.size() != ledger.references.size()) {
    throw InvalidArgument(
        "month_ledger_to_json: device/fault-state/reference counts differ");
  }
  Json obj = Json::object();
  obj.set("kind", Json("month_ledger"));
  obj.set("month", Json(static_cast<std::uint64_t>(ledger.month)));
  Json devices = Json::array();
  for (std::size_t d = 0; d < ledger.devices.size(); ++d) {
    devices.push_back(device_state_to_json(
        ledger.devices[d], ledger.fault_states[d], ledger.references[d]));
  }
  obj.set("devices", std::move(devices));
  obj.set("metrics", fleet_month_to_json(ledger.metrics));
  if (ledger.health) {
    obj.set("health", month_health_to_json(*ledger.health));
  }
  return obj.dump();
}

MonthLedger month_ledger_from_json(const std::string& text) {
  const Json obj = Json::parse(text);
  if (obj.at("kind").as_string() != "month_ledger") {
    throw ParseError("month_ledger: unexpected record kind");
  }
  MonthLedger ledger;
  ledger.month = static_cast<std::size_t>(obj.at("month").as_int());
  for (const Json& dev_json : obj.at("devices").as_array()) {
    DeviceCheckpoint dev;
    BoardFaultState fault_state;
    BitVector reference;
    device_state_from_json(dev_json, dev, fault_state, reference);
    ledger.devices.push_back(dev);
    ledger.fault_states.push_back(fault_state);
    ledger.references.push_back(std::move(reference));
  }
  ledger.metrics = fleet_month_from_json(obj.at("metrics"));
  if (obj.contains("health")) {
    ledger.health = month_health_from_json(obj.at("health"));
  }
  return ledger;
}

void apply_month_ledger(CampaignCheckpoint& ckpt, const MonthLedger& ledger) {
  if (ledger.month != ckpt.next_month) {
    throw ParseError("checkpoint: WAL month discontinuity (expected month " +
                     std::to_string(ckpt.next_month) + ", got " +
                     std::to_string(ledger.month) + ")");
  }
  if (ledger.devices.size() != ckpt.devices.size()) {
    throw ParseError("checkpoint: WAL device count mismatch");
  }
  ckpt.devices = ledger.devices;
  ckpt.fault_states = ledger.fault_states;
  ckpt.references = ledger.references;
  ckpt.series.push_back(ledger.metrics);
  if (ledger.health) {
    ckpt.health.months.push_back(*ledger.health);
  }
  ckpt.next_month = ledger.month + 1;
}

CampaignCheckpoint checkpoint_from_store(const MeasurementStore& store) {
  if (!store.has_state()) {
    throw IoError("checkpoint: store at '" + store.dir() + "' holds no state");
  }
  CampaignCheckpoint ckpt = checkpoint_from_jsonl(store.snapshot());
  for (const std::string& payload : store.wal_records()) {
    apply_month_ledger(ckpt, month_ledger_from_json(payload));
  }
  return ckpt;
}

std::string CheckpointRecovery::render() const {
  std::ostringstream os;
  os << fs.render();
  if (!found) {
    return os.str();
  }
  // A campaign measures months 0..planned_months inclusive.
  os << "checkpoint: " << device_count << " device(s), " << resume_month
     << "/" << (planned_months + 1) << " monthly snapshot(s) completed\n";
  os << "  salvaged: " << snapshot_months << " month(s) from the snapshot";
  if (!wal_months.empty()) {
    os << ", months";
    for (std::size_t m : wal_months) {
      os << " " << m;
    }
    os << " from the WAL";
  }
  os << "\n";
  if (resume_month > planned_months) {
    os << "  campaign complete; resume would return the stored series\n";
  } else {
    os << "  resume continues at month " << resume_month << "\n";
  }
  return os.str();
}

CheckpointRecovery inspect_store(Vfs& vfs, const std::string& dir) {
  CheckpointRecovery rec;
  MeasurementStore store(vfs, dir);
  rec.fs = store.recovery();
  if (!store.has_state()) {
    return rec;
  }
  const CampaignCheckpoint snap = checkpoint_from_jsonl(store.snapshot());
  rec.found = true;
  rec.device_count = snap.device_count;
  rec.snapshot_months = snap.next_month;
  rec.planned_months = snap.months;
  CampaignCheckpoint replay = snap;
  for (const std::string& payload : store.wal_records()) {
    const MonthLedger ledger = month_ledger_from_json(payload);
    apply_month_ledger(replay, ledger);
    rec.wal_months.push_back(ledger.month);
  }
  rec.resume_month = replay.next_month;
  return rec;
}

bool has_checkpoint(const std::string& dir) {
  return MeasurementStore::present(RealFs::instance(), dir);
}

void save_checkpoint(const std::string& dir, const CampaignCheckpoint& ckpt) {
  check_state_shape(ckpt, "save_checkpoint");
  MeasurementStore store(RealFs::instance(), dir);
  store.publish_snapshot(checkpoint_to_jsonl(ckpt));
}

CampaignCheckpoint load_checkpoint(const std::string& dir) {
  if (!has_checkpoint(dir)) {
    throw IoError("load_checkpoint: no checkpoint state in '" + dir + "'");
  }
  MeasurementStore store(RealFs::instance(), dir);
  return checkpoint_from_store(store);
}

}  // namespace pufaging
