#include "analysis/initial_quality.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace pufaging {
namespace {

std::vector<std::vector<BitVector>> synthetic_batches(std::size_t devices,
                                                      std::size_t per_device,
                                                      std::size_t bits) {
  std::vector<std::vector<BitVector>> batches(devices);
  Xoshiro256StarStar rng(77);
  for (std::size_t d = 0; d < devices; ++d) {
    BitVector base(bits);
    for (std::size_t i = 0; i < bits; ++i) {
      base.set(i, rng.bernoulli(0.627));
    }
    for (std::size_t m = 0; m < per_device; ++m) {
      BitVector v = base;
      for (std::size_t i = 0; i < bits; ++i) {
        if (rng.bernoulli(0.025)) {
          v.flip(i);
        }
      }
      batches[d].push_back(std::move(v));
    }
  }
  return batches;
}

TEST(InitialQuality, SampleCounts) {
  const auto batches = synthetic_batches(4, 10, 256);
  const InitialQualityReport report = evaluate_initial_quality(batches, 50);
  EXPECT_EQ(report.wchd_samples.size(), 4U * 9U);  // ref excluded per device
  EXPECT_EQ(report.bchd_samples.size(), 6U);       // C(4,2)
  EXPECT_EQ(report.fhw_samples.size(), 4U * 10U);
  EXPECT_EQ(report.wchd_hist.total(), 36U);
  EXPECT_EQ(report.bchd_hist.total(), 6U);
  EXPECT_EQ(report.fhw_hist.total(), 40U);
}

TEST(InitialQuality, DistributionsAreWellSeparated) {
  // Fig. 5's qualitative claim: WCHD << BCHD, FHW biased above 50%.
  const auto batches = synthetic_batches(6, 20, 1024);
  const InitialQualityReport report = evaluate_initial_quality(batches);
  for (double w : report.wchd_samples) {
    EXPECT_LT(w, 0.10);
  }
  for (double b : report.bchd_samples) {
    EXPECT_GT(b, 0.35);
  }
  for (double f : report.fhw_samples) {
    EXPECT_GT(f, 0.55);
    EXPECT_LT(f, 0.72);
  }
}

TEST(InitialQuality, RenderContainsAllThreeSections) {
  const auto batches = synthetic_batches(3, 5, 128);
  const std::string text =
      render_initial_quality(evaluate_initial_quality(batches));
  EXPECT_NE(text.find("Within-class HD"), std::string::npos);
  EXPECT_NE(text.find("Between-class HD"), std::string::npos);
  EXPECT_NE(text.find("Fractional HW"), std::string::npos);
}

TEST(InitialQuality, Validation) {
  EXPECT_THROW(
      evaluate_initial_quality(std::vector<std::vector<BitVector>>{}),
      InvalidArgument);
  std::vector<std::vector<BitVector>> with_empty(2);
  with_empty[0].push_back(BitVector(8));
  EXPECT_THROW(evaluate_initial_quality(with_empty), InvalidArgument);
}

}  // namespace
}  // namespace pufaging
