#include "testbed/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace pufaging {

CampaignResult run_campaign(const CampaignConfig& config) {
  if (config.measurements_per_month == 0) {
    throw InvalidArgument("run_campaign: need at least one measurement");
  }
  if (config.schedule && config.accelerated) {
    throw InvalidArgument(
        "run_campaign: schedule and accelerated are mutually exclusive");
  }
  std::vector<SramDevice> fleet = make_fleet(config.fleet);

  // In accelerated mode each reported month is one nominal-equivalent
  // stress month: the wall-clock time between snapshots shrinks by the
  // acceleration factor, while the aging integrator re-expands it.
  const double af =
      config.accelerated
          ? acceleration_factor(config.operating_point,
                                config.fleet.device.acceleration)
          : 1.0;
  if (af <= 0.0) {
    throw InvalidArgument("run_campaign: non-positive acceleration factor");
  }
  const double wall_months_per_snapshot = 1.0 / af;
  const auto op_for_month = [&config](std::size_t month) {
    return config.schedule ? config.schedule(month) : config.operating_point;
  };

  CampaignResult result;
  result.references.resize(fleet.size());
  if (config.keep_first_month_batches) {
    result.first_month_batches.resize(fleet.size());
  }

  // Devices are statistically independent — each owns a private RNG stream
  // split off the fleet seed — so the monthly snapshot fans out per device.
  // Every task touches only index d of the shared vectors, results are
  // collected by device index (not by completion order), and the reduction
  // below is order-independent: any thread count is bit-identical to the
  // threads=1 reference path, which runs the very same task in a plain
  // loop.
  const std::size_t thread_count = std::min(
      ThreadPool::resolve_thread_count(config.threads), fleet.size());
  std::optional<ThreadPool> pool;
  if (thread_count > 1) {
    pool.emplace(thread_count);
  }

  for (std::size_t month = 0; month <= config.months; ++month) {
    const OperatingPoint month_op = op_for_month(month);
    const bool age_after = month < config.months;
    std::vector<DeviceMonthMetrics> device_metrics(fleet.size());
    const auto device_task = [&](std::size_t d) {
      SramDevice& device = fleet[d];
      BitVector first = device.measure(month_op);
      if (month == 0) {
        result.references[d] = first;
      }
      DeviceMonthAccumulator acc(device.id(), result.references[d]);
      acc.add(first);
      if (month == 0 && config.keep_first_month_batches) {
        result.first_month_batches[d].push_back(first);
      }
      for (std::size_t m = 1; m < config.measurements_per_month; ++m) {
        const BitVector pattern = device.measure(month_op);
        acc.add(pattern);
        if (month == 0 && config.keep_first_month_batches) {
          result.first_month_batches[d].push_back(pattern);
        }
      }
      device_metrics[d] = acc.finalize();
      if (age_after) {
        device.age_months(wall_months_per_snapshot, month_op);
      }
    };
    if (pool) {
      pool->parallel_for(0, fleet.size(), device_task);
    } else {
      for (std::size_t d = 0; d < fleet.size(); ++d) {
        device_task(d);
      }
    }
    result.series.push_back(combine_fleet_month(std::move(device_metrics),
                                                static_cast<double>(month)));
  }
  return result;
}

std::function<OperatingPoint(std::size_t)> seasonal_schedule(
    double mean_c, double swing_c) {
  return [mean_c, swing_c](std::size_t month) {
    OperatingPoint op;
    op.temperature_c =
        mean_c + swing_c * std::sin(2.0 * 3.14159265358979323846 *
                                    static_cast<double>(month) / 12.0);
    return op;
  };
}

std::vector<std::vector<BitVector>> collect_rig_batches(Rig& rig,
                                                        std::uint64_t cycles) {
  rig.run_cycles(cycles);
  std::vector<std::vector<BitVector>> batches(16);
  for (std::uint32_t d = 0; d < 16; ++d) {
    batches[d] = rig.collector().board_measurements(board_id_for_device(d));
  }
  return batches;
}

}  // namespace pufaging
