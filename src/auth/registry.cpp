#include "auth/registry.hpp"

#include <cstring>

#include "common/error.hpp"

namespace pufaging::auth {
namespace {

constexpr char kSnapshotMagic[] = "PAREG1";
constexpr std::size_t kSnapshotMagicLen = 6;

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>(static_cast<std::uint8_t>(v >> (8 * i))));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>(static_cast<std::uint8_t>(v >> (8 * i))));
  }
}

std::uint32_t read_u32(std::string_view blob, std::size_t pos) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<std::uint8_t>(blob[pos + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  return v;
}

std::uint64_t read_u64(std::string_view blob, std::size_t pos) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<std::uint8_t>(blob[pos + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  return v;
}

}  // namespace

AuthRegistry::AuthRegistry(std::uint32_t blocks)
    : blocks_(blocks),
      helper_words_((static_cast<std::size_t>(blocks) * 24 + 63) / 64) {
  if (blocks == 0) {
    throw InvalidArgument("AuthRegistry: blocks must be > 0");
  }
}

void AuthRegistry::put(const EnrollmentRecord& record) {
  if (record.blocks != blocks_) {
    throw InvalidArgument("AuthRegistry: record block count mismatch");
  }
  if (record.helper.size() != helper_words_) {
    throw InvalidArgument("AuthRegistry: record helper length mismatch");
  }
  const std::uint64_t id = record.device_id;
  if (id >= enrolled_.size()) {
    const std::size_t slots = static_cast<std::size_t>(id) + 1;
    enrolled_.resize(slots, 0);
    helpers_.resize(slots * helper_words_, 0);
    verifiers_.resize(slots * kVerifierBytes, 0);
  }
  if (enrolled_[id] == 0) {
    enrolled_[id] = 1;
    ++enrolled_count_;
  }
  std::memcpy(helpers_.data() + id * helper_words_, record.helper.data(),
              helper_words_ * sizeof(std::uint64_t));
  std::memcpy(verifiers_.data() + id * kVerifierBytes,
              record.verifier.data(), kVerifierBytes);
}

EnrollmentRecord AuthRegistry::record(std::uint64_t device_id) const {
  EnrollmentRecord out;
  out.device_id = device_id;
  out.blocks = blocks_;
  out.helper.assign(helper(device_id), helper(device_id) + helper_words_);
  std::memcpy(out.verifier.data(), verifier(device_id), kVerifierBytes);
  return out;
}

std::string AuthRegistry::serialize_snapshot() const {
  std::string out;
  const std::size_t record_bytes =
      4 + 8 + 4 + helper_words_ * 8 + kVerifierBytes;
  out.reserve(kSnapshotMagicLen + 12 + size() * (4 + record_bytes));
  out.append(kSnapshotMagic, kSnapshotMagicLen);
  put_u32(out, blocks_);
  put_u64(out, size());
  for (std::uint64_t id = 0; id < enrolled_.size(); ++id) {
    if (enrolled_[id] == 0) {
      continue;
    }
    const std::vector<std::uint8_t> bytes = serialize_record(record(id));
    put_u32(out, static_cast<std::uint32_t>(bytes.size()));
    out.append(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  }
  return out;
}

AuthRegistry AuthRegistry::from_snapshot(std::string_view blob) {
  if (blob.size() < kSnapshotMagicLen + 12 ||
      blob.compare(0, kSnapshotMagicLen, kSnapshotMagic) != 0) {
    throw ParseError("AuthRegistry: bad snapshot header");
  }
  const std::uint32_t blocks = read_u32(blob, kSnapshotMagicLen);
  if (blocks == 0 || blocks > 4096) {
    throw ParseError("AuthRegistry: implausible snapshot block count");
  }
  const std::uint64_t count = read_u64(blob, kSnapshotMagicLen + 4);
  AuthRegistry registry(blocks);
  std::size_t pos = kSnapshotMagicLen + 12;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (blob.size() - pos < 4) {
      throw ParseError("AuthRegistry: truncated snapshot");
    }
    const std::uint32_t len = read_u32(blob, pos);
    pos += 4;
    if (blob.size() - pos < len) {
      throw ParseError("AuthRegistry: truncated snapshot record");
    }
    registry.put(parse_record(
        reinterpret_cast<const std::uint8_t*>(blob.data()) + pos, len));
    pos += len;
  }
  if (pos != blob.size()) {
    throw ParseError("AuthRegistry: trailing snapshot bytes");
  }
  return registry;
}

void AuthRegistry::apply_wal_record(std::string_view payload) {
  put(parse_record(reinterpret_cast<const std::uint8_t*>(payload.data()),
                   payload.size()));
}

AuthRegistry load_registry(const MeasurementStore& store,
                           std::uint32_t blocks) {
  AuthRegistry registry(blocks);
  if (store.has_state() && !store.snapshot().empty()) {
    registry = AuthRegistry::from_snapshot(store.snapshot());
    if (registry.blocks() != blocks) {
      throw InvalidArgument("load_registry: stored block count mismatch");
    }
  }
  for (const std::string& payload : store.wal_records()) {
    registry.apply_wal_record(payload);
  }
  return registry;
}

void publish_registry(MeasurementStore& store, const AuthRegistry& registry) {
  store.publish_snapshot(registry.serialize_snapshot());
}

}  // namespace pufaging::auth
