file(REMOVE_RECURSE
  "CMakeFiles/pa_silicon_test.dir/silicon/aging_test.cpp.o"
  "CMakeFiles/pa_silicon_test.dir/silicon/aging_test.cpp.o.d"
  "CMakeFiles/pa_silicon_test.dir/silicon/calibration_test.cpp.o"
  "CMakeFiles/pa_silicon_test.dir/silicon/calibration_test.cpp.o.d"
  "CMakeFiles/pa_silicon_test.dir/silicon/device_test.cpp.o"
  "CMakeFiles/pa_silicon_test.dir/silicon/device_test.cpp.o.d"
  "CMakeFiles/pa_silicon_test.dir/silicon/factory_test.cpp.o"
  "CMakeFiles/pa_silicon_test.dir/silicon/factory_test.cpp.o.d"
  "CMakeFiles/pa_silicon_test.dir/silicon/noise_test.cpp.o"
  "CMakeFiles/pa_silicon_test.dir/silicon/noise_test.cpp.o.d"
  "CMakeFiles/pa_silicon_test.dir/silicon/population_test.cpp.o"
  "CMakeFiles/pa_silicon_test.dir/silicon/population_test.cpp.o.d"
  "CMakeFiles/pa_silicon_test.dir/silicon/powerup_test.cpp.o"
  "CMakeFiles/pa_silicon_test.dir/silicon/powerup_test.cpp.o.d"
  "CMakeFiles/pa_silicon_test.dir/silicon/ramp_adapter_test.cpp.o"
  "CMakeFiles/pa_silicon_test.dir/silicon/ramp_adapter_test.cpp.o.d"
  "pa_silicon_test"
  "pa_silicon_test.pdb"
  "pa_silicon_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pa_silicon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
