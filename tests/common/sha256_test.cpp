#include "common/sha256.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace pufaging {
namespace {

std::vector<std::uint8_t> bytes(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

std::vector<std::uint8_t> from_hex(const std::string& hex) {
  std::vector<std::uint8_t> out;
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>(
        std::stoul(hex.substr(i, 2), nullptr, 16)));
  }
  return out;
}

// FIPS 180-4 / NIST CAVP test vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(Sha256::to_hex(Sha256::hash(std::string())),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(Sha256::to_hex(Sha256::hash(std::string("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(Sha256::to_hex(Sha256::hash(std::string(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, ExactBlockBoundary) {
  // 64 'a' characters: exercises the padding-into-second-block path.
  EXPECT_EQ(Sha256::to_hex(Sha256::hash(std::string(64, 'a'))),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
}

TEST(Sha256, LongMessage) {
  // 1,000,000 'a' (FIPS 180-4 vector), fed incrementally.
  Sha256 hasher;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    hasher.update(chunk);
  }
  EXPECT_EQ(Sha256::to_hex(hasher.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Sha256 hasher;
  hasher.update(std::string("hello "));
  hasher.update(std::string("world"));
  EXPECT_EQ(hasher.finalize(), Sha256::hash(std::string("hello world")));
}

TEST(Sha256, ResetAllowsReuse) {
  Sha256 hasher;
  hasher.update(std::string("abc"));
  const auto first = hasher.finalize();
  EXPECT_THROW(hasher.update(std::string("x")), Error);
  hasher.reset();
  hasher.update(std::string("abc"));
  EXPECT_EQ(hasher.finalize(), first);
}

TEST(Sha256, DoubleFinalizeThrows) {
  Sha256 hasher;
  hasher.finalize();
  EXPECT_THROW(hasher.finalize(), Error);
}

// RFC 4231 test case 1.
TEST(HmacSha256, Rfc4231Case1) {
  const std::vector<std::uint8_t> key(20, 0x0B);
  const auto mac = hmac_sha256(key, bytes("Hi There"));
  EXPECT_EQ(Sha256::to_hex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2 ("Jefe").
TEST(HmacSha256, Rfc4231Case2) {
  const auto mac =
      hmac_sha256(bytes("Jefe"), bytes("what do ya want for nothing?"));
  EXPECT_EQ(Sha256::to_hex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3 (0xAA key, 0xDD data).
TEST(HmacSha256, Rfc4231Case3) {
  const std::vector<std::uint8_t> key(20, 0xAA);
  const std::vector<std::uint8_t> data(50, 0xDD);
  EXPECT_EQ(Sha256::to_hex(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 5869 test case 1.
TEST(HkdfSha256, Rfc5869Case1) {
  const std::vector<std::uint8_t> ikm(22, 0x0B);
  const auto salt = from_hex("000102030405060708090a0b0c");
  const auto info = from_hex("f0f1f2f3f4f5f6f7f8f9");
  const auto okm = hkdf_sha256(ikm, salt, info, 42);
  std::string hex;
  for (std::uint8_t b : okm) {
    char buf[3];
    std::snprintf(buf, sizeof buf, "%02x", b);
    hex += buf;
  }
  EXPECT_EQ(hex,
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

// RFC 5869 test case 3 (empty salt and info).
TEST(HkdfSha256, Rfc5869Case3) {
  const std::vector<std::uint8_t> ikm(22, 0x0B);
  const auto okm = hkdf_sha256(ikm, {}, {}, 42);
  std::string hex;
  for (std::uint8_t b : okm) {
    char buf[3];
    std::snprintf(buf, sizeof buf, "%02x", b);
    hex += buf;
  }
  EXPECT_EQ(hex,
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(HkdfSha256, LengthLimit) {
  EXPECT_THROW(hkdf_sha256({0x01}, {}, {}, 255 * 32 + 1), InvalidArgument);
  EXPECT_EQ(hkdf_sha256({0x01}, {}, {}, 100).size(), 100U);
}

TEST(HkdfSha256, ContextSeparation) {
  const std::vector<std::uint8_t> ikm = bytes("secret");
  EXPECT_NE(hkdf_sha256(ikm, {}, bytes("a"), 32),
            hkdf_sha256(ikm, {}, bytes("b"), 32));
}

}  // namespace
}  // namespace pufaging
