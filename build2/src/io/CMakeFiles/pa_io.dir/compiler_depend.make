# Empty compiler generated dependencies file for pa_io.
# This may be replaced when dependencies are built.
