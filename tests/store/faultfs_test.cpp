// FaultFs semantics: the crash matrix is only as trustworthy as the
// filesystem model it runs on, so the model itself is pinned here —
// page-cache vs durable state, namespace durability, power-cut modes,
// kill points, ENOSPC, short writes and lying fsyncs. Plus a RealFs
// smoke test against an actual temp directory.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <set>
#include <string>

#include "common/error.hpp"
#include "store/faultfs.hpp"

namespace pufaging {
namespace {

void write_file(Vfs& fs, const std::string& path, const std::string& content,
                bool do_fsync) {
  VfsFile file(fs, fs.open_append(path, true));
  fs.write_all(file.id(), content);
  if (do_fsync) {
    fs.fsync(file.id());
  }
}

TEST(FaultFs, UnsyncedDataVanishesAtAStrictPowerCut) {
  FaultFs fs;
  fs.create_dirs("d");
  write_file(fs, "d/synced", "durable", true);
  write_file(fs, "d/unsynced", "volatile", false);
  fs.fsync_dir("d");
  write_file(fs, "d/never-published", "no dir fsync", true);
  EXPECT_EQ(fs.read_file("d/unsynced"), "volatile");  // live view pre-cut

  fs.power_cut();

  EXPECT_EQ(fs.read_file("d/synced"), "durable");
  // File fsynced but its directory entry never made durable: gone.
  EXPECT_FALSE(fs.exists("d/never-published"));
  // Directory entry durable but content never fsynced: empty file.
  EXPECT_EQ(fs.read_file("d/unsynced"), "");
}

TEST(FaultFs, FsyncCoversOnlyBytesWrittenBeforeIt) {
  FaultFs fs;
  fs.create_dirs("d");
  VfsFile file(fs, fs.open_append("d/f", true));
  fs.write_all(file.id(), "first|");
  fs.fsync(file.id());
  fs.write_all(file.id(), "second");
  file.reset();
  fs.fsync_dir("d");
  fs.power_cut();
  EXPECT_EQ(fs.read_file("d/f"), "first|");
}

TEST(FaultFs, RenameIsAtomicAndNeedsDirFsyncToSurvive) {
  FaultFs fs;
  fs.create_dirs("d");
  write_file(fs, "d/old", "v1", true);
  fs.fsync_dir("d");
  write_file(fs, "d/new", "v2", true);
  fs.rename("d/new", "d/old");  // not followed by fsync_dir
  fs.power_cut();
  // The rename was lost with the directory's volatile entries; the old
  // name must still hold the old, complete content — never a mix.
  EXPECT_EQ(fs.read_file("d/old"), "v1");

  write_file(fs, "d/new", "v3", true);
  fs.rename("d/new", "d/old");
  fs.fsync_dir("d");
  fs.power_cut();
  EXPECT_EQ(fs.read_file("d/old"), "v3");
}

TEST(FaultFs, KillPointFiresAtTheExactSyscallAndDeadFsStaysDead) {
  FsFaultPlan plan;
  plan.kill_at_syscall = 3;
  FaultFs fs(plan);
  fs.create_dirs("d");                                 // syscall 1
  const Vfs::FileId f = fs.open_append("d/f", false);  // syscall 2
  EXPECT_THROW(fs.fsync(f), PowerCutError);            // syscall 3: dies
  EXPECT_TRUE(fs.dead());
  // Everything fails until the "next boot".
  EXPECT_THROW(fs.read_file("d/f"), PowerCutError);
  EXPECT_THROW(fs.open_append("d/g", false), PowerCutError);
  fs.power_cut();
  EXPECT_FALSE(fs.dead());
  fs.create_dirs("d");  // revived filesystem works again
}

TEST(FaultFs, SyscallCountingIsDeterministic) {
  // The crash matrix depends on run N and run N+1 issuing identical
  // syscall sequences; pin the count of a fixed operation sequence.
  const auto run = [] {
    FaultFs fs;
    fs.create_dirs("d");
    write_file(fs, "d/a", "xyz", true);
    fs.fsync_dir("d");
    return fs.syscalls();
  };
  const std::uint64_t first = run();
  EXPECT_EQ(first, run());
  EXPECT_GE(first, 5U);  // create_dirs, open, >=1 write, fsync, fsync_dir
}

TEST(FaultFs, EnospcBudgetYieldsTypedError) {
  FsFaultPlan plan;
  plan.enospc_after_bytes = 10;
  FaultFs fs(plan);
  fs.create_dirs("d");
  VfsFile file(fs, fs.open_append("d/f", true));
  fs.write_all(file.id(), "0123456789");  // exactly the budget
  try {
    fs.write_all(file.id(), "x");
    FAIL() << "expected StoreError(kNoSpace)";
  } catch (const StoreError& e) {
    EXPECT_EQ(e.kind(), StoreError::Kind::kNoSpace);
  }
}

TEST(FaultFs, ShortWritesAreHonestAboutTheirLength) {
  FsFaultPlan plan;
  plan.short_write_limit = 3;
  FaultFs fs(plan);
  fs.create_dirs("d");
  VfsFile file(fs, fs.open_append("d/f", true));
  const std::string data = "0123456789";
  EXPECT_EQ(fs.write_some(file.id(), data.data(), data.size()), 3U);
  fs.write_all(file.id(), data.substr(3));  // the loop finishes the job
  EXPECT_EQ(fs.read_file("d/f"), data);
}

TEST(FaultFs, DroppedFsyncLeavesDataVolatile) {
  FsFaultPlan plan;
  plan.drop_fsync_rate = 1.0;  // every fsync lies
  FaultFs fs(plan);
  fs.create_dirs("d");
  write_file(fs, "d/f", "content", true);
  fs.fsync_dir("d");  // namespace capture is not an fsync draw
  EXPECT_GE(fs.fsyncs_dropped(), 1U);
  fs.power_cut();
  // The drive acknowledged the fsync but persisted nothing.
  EXPECT_EQ(fs.read_file("d/f"), "");
}

TEST(FaultFs, TornCutKeepsSectorAlignedPrefixOfTheUnsyncedTail) {
  FsFaultPlan plan;
  plan.cut_mode = PowerCutMode::kTorn;
  plan.torn_sector_bytes = 4;
  plan.seed = 11;
  FaultFs fs(plan);
  fs.create_dirs("d");
  VfsFile file(fs, fs.open_append("d/f", true));
  fs.write_all(file.id(), "DURABLE!");
  fs.fsync(file.id());
  fs.write_all(file.id(), "abcdefghijklmnop");  // unsynced tail
  file.reset();
  fs.fsync_dir("d");
  fs.power_cut();
  const std::string after = fs.read_file("d/f");
  // The durable prefix always survives; whatever survived of the tail is
  // a prefix of it, possibly with a garbled final sector.
  ASSERT_GE(after.size(), 8U);
  EXPECT_EQ(after.substr(0, 8), "DURABLE!");
  EXPECT_LE(after.size(), 8U + 16U);
  const std::string tail = after.substr(8);
  const std::string expect = std::string("abcdefghijklmnop").substr(
      0, tail.size());
  // Identical except possibly the last byte of a torn sector.
  for (std::size_t i = 0; i + 1 < tail.size(); ++i) {
    EXPECT_EQ(tail[i], expect[i]) << "byte " << i;
  }
}

TEST(FaultFs, TornCutIsDeterministicPerSeed) {
  const auto run = [](std::uint64_t seed) {
    FsFaultPlan plan;
    plan.cut_mode = PowerCutMode::kTorn;
    plan.torn_sector_bytes = 4;
    plan.seed = seed;
    FaultFs fs(plan);
    fs.create_dirs("d");
    VfsFile file(fs, fs.open_append("d/f", true));
    fs.write_all(file.id(), std::string(64, 'z'));
    file.reset();
    fs.fsync_dir("d");
    fs.power_cut();
    return fs.read_file("d/f");
  };
  EXPECT_EQ(run(5), run(5));
}

TEST(FaultFs, MixedCutFlipsDeterministicPerNameCoins) {
  const auto survivors = [](std::uint64_t seed) {
    FsFaultPlan plan;
    plan.cut_mode = PowerCutMode::kMixed;
    plan.seed = seed;
    FaultFs fs(plan);
    fs.create_dirs("d");
    for (int i = 0; i < 16; ++i) {
      write_file(fs, "d/f" + std::to_string(i), "data", false);
    }
    // No fsync anywhere: strict mode would keep nothing.
    fs.power_cut();
    std::set<std::string> names;
    for (const std::string& name : fs.list_dir("d")) {
      names.insert(name);
    }
    return names;
  };
  EXPECT_EQ(survivors(3), survivors(3));
  // With 16 files the odds that every coin lands the same way are 2^-15
  // per seed; two seeds disagreeing on at least one file pins that the
  // coins actually depend on the seed.
  EXPECT_NE(survivors(3), survivors(4));
}

TEST(FaultFs, CorruptDurableFlipsExactlyTheMaskedBits) {
  FaultFs fs;
  fs.create_dirs("d");
  write_file(fs, "d/f", "AAAA", true);
  fs.fsync_dir("d");
  fs.corrupt_durable("d/f", 2, 0x01);
  fs.power_cut();
  EXPECT_EQ(fs.read_file("d/f"), "AA@A");  // 'A' ^ 0x01 == '@'
}

TEST(FaultFs, FaultPlanSpecRoundTrips) {
  const FsFaultPlan plan = parse_fs_fault_plan(
      "kill=37,cut=torn,seed=9,sector=256,enospc=4096,short=7,dropfsync=0.5");
  EXPECT_EQ(plan.kill_at_syscall, 37U);
  EXPECT_EQ(plan.cut_mode, PowerCutMode::kTorn);
  EXPECT_EQ(plan.seed, 9U);
  EXPECT_EQ(plan.torn_sector_bytes, 256U);
  EXPECT_EQ(plan.enospc_after_bytes, 4096U);
  EXPECT_EQ(plan.short_write_limit, 7U);
  EXPECT_DOUBLE_EQ(plan.drop_fsync_rate, 0.5);
  const FsFaultPlan back =
      fs_fault_plan_from_json(fs_fault_plan_to_json(plan));
  EXPECT_EQ(back.kill_at_syscall, plan.kill_at_syscall);
  EXPECT_EQ(back.cut_mode, plan.cut_mode);
  EXPECT_DOUBLE_EQ(back.drop_fsync_rate, plan.drop_fsync_rate);
  EXPECT_THROW(parse_fs_fault_plan("cut=sideways"), ParseError);
  EXPECT_THROW(parse_fs_fault_plan("dropfsync=2.0"), Error);
  EXPECT_THROW(parse_fs_fault_plan("bogus=1"), ParseError);
}

TEST(RealFs, AppendFsyncRenameSmoke) {
  RealFs& fs = RealFs::instance();
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("pufaging_realfs_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);
  fs.create_dirs(dir);
  {
    VfsFile file(fs, fs.open_append(dir + "/a.tmp", true));
    fs.write_all(file.id(), "hello ");
    fs.write_all(file.id(), "world");
    fs.fsync(file.id());
  }
  EXPECT_EQ(fs.file_size(dir + "/a.tmp"), 11U);
  fs.rename(dir + "/a.tmp", dir + "/a");
  fs.fsync_dir(dir);
  EXPECT_TRUE(fs.exists(dir + "/a"));
  EXPECT_FALSE(fs.exists(dir + "/a.tmp"));
  EXPECT_EQ(fs.read_file(dir + "/a"), "hello world");
  // Append mode really appends.
  {
    VfsFile file(fs, fs.open_append(dir + "/a", false));
    fs.write_all(file.id(), "!");
  }
  EXPECT_EQ(fs.read_file(dir + "/a"), "hello world!");
  fs.truncate(dir + "/a", 5);
  EXPECT_EQ(fs.read_file(dir + "/a"), "hello");
  const std::vector<std::string> names = fs.list_dir(dir);
  ASSERT_EQ(names.size(), 1U);
  EXPECT_EQ(names[0], "a");
  fs.remove(dir + "/a");
  EXPECT_THROW(fs.read_file(dir + "/a"), StoreError);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace pufaging
