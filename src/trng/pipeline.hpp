// End-to-end SRAM PUF TRNG (paper Section II-A2, construction of [12]):
// characterize -> harvest unstable cells -> health tests -> condition.
#pragma once

#include <cstdint>
#include <vector>

#include "silicon/sram_device.hpp"
#include "trng/conditioner.hpp"
#include "trng/harvester.hpp"
#include "trng/health.hpp"

namespace pufaging {

/// TRNG pipeline configuration.
struct TrngConfig {
  HarvesterConfig harvester;
  double safety_factor = 2.0;
  OperatingPoint operating_point = nominal_conditions();
};

/// Statistics of one generation call.
struct TrngStats {
  std::size_t raw_bits = 0;
  std::size_t output_bytes = 0;
  double min_entropy_per_bit = 0.0;  ///< Characterization estimate.
  double assessed_min_entropy = 0.0;  ///< SP 800-90B battery on the raw
                                      ///< stream (min of MCV/Markov/
                                      ///< collision estimators).
  HealthVerdict health;
  std::uint64_t power_ups = 0;  ///< Device power cycles consumed.
};

/// Random byte generator backed by one SRAM device.
class TrngPipeline {
 public:
  /// Characterizes the device immediately (consumes
  /// config.harvester.characterization_measurements power-ups).
  TrngPipeline(SramDevice& device, TrngConfig config = {});

  /// Produces `bytes` conditioned random bytes.
  /// Throws Error when the health tests reject the raw stream (dead or
  /// degraded source).
  std::vector<std::uint8_t> generate(std::size_t bytes);

  /// Statistics of the most recent generate() call.
  const TrngStats& last_stats() const { return stats_; }

  const CellSelection& selection() const { return selection_; }

  /// Re-characterizes (e.g. after aging changed the unstable population).
  void recharacterize();

  /// Effective raw throughput: noise bits per power-up cycle.
  double bits_per_power_up() const {
    return static_cast<double>(selection_.cells.size());
  }

 private:
  SramDevice* device_;
  TrngConfig config_;
  CellSelection selection_;
  TrngStats stats_;
};

}  // namespace pufaging
