#include "analysis/entropy.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace pufaging {
namespace {

TEST(PufEntropy, IdenticalDevicesHaveZeroEntropy) {
  // If every device reads the same pattern, location values are fully
  // predictable from other devices: H_min = 0.
  const std::vector<BitVector> refs(4, BitVector::from_string("1010"));
  EXPECT_DOUBLE_EQ(puf_min_entropy(refs), 0.0);
}

TEST(PufEntropy, PerfectlyBalancedLocations) {
  // Two devices disagreeing everywhere: p = 0.5 per location -> 1 bit.
  const std::vector<BitVector> refs = {BitVector::from_string("0000"),
                                       BitVector::from_string("1111")};
  EXPECT_DOUBLE_EQ(puf_min_entropy(refs), 1.0);
}

TEST(PufEntropy, MixedLocations) {
  // Four devices; location 0: 2/4 ones (1 bit), location 1: 1/4 ones
  // (-log2(0.75)), location 2: 0/4 (0 bits).
  const std::vector<BitVector> refs = {
      BitVector::from_string("110"), BitVector::from_string("100"),
      BitVector::from_string("000"), BitVector::from_string("000")};
  const double expected = (1.0 + -std::log2(0.75) + 0.0) / 3.0;
  EXPECT_NEAR(puf_min_entropy(refs), expected, 1e-12);
}

TEST(PufEntropy, Validation) {
  EXPECT_THROW(puf_min_entropy(std::vector<BitVector>{BitVector(4)}),
               InvalidArgument);
  const std::vector<BitVector> mismatched = {BitVector(4), BitVector(5)};
  EXPECT_THROW(puf_min_entropy(mismatched), InvalidArgument);
}

TEST(AverageMinEntropy, KnownValues) {
  const std::vector<double> ps = {0.5, 0.0, 1.0, 0.75};
  const double expected = (1.0 + 0.0 + 0.0 + -std::log2(0.75)) / 4.0;
  EXPECT_NEAR(average_min_entropy(ps), expected, 1e-12);
  EXPECT_THROW(average_min_entropy(std::vector<double>{}), InvalidArgument);
}

TEST(AverageMinEntropy, BoundedByOne) {
  const std::vector<double> ps = {0.5, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(average_min_entropy(ps), 1.0);
}

}  // namespace
}  // namespace pufaging
