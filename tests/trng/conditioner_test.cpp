#include "trng/conditioner.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "stats/nist.hpp"

namespace pufaging {
namespace {

BitVector random_bits(std::size_t n, std::uint64_t seed, double p) {
  Xoshiro256StarStar rng(seed);
  BitVector v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v.set(i, rng.bernoulli(p));
  }
  return v;
}

TEST(Conditioner, InputBudgetFormula) {
  Sha256Conditioner c(0.5, 2.0);
  // 32 bytes out at h=0.5 with 2x safety: 256 * 2 / 0.5 = 1024 bits.
  EXPECT_EQ(c.required_input_bits(32), 1024U);
  Sha256Conditioner full(1.0, 1.0);
  EXPECT_EQ(full.required_input_bits(32), 256U);
}

TEST(Conditioner, Validation) {
  EXPECT_THROW(Sha256Conditioner(0.0), InvalidArgument);
  EXPECT_THROW(Sha256Conditioner(1.1), InvalidArgument);
  EXPECT_THROW(Sha256Conditioner(0.5, 0.5), InvalidArgument);
}

TEST(Conditioner, OutputLengthFollowsEntropyBudget) {
  Sha256Conditioner c(0.5, 2.0);
  // 2048 input bits = 2 chunks of 1024 -> 64 bytes.
  EXPECT_EQ(c.condition(random_bits(2048, 50, 0.3)).size(), 64U);
  // Partial chunk produces nothing.
  EXPECT_EQ(c.condition(random_bits(1000, 51, 0.3)).size(), 0U);
}

TEST(Conditioner, DeterministicAndInputSensitive) {
  Sha256Conditioner c(0.5, 2.0);
  const BitVector raw = random_bits(1024, 52, 0.3);
  EXPECT_EQ(c.condition(raw), c.condition(raw));
  BitVector tweaked = raw;
  tweaked.flip(500);
  EXPECT_NE(c.condition(raw), c.condition(tweaked));
}

TEST(Conditioner, OutputPassesNistSuiteEvenFromBiasedInput) {
  // Heavily biased raw input (p = 0.2, ~0.32 bits/bit min-entropy);
  // conditioned output must look uniform.
  Sha256Conditioner c(0.3, 2.0);
  const std::size_t need_bits = c.required_input_bits(32) * 12;
  const std::vector<std::uint8_t> out =
      c.condition(random_bits(need_bits, 53, 0.2));
  ASSERT_GE(out.size(), 32U * 12U);
  BitVector bits(out.size() * 8);
  for (std::size_t i = 0; i < out.size() * 8; ++i) {
    bits.set(i, (out[i / 8] >> (i % 8)) & 1U);
  }
  EXPECT_EQ(nist_failures(nist_suite(bits), 0.001), 0U);
}

}  // namespace
}  // namespace pufaging
