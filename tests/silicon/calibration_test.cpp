// Calibration tests: the simulated fleet must reproduce the paper's
// Table I operating point and two-year trajectories. These are the
// reproduction's ground-truth assertions; tolerance bands are quoted
// relative to the paper's numbers.
#include <gtest/gtest.h>

#include "analysis/summary.hpp"
#include "silicon/device_factory.hpp"
#include "testbed/campaign.hpp"

namespace pufaging {
namespace {

// Day-0 fleet metrics (paper Table I "Start" column).
class CalibrationDay0 : public ::testing::Test {
 protected:
  static const FleetMonthMetrics& day0() {
    static const CampaignResult result = [] {
      CampaignConfig config;
      config.months = 0;
      return run_campaign(config);
    }();
    return result.series.front();
  }
};

TEST_F(CalibrationDay0, WithinClassHammingDistance) {
  EXPECT_NEAR(day0().wchd_avg, 0.0249, 0.0015);  // paper: 2.49%
  EXPECT_NEAR(day0().wchd_wc, 0.0272, 0.0035);   // paper: 2.72%
  EXPECT_GT(day0().wchd_wc, day0().wchd_avg);
}

TEST_F(CalibrationDay0, FractionalHammingWeight) {
  EXPECT_NEAR(day0().fhw_avg, 0.6270, 0.01);  // paper: 62.70%
  EXPECT_NEAR(day0().fhw_wc, 0.6578, 0.012);  // paper: 65.78%
}

TEST_F(CalibrationDay0, StableCellRatio) {
  EXPECT_NEAR(day0().stable_avg, 0.859, 0.012);  // paper: 85.9%
  EXPECT_NEAR(day0().stable_wc, 0.872, 0.012);   // paper: 87.2%
}

TEST_F(CalibrationDay0, NoiseEntropy) {
  EXPECT_NEAR(day0().noise_entropy_avg, 0.0305, 0.002);  // paper: 3.05%
  EXPECT_NEAR(day0().noise_entropy_wc, 0.0273, 0.003);   // paper: 2.73%
}

TEST_F(CalibrationDay0, BetweenClassHammingDistance) {
  EXPECT_NEAR(day0().bchd_avg, 0.4679, 0.005);  // paper: 46.79%
  EXPECT_NEAR(day0().bchd_wc, 0.4431, 0.012);   // paper: 44.31%
  // Fig. 5: BCHD distributed within 40-50%, clearly separated from WCHD.
  EXPECT_GT(day0().bchd_wc, 0.40);
  EXPECT_GT(day0().bchd_wc, 10.0 * day0().wchd_wc);
}

TEST_F(CalibrationDay0, PufEntropy) {
  EXPECT_NEAR(day0().puf_entropy, 0.6492, 0.01);  // paper: 64.92%
}

// Two-year trajectories (paper Table I "End" and change columns).
// One full-scale campaign (~25 s); all trajectory assertions share it.
class CalibrationTwoYears : public ::testing::Test {
 protected:
  static const std::vector<FleetMonthMetrics>& series() {
    static const CampaignResult result = [] {
      CampaignConfig config;  // 24 months, 16 devices, 1000/month
      return run_campaign(config);
    }();
    return result.series;
  }
  static double rel(double start, double end) { return end / start - 1.0; }
};

TEST_F(CalibrationTwoYears, WchdGrowsByPaperAmount) {
  const auto& s = series();
  // Paper: 2.49% -> 2.97%, +19.3% relative, +0.74%/month geometric.
  EXPECT_NEAR(s.back().wchd_avg, 0.0297, 0.002);
  EXPECT_NEAR(rel(s.front().wchd_avg, s.back().wchd_avg), 0.193, 0.05);
}

TEST_F(CalibrationTwoYears, WchdGrowthIsSubLinear) {
  // Paper IV-D: monthly change rate larger at the start than after 1 year.
  const auto& s = series();
  const double first_year = s[12].wchd_avg - s[0].wchd_avg;
  const double second_year = s[24].wchd_avg - s[12].wchd_avg;
  EXPECT_GT(first_year, 1.2 * second_year);
}

TEST_F(CalibrationTwoYears, NoiseEntropyImproves) {
  const auto& s = series();
  // Paper: 3.05% -> 3.64%, +19.3%.
  EXPECT_NEAR(s.back().noise_entropy_avg, 0.0364, 0.0025);
  EXPECT_NEAR(rel(s.front().noise_entropy_avg, s.back().noise_entropy_avg),
              0.193, 0.05);
}

TEST_F(CalibrationTwoYears, StableCellsDecline) {
  const auto& s = series();
  // Paper: 85.9% -> 83.7%, -2.49% relative.
  EXPECT_NEAR(s.back().stable_avg, 0.837, 0.012);
  EXPECT_NEAR(rel(s.front().stable_avg, s.back().stable_avg), -0.0249, 0.01);
}

TEST_F(CalibrationTwoYears, UniquenessUnaffected) {
  const auto& s = series();
  // Paper: HW, BCHD and PUF entropy essentially constant.
  EXPECT_NEAR(rel(s.front().fhw_avg, s.back().fhw_avg), 0.0, 0.005);
  EXPECT_NEAR(rel(s.front().bchd_avg, s.back().bchd_avg), 0.0, 0.01);
  EXPECT_NEAR(rel(s.front().puf_entropy, s.back().puf_entropy), 0.0, 0.01);
}

TEST_F(CalibrationTwoYears, EveryDeviceDegradesMonotonicallyInTrend) {
  // Per-device WCHD at the end must exceed its start (Fig. 6a: all lines
  // trend upward).
  const auto& s = series();
  for (std::size_t d = 0; d < s.front().devices.size(); ++d) {
    EXPECT_GT(s.back().devices[d].wchd_mean,
              s.front().devices[d].wchd_mean)
        << "device " << d;
  }
}

// Accelerated-aging comparator (paper IV-D / [5]): start ~5.3%, end ~7.2%,
// i.e. +1.28%/month — roughly double the nominal rate. Run at reduced
// monthly sampling to keep test runtime modest; WCHD means converge fast.
TEST(CalibrationAccelerated, OverestimatesNominalDegradation) {
  CampaignConfig config;
  config.accelerated = true;
  config.operating_point = accelerated_conditions();
  config.measurements_per_month = 120;
  const CampaignResult accel = run_campaign(config);
  EXPECT_NEAR(accel.series.front().wchd_avg, 0.053, 0.004);
  EXPECT_NEAR(accel.series.back().wchd_avg, 0.072, 0.006);
  const double rel_change =
      accel.series.back().wchd_avg / accel.series.front().wchd_avg - 1.0;
  EXPECT_NEAR(rel_change, 0.358, 0.09);
}

}  // namespace
}  // namespace pufaging
