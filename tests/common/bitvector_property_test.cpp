// Property-based suite for BitVector: random lengths 0-20000 (including
// non-multiples of 64), XOR/popcount/slice round trips, serialization
// round trips, and the tail-bit masking invariant that every packed-word
// kernel in the project leans on. Complements the example-based suite in
// bitvector_test.cpp.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/bitvector.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "support/bitgen.hpp"

namespace pufaging {
namespace {

using testsupport::adversarial_lengths;
using testsupport::random_bits;

// The class invariant: unused high bits of the last word are zero.
void expect_tail_clear(const BitVector& v) {
  if (v.words().empty()) {
    return;
  }
  const std::size_t tail = v.size() & 63U;
  if (tail != 0) {
    const std::uint64_t padding_mask = ~((std::uint64_t{1} << tail) - 1);
    EXPECT_EQ(v.words().back() & padding_mask, 0U)
        << "padding bits leaked into the tail word at size " << v.size();
  }
  EXPECT_EQ(v.words().size(), (v.size() + 63) / 64);
}

std::vector<std::size_t> property_lengths(Xoshiro256StarStar& rng,
                                          std::size_t random_count) {
  std::vector<std::size_t> lengths = adversarial_lengths();
  for (std::size_t i = 0; i < random_count; ++i) {
    lengths.push_back(static_cast<std::size_t>(rng.below(20001)));
  }
  return lengths;
}

TEST(BitVectorProperty, PopcountMatchesNaive) {
  Xoshiro256StarStar rng(0xA11CE01);
  for (const std::size_t n : property_lengths(rng, 40)) {
    const BitVector v = random_bits(rng, n);
    expect_tail_clear(v);
    std::size_t naive = 0;
    for (std::size_t i = 0; i < n; ++i) {
      naive += v.get(i) ? 1U : 0U;
    }
    EXPECT_EQ(v.count_ones(), naive) << "size " << n;
    if (n > 0) {
      EXPECT_DOUBLE_EQ(v.fractional_weight(),
                       static_cast<double>(naive) / static_cast<double>(n));
    }
  }
}

TEST(BitVectorProperty, XorRoundTripsAndPreservesInvariant) {
  Xoshiro256StarStar rng(0xA11CE02);
  for (const std::size_t n : property_lengths(rng, 30)) {
    const BitVector a = random_bits(rng, n);
    const BitVector b = random_bits(rng, n);
    const BitVector x = a ^ b;
    expect_tail_clear(x);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(x.get(i), a.get(i) != b.get(i));
    }
    // Involution: (a ^ b) ^ b == a, bitwise and by operator==.
    EXPECT_EQ(x ^ b, a);
    // Self-inverse: a ^ a is all-zero.
    EXPECT_EQ((a ^ a).count_ones(), 0U);
    // HD(a, b) == |a ^ b|.
    EXPECT_EQ(hamming_distance(a, b), x.count_ones());
  }
}

TEST(BitVectorProperty, SliceRoundTrips) {
  Xoshiro256StarStar rng(0xA11CE03);
  for (const std::size_t n : property_lengths(rng, 25)) {
    const BitVector v = random_bits(rng, n);
    // Full-range slice is the identity.
    EXPECT_EQ(v.slice(0, n), v);
    // Random sub-slices, including empty ones and tail-touching ones.
    for (int round = 0; round < 8; ++round) {
      const std::size_t begin = static_cast<std::size_t>(rng.below(n + 1));
      const std::size_t count =
          static_cast<std::size_t>(rng.below(n - begin + 1));
      const BitVector s = v.slice(begin, count);
      ASSERT_EQ(s.size(), count);
      expect_tail_clear(s);
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(s.get(i), v.get(begin + i))
            << "size " << n << " begin " << begin << " count " << count
            << " bit " << i;
      }
    }
    // Splitting at any point and re-reading bits loses nothing.
    const std::size_t cut = static_cast<std::size_t>(rng.below(n + 1));
    const BitVector head = v.slice(0, cut);
    const BitVector tail = v.slice(cut, n - cut);
    EXPECT_EQ(head.count_ones() + tail.count_ones(), v.count_ones());
  }
}

TEST(BitVectorProperty, SerializationRoundTrips) {
  Xoshiro256StarStar rng(0xA11CE04);
  for (const std::size_t n : property_lengths(rng, 20)) {
    const BitVector v = random_bits(rng, n);
    EXPECT_EQ(BitVector::from_bytes(v.to_bytes(), n), v);
    EXPECT_EQ(BitVector::from_hex(v.to_hex(), n), v);
    EXPECT_EQ(BitVector::from_string(v.to_string()), v);
    expect_tail_clear(BitVector::from_bytes(v.to_bytes(), n));
    expect_tail_clear(BitVector::from_hex(v.to_hex(), n));
  }
}

TEST(BitVectorProperty, SetFlipKeepTailClear) {
  Xoshiro256StarStar rng(0xA11CE05);
  for (const std::size_t n : property_lengths(rng, 10)) {
    if (n == 0) {
      continue;
    }
    BitVector v(n);
    for (int round = 0; round < 64; ++round) {
      const std::size_t i = static_cast<std::size_t>(rng.below(n));
      switch (rng.below(3)) {
        case 0:
          v.set(i, true);
          break;
        case 1:
          v.set(i, false);
          break;
        default:
          v.flip(i);
          break;
      }
    }
    expect_tail_clear(v);
    // Setting and clearing the very last bit never touches padding.
    v.set(n - 1, true);
    expect_tail_clear(v);
    v.flip(n - 1);
    expect_tail_clear(v);
  }
}

// Regression pin for the tail-word audit (this PR): every constructor
// path must mask padding identically, and the padding bits must be
// invisible to popcount/HD/equality on every kernel tier. from_bytes and
// from_hex accept inputs whose final partial byte has garbage above the
// bit count — exactly the shape collector records and checkpoints carry.
TEST(BitVectorTailRegression, PaddingBitsAreMaskedEverywhere) {
  for (const std::size_t n :
       {std::size_t{1}, std::size_t{5}, std::size_t{63}, std::size_t{65},
        std::size_t{8191}, std::size_t{8193}}) {
    // All-ones raw bytes, truncated to n bits: bits beyond n arrive set
    // and must be dropped.
    std::vector<std::uint8_t> bytes((n + 7) / 8, 0xFF);
    const BitVector v = BitVector::from_bytes(bytes, n);
    EXPECT_EQ(v.count_ones(), n) << "size " << n;
    const std::size_t tail = n & 63U;
    if (tail != 0) {
      EXPECT_EQ(v.words().back(), (std::uint64_t{1} << tail) - 1);
    }

    // Equality ignores nothing: two all-ones vectors built through
    // different paths (bytes vs hex vs set()) are identical objects.
    std::string hex;
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      hex += "ff";
    }
    EXPECT_EQ(BitVector::from_hex(hex, n), v);
    BitVector built(n);
    for (std::size_t i = 0; i < n; ++i) {
      built.set(i, true);
    }
    EXPECT_EQ(built, v);

    // HD against all-zero is exactly n — padding contributes nothing.
    EXPECT_EQ(hamming_distance(v, BitVector(n)), n);
    // XOR with itself leaves no stray bits anywhere in the words.
    const BitVector zero = v ^ v;
    for (const std::uint64_t w : zero.words()) {
      EXPECT_EQ(w, 0U);
    }
  }
}

}  // namespace
}  // namespace pufaging
