// Vectorized bit kernels behind every Hamming-style metric in the paper.
//
// WCHD, BCHD, fractional Hamming weight, stable-cell counting and both
// min-entropies all reduce to popcount/XOR sweeps and per-cell ones
// accumulation over 8192-bit start-up patterns, repeated ~175 million
// times over the two-year campaign. This module is the single home of
// those inner loops: a scalar reference implementation (the oracle the
// differential test suite trusts), a portable word-parallel tier, and
// AVX2/AVX-512 tiers (NEON on AArch64), selected once at runtime by CPU
// dispatch.
//
// Determinism contract: every kernel returns integers (bit counts or
// per-cell counters). Integer results are either equal or wrong — there
// is no floating-point reassociation anywhere in this layer — so "every
// dispatch level is bit-identical to the scalar oracle" is an exactly
// testable property, and the campaign's PR 1/PR 2 guarantee (same bits at
// any --threads, any fault plan) extends unchanged to any SIMD level.
// tests/common/bitkernel_test.cpp enforces this on random, adversarial
// (tail bits, unaligned lengths, all-zero/all-one) and paper-scale
// inputs.
//
// Tail hardening: callers hand kernels whole 64-bit words plus the exact
// bit length. Kernels that could leak padding into per-cell counters
// (accumulate_ones) mask the tail word themselves, so even a BitVector
// whose trailing-bits invariant was violated upstream cannot corrupt
// counter state differently per dispatch level.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace pufaging::bitkernel {

/// Implementation tiers, ordered from reference to fastest. `kScalar` is
/// the oracle: one word at a time, straight std::popcount / bit loops.
/// `kWord` is the portable fast tier (4-way unrolled word-parallel).
/// `kAvx2` / `kNeon` / `kAvx512` are the vector tiers; each is only
/// available when both compiled in and supported by the running CPU.
enum class Level {
  kScalar = 0,
  kWord = 1,
  kAvx2 = 2,
  kNeon = 3,
  kAvx512 = 4,
};

/// Number of tiers in Level (array extent for per-tier tallies).
constexpr std::size_t kLevelCount = 5;

/// Human-readable tier name ("scalar", "word", "avx2", "neon", "avx512").
const char* level_name(Level level);

/// Parses a tier name as accepted by the PUFAGING_SIMD environment
/// variable. Throws InvalidArgument on unknown names.
Level level_from_name(const std::string& name);

/// Tiers compiled in AND usable on this CPU, in ascending Level order.
/// Always contains kScalar and kWord.
std::vector<Level> available_levels();

/// The tier the dispatched entry points currently use. On first use the
/// best available tier is selected, unless the PUFAGING_SIMD environment
/// variable ("scalar", "word", "avx2", "neon", "avx512") pins one.
Level active_level();

/// Forces the dispatched entry points onto `level` (which must be
/// available). Intended for the differential tests and benches; prefer
/// ScopedLevel so the previous tier is restored.
void force_level(Level level);

/// RAII tier override for tests and benches.
class ScopedLevel {
 public:
  explicit ScopedLevel(Level level) : previous_(active_level()) {
    force_level(level);
  }
  ~ScopedLevel() { force_level(previous_); }
  ScopedLevel(const ScopedLevel&) = delete;
  ScopedLevel& operator=(const ScopedLevel&) = delete;

 private:
  Level previous_;
};

/// Cumulative dispatched entry-point calls per tier (indexed by Level),
/// merged across every thread since process start. The tally is a pure
/// observability record — monotonic, never read by any kernel — so the
/// observability layer takes deltas around a campaign to report which
/// SIMD tier actually served it. Kept by per-thread relaxed atomic cells
/// (no shared cache line on the hot path, merged here at read), so the
/// cost per dispatched call is one uncontended increment.
struct DispatchCounts {
  std::uint64_t calls[kLevelCount] = {};

  std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < kLevelCount; ++i) {
      sum += calls[i];
    }
    return sum;
  }
};

/// Current merged dispatch tally.
DispatchCounts dispatch_counts();

/// The kernel function table of one tier. All counts are exact integers;
/// `words` spans hold whole 64-bit words (bit i lives at word i/64, bit
/// i%64, LSB-first — the BitVector layout).
struct Kernels {
  /// Number of set bits in `words[0, n)`.
  std::size_t (*popcount)(const std::uint64_t* words, std::size_t n);

  /// Fused XOR + popcount: Hamming distance between two equal-length
  /// word spans, without materializing the XOR.
  std::size_t (*xor_popcount)(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t n);

  /// Per-cell ones accumulation: counters[i] += bit i of `words`, for
  /// i in [0, bit_count). The tail word is masked internally, so padding
  /// bits can never reach a counter. Requires counters[0, bit_count).
  void (*accumulate_ones)(const std::uint64_t* words, std::size_t bit_count,
                          std::uint32_t* counters);

  /// Batched materialized XOR: out[i] = a[i] ^ b[i] for i in [0, n).
  /// The streaming stage of the fleet-auth hot path (whole request groups
  /// of helper-data offsets XORed in one sweep so the vector tiers
  /// amortize); `out` may alias `a` or `b` element-wise but must not
  /// partially overlap.
  void (*xor_rows)(const std::uint64_t* a, const std::uint64_t* b,
                   std::uint64_t* out, std::size_t n);

  /// Fused per-measurement statistics — the device-month hot path in one
  /// pass instead of three (HD to reference, Hamming weight, per-cell ones):
  ///   *dist = HD(row, ref) over the ceil(bit_count/64) whole words,
  ///   *pop  = popcount(row) over the same whole words,
  ///   counters[i] += bit i of row for i in [0, bit_count).
  /// dist/pop count raw words like popcount/xor_popcount (BitVector
  /// guarantees clean padding); the counter update masks the tail word
  /// like accumulate_ones, so dirty padding cannot reach a counter.
  void (*row_stats)(const std::uint64_t* row, const std::uint64_t* ref,
                    std::size_t bit_count, std::uint32_t* counters,
                    std::uint64_t* dist, std::uint64_t* pop);
};

/// Function table of one tier (for the differential harness, which
/// cross-checks every available tier against kernels_for(kScalar)).
const Kernels& kernels_for(Level level);

// ---------------------------------------------------------------------------
// Dispatched entry points (the ones production code calls).
// ---------------------------------------------------------------------------

/// Set bits in `words[0, n)` at the active tier.
std::size_t popcount(const std::uint64_t* words, std::size_t n);

/// Hamming distance between equal-length word spans at the active tier.
std::size_t xor_popcount(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t n);

/// counters[i] += bit i of `words` for i in [0, bit_count), at the
/// active tier; the tail word is masked internally.
void accumulate_ones(const std::uint64_t* words, std::size_t bit_count,
                     std::uint32_t* counters);

/// out[i] = a[i] ^ b[i] for i in [0, n) at the active tier. Used by the
/// auth service to XOR a whole batch of packed responses against their
/// helper-data records in one contiguous sweep.
void xor_rows(const std::uint64_t* a, const std::uint64_t* b,
              std::uint64_t* out, std::size_t n);

/// Fused per-measurement statistics at the active tier (see
/// Kernels::row_stats): Hamming distance to `ref`, Hamming weight and
/// per-cell ones accumulation of `row` in a single pass.
void row_stats(const std::uint64_t* row, const std::uint64_t* ref,
               std::size_t bit_count, std::uint32_t* counters,
               std::uint64_t* dist, std::uint64_t* pop);

/// Batched fused statistics over `row_count` packed rows of
/// `words_per_row` words: dists[r]/pops[r] receive row r's Hamming
/// distance to `ref` and weight, counters accumulate every row's cells.
/// One dispatch for the whole batch.
void row_stats_batch(const std::uint64_t* rows, std::size_t row_count,
                     std::size_t words_per_row, std::size_t bit_count,
                     const std::uint64_t* ref, std::uint32_t* counters,
                     std::uint64_t* dists, std::uint64_t* pops);

/// Batched ones accumulation over a whole measurement batch: one
/// accumulate_ones per row. `rows` holds `row_count` packed patterns of
/// `bit_count` bits each, laid out back to back at `words_per_row` words.
void accumulate_ones_batch(const std::uint64_t* rows, std::size_t row_count,
                           std::size_t words_per_row, std::size_t bit_count,
                           std::uint32_t* counters);

/// Cache-blocked all-pairs Hamming distances over `n` packed rows of
/// `words_per_row` words each: out[k] = HD(row i, row j) for every
/// unordered pair i < j in lexicographic order, k = 0 .. n(n-1)/2 - 1.
/// This is the BCHD kernel; rows are the per-device reference patterns.
void all_pairs_hamming(const std::uint64_t* rows, std::size_t n,
                       std::size_t words_per_row, std::size_t* out);

/// Column ones counts across `n` packed rows: counters[i] = number of
/// rows whose bit i is set, i in [0, bit_count). Counters are
/// zero-initialized by the callee. This is the PUF-entropy kernel (ones
/// per bit location across the fleet's reference patterns).
void column_ones(const std::uint64_t* rows, std::size_t n,
                 std::size_t words_per_row, std::size_t bit_count,
                 std::uint32_t* counters);

}  // namespace pufaging::bitkernel
