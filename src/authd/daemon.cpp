#include "authd/daemon.hpp"

#include <algorithm>

#include "auth/registry.hpp"
#include "common/error.hpp"

namespace pufaging::authd {

AuthDaemon::AuthDaemon(const auth::AuthService& service,
                       const DaemonConfig& config)
    : service_(service),
      config_(config),
      limiter_(config.rate),
      lockouts_(config.lockout) {
  if (config_.queue_cap == 0 || config_.batch_max == 0) {
    throw InvalidArgument("AuthDaemon: queue_cap and batch_max must be > 0");
  }
  config_.shed_watermark = std::clamp(config_.shed_watermark, 0.0, 1.0);
}

obs::MonotonicClock& AuthDaemon::clock() const {
  return config_.clock != nullptr ? *config_.clock
                                  : obs::RealClock::instance();
}

void AuthDaemon::attach_lockout_store(MeasurementStore* store) {
  lockout_store_ = store;
}

void AuthDaemon::adopt_lockouts(LockoutLadder ladder) {
  lockouts_ = std::move(ladder);
}

void AuthDaemon::attach_registry_store(MeasurementStore* store) {
  registry_store_ = store;
}

void AuthDaemon::counter(const char* name, std::uint64_t delta) {
  if (config_.metrics != nullptr) {
    config_.metrics->add(name, delta);
  }
}

AuthDaemon::ConnId AuthDaemon::open_connection() {
  if (draining_ || sessions_.size() >= config_.max_connections) {
    counter("authd.conn.refused");
    return 0;
  }
  const ConnId conn = next_conn_++;
  Session session;
  session.last_activity_ns = clock().now_ns();
  sessions_.emplace(conn, std::move(session));
  stats_.connections_opened += 1;
  counter("authd.conn.opened");
  if (config_.metrics != nullptr) {
    config_.metrics->gauge_set("authd.connections",
                               static_cast<double>(sessions_.size()));
  }
  return conn;
}

void AuthDaemon::close_connection(ConnId conn) {
  const auto it = sessions_.find(conn);
  if (it == sessions_.end()) {
    return;
  }
  sessions_.erase(it);
  stats_.connections_closed += 1;
  counter("authd.conn.closed");
  if (config_.metrics != nullptr) {
    config_.metrics->gauge_set("authd.connections",
                               static_cast<double>(sessions_.size()));
  }
}

AuthDaemon::Session* AuthDaemon::find(ConnId conn) {
  const auto it = sessions_.find(conn);
  return it != sessions_.end() ? &it->second : nullptr;
}

const AuthDaemon::Session* AuthDaemon::find(ConnId conn) const {
  const auto it = sessions_.find(conn);
  return it != sessions_.end() ? &it->second : nullptr;
}

void AuthDaemon::kill(ConnId conn, CloseReason reason) {
  Session* session = find(conn);
  if (session == nullptr || session->close_wanted) {
    return;
  }
  session->close_wanted = true;
  session->reason = reason;
  if (reason == CloseReason::kProtocolError) {
    stats_.protocol_errors += 1;
    counter("authd.protocol_errors");
  } else {
    stats_.reaped += 1;
    counter("authd.reaped");
  }
}

void AuthDaemon::send(ConnId conn, const AuthResponseMsg& msg,
                      std::uint64_t now_ns) {
  Session* session = find(conn);
  if (session == nullptr || session->close_wanted) {
    stats_.responses_dropped += 1;
    counter("authd.responses_dropped");
    return;
  }
  const std::string frame = encode_auth_response(msg);
  if (session->output.size() + frame.size() > config_.output_buffer_cap) {
    // The client stopped reading and the buffer is at its bound: drop
    // the client, not the bound.
    kill(conn, CloseReason::kOutputOverflow);
    stats_.responses_dropped += 1;
    counter("authd.responses_dropped");
    return;
  }
  if (session->output.empty()) {
    session->stall_since_ns = now_ns;
  }
  session->output.append(frame);
}

void AuthDaemon::on_bytes(ConnId conn, std::string_view bytes) {
  Session* session = find(conn);
  if (session == nullptr || session->close_wanted || !session->open) {
    return;
  }
  const std::uint64_t now_ns = clock().now_ns();
  session->last_activity_ns = now_ns;
  try {
    session->reader.feed(bytes);
    while (true) {
      std::optional<Frame> frame = session->reader.next();
      if (!frame) {
        break;
      }
      stats_.frames += 1;
      counter("authd.frames");
      admit(conn, parse_auth_request(*frame), now_ns);
      // admit() may have killed the connection (geometry mismatch).
      session = find(conn);
      if (session == nullptr || session->close_wanted) {
        return;
      }
    }
  } catch (const ParseError&) {
    // Bad magic, CRC mismatch, oversize length, malformed payload: the
    // stream cannot be re-synchronized, so the connection dies.
    kill(conn, CloseReason::kProtocolError);
  }
}

void AuthDaemon::admit(ConnId conn, AuthRequestMsg msg,
                       std::uint64_t now_ns) {
  obs::ScopedTimer timer(config_.metrics, "authd.admit_ns", clock());
  if (msg.response.size() != service_.words_per_response()) {
    // A geometry mismatch means the client was built against a different
    // blocks config; nothing later on this stream can be valid.
    kill(conn, CloseReason::kProtocolError);
    return;
  }
  AuthResponseMsg reply;
  reply.request_id = msg.request_id;
  if (draining_) {
    reply.status = ResponseStatus::kDraining;
    stats_.draining_rejected += 1;
    counter("authd.draining_rejected");
    send(conn, reply, now_ns);
    return;
  }
  if (const std::uint64_t until =
          lockouts_.check(msg.device_id, now_ns)) {
    reply.status = ResponseStatus::kLockedOut;
    reply.retry_at_ns = until;
    stats_.locked_out += 1;
    counter("authd.locked_out");
    send(conn, reply, now_ns);
    return;
  }
  if (const std::uint64_t at = limiter_.try_acquire(msg.device_id, now_ns)) {
    reply.status = ResponseStatus::kRateLimited;
    reply.retry_at_ns = at;
    stats_.rate_limited += 1;
    counter("authd.rate_limited");
    send(conn, reply, now_ns);
    return;
  }
  if (queue_.size() >= config_.queue_cap) {
    reply.status = ResponseStatus::kRetryAfter;
    reply.retry_at_ns = now_ns + config_.request_deadline_ns;
    stats_.retry_after += 1;
    counter("authd.retry_after");
    send(conn, reply, now_ns);
    return;
  }
  const std::size_t watermark = static_cast<std::size_t>(
      config_.shed_watermark * static_cast<double>(config_.queue_cap));
  if (queue_.size() >= watermark && (shed_coin_++ & 1) != 0) {
    reply.status = ResponseStatus::kShed;
    reply.retry_at_ns = now_ns + config_.request_deadline_ns;
    stats_.shed += 1;
    counter("authd.shed");
    send(conn, reply, now_ns);
    return;
  }
  Pending pending;
  pending.conn = conn;
  pending.request_id = msg.request_id;
  pending.device_id = msg.device_id;
  pending.response = std::move(msg.response);
  pending.admitted_ns = now_ns;
  queue_.push_back(std::move(pending));
  stats_.admitted += 1;
  counter("authd.admitted");
  if (config_.metrics != nullptr) {
    config_.metrics->gauge_set("authd.queue_depth",
                               static_cast<double>(queue_.size()));
  }
}

std::string_view AuthDaemon::output(ConnId conn) const {
  const Session* session = find(conn);
  return session != nullptr ? std::string_view(session->output)
                            : std::string_view();
}

void AuthDaemon::consume_output(ConnId conn, std::size_t n) {
  Session* session = find(conn);
  if (session == nullptr) {
    return;
  }
  session->output.erase(0, n);
  const std::uint64_t now_ns = clock().now_ns();
  session->last_activity_ns = now_ns;
  session->stall_since_ns = session->output.empty() ? 0 : now_ns;
}

bool AuthDaemon::wants_close(ConnId conn) const {
  const Session* session = find(conn);
  return session != nullptr && session->close_wanted;
}

CloseReason AuthDaemon::close_reason(ConnId conn) const {
  const Session* session = find(conn);
  return session != nullptr ? session->reason : CloseReason::kNone;
}

std::vector<AuthDaemon::ConnId> AuthDaemon::active_connections() const {
  std::vector<ConnId> out;
  for (const auto& [conn, session] : sessions_) {
    if (!session.output.empty() || session.close_wanted) {
      out.push_back(conn);
    }
  }
  return out;
}

void AuthDaemon::record_lockout(const LockoutEvent& event) {
  if (lockout_store_ != nullptr && lockout_store_->has_state()) {
    lockout_store_->append_record(serialize_lockout_event(event));
  }
}

void AuthDaemon::reap(std::uint64_t now_ns) {
  for (auto& [conn, session] : sessions_) {
    if (session.close_wanted || !session.open) {
      continue;
    }
    if (!session.output.empty() && session.stall_since_ns != 0 &&
        now_ns - session.stall_since_ns >= config_.write_stall_ns) {
      kill(conn, CloseReason::kWriteStall);
      continue;
    }
    if (config_.idle_timeout_ns != 0 &&
        now_ns - session.last_activity_ns >= config_.idle_timeout_ns) {
      kill(conn, CloseReason::kIdle);
    }
  }
}

std::size_t AuthDaemon::pump() {
  const std::uint64_t now_ns = clock().now_ns();

  // 1. Deadline sweep. Admission is FIFO with a uniform deadline, so
  // expired requests are a prefix of the queue.
  while (!queue_.empty() &&
         now_ns - queue_.front().admitted_ns >= config_.request_deadline_ns) {
    const Pending& expired = queue_.front();
    AuthResponseMsg reply;
    reply.request_id = expired.request_id;
    reply.status = ResponseStatus::kDeadline;
    stats_.deadline_expired += 1;
    counter("authd.deadline_expired");
    send(expired.conn, reply, now_ns);
    queue_.pop_front();
  }

  // 2. Form one batch from the queue front (cross-connection coalescing).
  const std::size_t count = std::min(config_.batch_max, queue_.size());
  std::size_t decided = 0;
  if (count > 0) {
    std::vector<Pending> batch;
    batch.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    std::vector<auth::AuthRequest> requests(count);
    std::vector<auth::AuthDecision> decisions(count);
    for (std::size_t i = 0; i < count; ++i) {
      requests[i].device_id = batch[i].device_id;
      requests[i].response = batch[i].response.data();
    }
    {
      obs::ScopedTimer timer(config_.metrics, "authd.batch_ns", clock());
      std::optional<obs::Tracer::Span> span;
      if (config_.tracer != nullptr) {
        span.emplace(config_.tracer->span("authd.batch"));
      }
      service_.authenticate_batch(requests.data(), count, decisions.data());
    }
    if (config_.metrics != nullptr) {
      config_.metrics->observe("authd.batch_size", count);
    }
    const std::uint64_t done_ns = clock().now_ns();
    for (std::size_t i = 0; i < count; ++i) {
      const auth::AuthDecision decision = decisions[i];
      // The bit-identity witness: device id (LE) + decision byte, in
      // decision order.
      std::uint8_t witness[9];
      for (int b = 0; b < 8; ++b) {
        witness[b] =
            static_cast<std::uint8_t>(batch[i].device_id >> (8 * b));
      }
      witness[8] = static_cast<std::uint8_t>(decision);
      decisions_hash_.update(witness, sizeof witness);
      stats_.decided += 1;

      const bool accepted = decision == auth::AuthDecision::kAccept;
      const bool strike =
          decision == auth::AuthDecision::kRejectKey ||
          (config_.lockout.strike_on_decode &&
           decision == auth::AuthDecision::kRejectDecode);
      if (const std::optional<LockoutEvent> event = lockouts_.on_decision(
              batch[i].device_id, accepted, strike, done_ns)) {
        record_lockout(*event);
        if (event->entry.locked_until_ns > done_ns) {
          counter("authd.lockouts_entered");
        }
      }
      AuthResponseMsg reply;
      reply.request_id = batch[i].request_id;
      reply.status = ResponseStatus::kDecision;
      reply.decision = static_cast<std::uint8_t>(decision);
      send(batch[i].conn, reply, done_ns);
      if (config_.metrics != nullptr) {
        config_.metrics->observe("authd.queue_wait_ns",
                                 done_ns - batch[i].admitted_ns);
      }
    }
    counter("authd.decided", count);
    decided = count;
  }

  // 3. Reap stalled and idle connections.
  reap(clock().now_ns());
  if (config_.metrics != nullptr) {
    config_.metrics->gauge_set("authd.queue_depth",
                               static_cast<double>(queue_.size()));
  }
  return decided;
}

void AuthDaemon::begin_drain() {
  if (!draining_) {
    draining_ = true;
    counter("authd.drain_begun");
  }
}

DaemonStats AuthDaemon::finish_drain() {
  begin_drain();
  if (!drain_finished_) {
    while (!queue_.empty()) {
      pump();
    }
    if (lockout_store_ != nullptr) {
      publish_lockouts(*lockout_store_, lockouts_);
    }
    if (registry_store_ != nullptr) {
      auth::publish_registry(*registry_store_, service_.registry());
    }
    drain_finished_ = true;
    counter("authd.drain_finished");
  }
  return stats();
}

DaemonStats AuthDaemon::stats() const {
  DaemonStats out = stats_;
  out.queue_depth = queue_.size();
  return out;
}

std::string AuthDaemon::decisions_sha256() const {
  Sha256 copy = decisions_hash_;
  return Sha256::to_hex(copy.finalize());
}

const char* to_string(CloseReason reason) {
  switch (reason) {
    case CloseReason::kNone:
      return "none";
    case CloseReason::kProtocolError:
      return "protocol-error";
    case CloseReason::kOutputOverflow:
      return "output-overflow";
    case CloseReason::kWriteStall:
      return "write-stall";
    case CloseReason::kIdle:
      return "idle";
  }
  return "unknown";
}

}  // namespace pufaging::authd
