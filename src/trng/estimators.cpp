#include "trng/estimators.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"

namespace pufaging {

namespace {
constexpr double kZ99 = 2.5758293035489004;  // 99% two-sided normal quantile

double clamp_entropy(double h) { return std::clamp(h, 0.0, 1.0); }
}  // namespace

double mcv_min_entropy(const BitVector& bits) {
  const std::size_t n = bits.size();
  if (n < 2) {
    throw InvalidArgument("mcv_min_entropy: need at least 2 bits");
  }
  const std::size_t ones = bits.count_ones();
  const double p_hat =
      static_cast<double>(std::max(ones, n - ones)) / static_cast<double>(n);
  const double p_upper = std::min(
      1.0, p_hat + kZ99 * std::sqrt(p_hat * (1.0 - p_hat) /
                                    static_cast<double>(n - 1)));
  return clamp_entropy(-std::log2(p_upper));
}

double markov_min_entropy(const BitVector& bits) {
  const std::size_t n = bits.size();
  if (n < 2) {
    throw InvalidArgument("markov_min_entropy: need at least 2 bits");
  }
  // Empirical initial and transition probabilities.
  const double p1 =
      static_cast<double>(bits.count_ones()) / static_cast<double>(n);
  double counts[2][2] = {{0.0, 0.0}, {0.0, 0.0}};
  for (std::size_t i = 0; i + 1 < n; ++i) {
    counts[bits.get(i) ? 1 : 0][bits.get(i + 1) ? 1 : 0] += 1.0;
  }
  double trans[2][2];
  for (int s = 0; s < 2; ++s) {
    const double total = counts[s][0] + counts[s][1];
    if (total == 0.0) {
      // State never seen: worst case, deterministic transitions.
      trans[s][0] = trans[s][1] = 1.0;
    } else {
      trans[s][0] = counts[s][0] / total;
      trans[s][1] = counts[s][1] / total;
    }
  }
  // Most probable 128-step path (SP 800-90B 6.3.3), in log space.
  constexpr int kSteps = 128;
  double best[2] = {std::log2(std::max(1e-12, 1.0 - p1)),
                    std::log2(std::max(1e-12, p1))};
  for (int step = 1; step < kSteps; ++step) {
    const double next0 =
        std::max(best[0] + std::log2(std::max(1e-12, trans[0][0])),
                 best[1] + std::log2(std::max(1e-12, trans[1][0])));
    const double next1 =
        std::max(best[0] + std::log2(std::max(1e-12, trans[0][1])),
                 best[1] + std::log2(std::max(1e-12, trans[1][1])));
    best[0] = next0;
    best[1] = next1;
  }
  const double log_p_max = std::max(best[0], best[1]);
  return clamp_entropy(-log_p_max / kSteps);
}

double collision_min_entropy(const BitVector& bits) {
  const std::size_t pairs = bits.size() / 2;
  if (pairs < 10) {
    throw InvalidArgument("collision_min_entropy: need at least 20 bits");
  }
  // Collision probability from disjoint adjacent pairs: for an iid
  // Bernoulli(p) source Pr(b_{2i} == b_{2i+1}) = p^2 + (1-p)^2.
  std::size_t equal = 0;
  for (std::size_t i = 0; i < pairs; ++i) {
    equal += bits.get(2 * i) == bits.get(2 * i + 1) ? 1U : 0U;
  }
  const double pc_hat =
      static_cast<double>(equal) / static_cast<double>(pairs);
  const double pc_upper = std::min(
      1.0, pc_hat + kZ99 * std::sqrt(pc_hat * (1.0 - pc_hat) /
                                     static_cast<double>(pairs)));
  // Invert: p = (1 + sqrt(2 Pc - 1)) / 2 (Pc >= 1/2 always holds for the
  // upper bound of a binary source).
  const double pc = std::max(0.5, pc_upper);
  const double p = 0.5 * (1.0 + std::sqrt(2.0 * pc - 1.0));
  return clamp_entropy(-std::log2(p));
}

double assessed_min_entropy(const BitVector& bits) {
  return std::min({mcv_min_entropy(bits), markov_min_entropy(bits),
                   collision_min_entropy(bits)});
}

}  // namespace pufaging
