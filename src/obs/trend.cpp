#include "obs/trend.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace pufaging::obs {
namespace {

constexpr char kBenchPrefix[] = "BENCH ";

bool is_hash_field(const std::string& field) {
  if (field == "identity_hash") {
    return true;
  }
  const auto ends_with = [&](const char* suffix) {
    const std::size_t len = std::char_traits<char>::length(suffix);
    return field.size() >= len &&
           field.compare(field.size() - len, len, suffix) == 0;
  };
  return ends_with("_hash") || ends_with("_sha256");
}

std::string sample_name(const Json& fields) {
  for (const char* key : {"bench", "name"}) {
    if (fields.is_object() && fields.contains(key) &&
        fields.at(key).is_string()) {
      return fields.at(key).as_string();
    }
  }
  return "";
}

/// History values of one (bench, field) coordinate, oldest first.
struct FieldHistory {
  std::vector<double> numeric;
  std::vector<std::string> text;
};

FieldHistory collect_history(const std::vector<BenchSample>& history,
                             const std::string& bench,
                             const std::string& field) {
  FieldHistory out;
  for (const BenchSample& s : history) {
    if (s.name != bench || !s.fields.is_object() ||
        !s.fields.contains(field)) {
      continue;
    }
    const Json& v = s.fields.at(field);
    if (v.is_number()) {
      out.numeric.push_back(v.as_double());
    } else if (v.is_string()) {
      out.text.push_back(v.as_string());
    }
  }
  return out;
}

}  // namespace

std::vector<BenchSample> parse_bench_lines(const std::string& text) {
  std::vector<BenchSample> samples;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    std::string body = line;
    if (body.rfind(kBenchPrefix, 0) == 0) {
      body = body.substr(sizeof(kBenchPrefix) - 1);
    }
    const std::size_t start = body.find_first_not_of(" \t\r");
    if (start == std::string::npos || body[start] != '{') {
      continue;
    }
    try {
      Json fields = Json::parse(body.substr(start));
      if (!fields.is_object()) {
        continue;
      }
      samples.push_back(BenchSample{sample_name(fields), std::move(fields)});
    } catch (const ParseError&) {
      continue;
    }
  }
  return samples;
}

bool TrendReport::failed() const {
  for (const TrendFinding& f : findings) {
    if (f.severity == TrendSeverity::kFail) {
      return true;
    }
  }
  return false;
}

bool TrendReport::warned() const {
  for (const TrendFinding& f : findings) {
    if (f.severity == TrendSeverity::kWarn) {
      return true;
    }
  }
  return false;
}

std::string TrendReport::render() const {
  std::string out;
  for (const TrendFinding& f : findings) {
    const char* tag = f.severity == TrendSeverity::kFail   ? "FAIL"
                      : f.severity == TrendSeverity::kWarn ? "WARN"
                                                           : "info";
    out += tag;
    out += " [";
    out += f.bench.empty() ? "<unnamed>" : f.bench;
    out += ".";
    out += f.field;
    out += "] ";
    out += f.message;
    out += "\n";
  }
  return out;
}

TrendReport diff_trends(const std::vector<BenchSample>& history,
                        const std::vector<BenchSample>& current,
                        double sigma) {
  TrendReport report;
  char msg[256];
  for (const BenchSample& sample : current) {
    if (!sample.fields.is_object()) {
      continue;
    }
    for (const auto& [field, value] : sample.fields.as_object()) {
      if (field == "name" || field == "bench") {
        continue;
      }
      // Correctness contracts first: a false bit_identical in the current
      // run fails on its own, no history needed.
      if (field == "bit_identical" && value.is_bool() && !value.as_bool()) {
        report.findings.push_back(
            {TrendSeverity::kFail, sample.name, field,
             "bit_identical is false in the current run"});
        continue;
      }
      if (value.is_string() && is_hash_field(field)) {
        const FieldHistory hist =
            collect_history(history, sample.name, field);
        if (hist.text.empty()) {
          continue;
        }
        const std::string& latest = hist.text.back();
        if (latest != value.as_string()) {
          std::snprintf(msg, sizeof(msg),
                        "identity mismatch: history %s, current %s",
                        latest.c_str(), value.as_string().c_str());
          report.findings.push_back(
              {TrendSeverity::kFail, sample.name, field, msg});
        }
        continue;
      }
      if (!value.is_number()) {
        continue;
      }
      const FieldHistory hist = collect_history(history, sample.name, field);
      if (hist.numeric.size() < 3) {
        continue;  // not enough samples for a meaningful sigma
      }
      double mean = 0.0;
      for (const double v : hist.numeric) {
        mean += v;
      }
      mean /= static_cast<double>(hist.numeric.size());
      double var = 0.0;
      for (const double v : hist.numeric) {
        var += (v - mean) * (v - mean);
      }
      var /= static_cast<double>(hist.numeric.size());
      // Floor the deviation so a perfectly flat history (deterministic
      // counters) still tolerates sub-ppm float noise.
      const double sd =
          std::max(std::sqrt(var), std::abs(mean) * 1e-6 + 1e-12);
      const double z = (value.as_double() - mean) / sd;
      if (std::abs(z) > sigma) {
        std::snprintf(msg, sizeof(msg),
                      "%.6g is %+.1f sigma from the history mean %.6g "
                      "(n=%zu, sd=%.3g)",
                      value.as_double(), z, mean, hist.numeric.size(), sd);
        report.findings.push_back(
            {TrendSeverity::kWarn, sample.name, field, msg});
      }
    }
  }
  return report;
}

}  // namespace pufaging::obs
