// Ablation A: the noise operating point. The single ratio sigma_pv/sigma_n
// fixes the day-0 triple (WCHD, stable-cell ratio, noise entropy); this
// sweep shows how the paper's measured triple pins the model to
// sigma_pv/sigma_n ~ 17.5 (DESIGN.md calibration note).
#include "bench_common.hpp"
#include "io/table.hpp"
#include "testbed/campaign.hpp"

namespace pufaging {
namespace {

FleetMonthMetrics day0_with_noise(double sigma_ratio) {
  CampaignConfig config;
  config.months = 0;
  config.measurements_per_month = 400;
  config.fleet.device.noise.sigma_at_25c = 1.0 / sigma_ratio;
  return run_campaign(config).series.front();
}

void reproduce() {
  bench::banner(
      "Ablation A - noise ratio sigma_pv/sigma_n vs day-0 PUF qualities");

  TablePrinter t({"sigma_pv/sigma_n", "WCHD", "Stable cells", "Noise entropy",
                  "BCHD"},
                 {Align::kRight, Align::kRight, Align::kRight, Align::kRight,
                  Align::kRight});
  for (double ratio : {8.0, 12.0, 15.0, 17.5, 20.0, 25.0, 32.0}) {
    const FleetMonthMetrics m = day0_with_noise(ratio);
    char ratio_text[16];
    std::snprintf(ratio_text, sizeof ratio_text, "%.1f", ratio);
    t.add_row({ratio_text,
               TablePrinter::percent(m.wchd_avg),
               TablePrinter::percent(m.stable_avg),
               TablePrinter::percent(m.noise_entropy_avg),
               TablePrinter::percent(m.bchd_avg)});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf(
      "\npaper targets: WCHD 2.49%%, stable 85.9%%, noise entropy 3.05%% "
      "-> calibrated ratio 17.5\n"
      "note: BCHD is insensitive to the noise ratio (uniqueness is a\n"
      "process-variation property), exactly as the paper finds.\n");
}

void BM_Day0Snapshot(benchmark::State& state) {
  for (auto _ : state) {
    CampaignConfig config;
    config.months = 0;
    config.measurements_per_month = 100;
    benchmark::DoNotOptimize(run_campaign(config));
  }
}
BENCHMARK(BM_Day0Snapshot)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pufaging

int main(int argc, char** argv) {
  return pufaging::bench::run(argc, argv, pufaging::reproduce);
}
