#include "testbed/boards.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pufaging {

void SignalChannel::signal() {
  ++raised_;
  if (waiter_) {
    auto fn = std::move(waiter_);
    waiter_ = nullptr;
    fn();
  } else {
    ++pending_;
  }
}

void SignalChannel::wait(std::function<void()> on_signal) {
  if (waiter_) {
    throw ProtocolError("SignalChannel: second waiter registered");
  }
  if (pending_ > 0) {
    --pending_;
    on_signal();
    return;
  }
  waiter_ = std::move(on_signal);
}

SlaveBoard::SlaveBoard(std::uint32_t board_id, SramDevice device,
                       EventQueue& queue, const TestbedTiming& timing)
    : board_id_(board_id),
      device_(std::move(device)),
      queue_(&queue),
      timing_(timing) {}

void SlaveBoard::attach_power(PowerSwitch& power) {
  power.add_channel(board_id_);
  power.observe([this](std::uint32_t channel, bool on, SimTime) {
    if (channel == board_id_) {
      on_power(on);
    }
  });
}

void SlaveBoard::enable_faults(const FaultPlan& plan, std::uint64_t seed) {
  plan.validate();
  fault_plan_ = plan;
  fault_rng_.emplace(seed);
}

void SlaveBoard::on_power(bool on) {
  powered_ = on;
  ++power_epoch_;
  if (!on) {
    // SRAM contents are lost when the rail drops.
    data_ready_ = false;
    buffered_.reset();
    return;
  }
  // Board-level faults, drawn per power-up in fixed order (hang, reset,
  // brownout) from the board's private fault stream.
  bool reset_later = false;
  bool brownout = false;
  if (fault_plan_) {
    if (hang_remaining_ > 0) {
      // Firmware is wedged from an earlier hang: the board never answers
      // this cycle.
      --hang_remaining_;
      ++hangs_;
      return;
    }
    if (fault_rng_->bernoulli(fault_plan_->hang_rate)) {
      hang_remaining_ = fault_plan_->hang_cycles;
      ++hangs_;
      return;
    }
    reset_later = fault_rng_->bernoulli(fault_plan_->reset_rate);
    brownout = fault_rng_->bernoulli(fault_plan_->brownout_rate);
  }
  // The start-up pattern latches physically at power-up; it becomes
  // available to the firmware after boot + read delay.
  const std::uint64_t epoch = power_epoch_;
  OperatingPoint op = nominal_conditions();
  if (brownout) {
    // Partial supply ramp: the cells get less settling time, so the
    // read-out arrives intact but noisier.
    op.ramp_time_us *= fault_plan_->brownout_ramp_factor;
    ++brownouts_;
  }
  BitVector pattern = device_.measure(op);
  if (reset_later) {
    // Spontaneous reset between latch and read-out: the buffered data is
    // gone before the firmware can serve it.
    ++resets_;
    return;
  }
  queue_->schedule_in(
      timing_.boot_delay_s + timing_.read_delay_s,
      [this, epoch, pattern = std::move(pattern)]() mutable {
        if (power_epoch_ != epoch || !powered_) {
          return;  // Power was cycled before boot completed.
        }
        buffered_ = std::move(pattern);
        data_ready_ = true;
        ++sequence_;
      });
}

I2cFrame SlaveBoard::make_frame() const {
  if (!data_ready_ || !buffered_) {
    throw ProtocolError(name() + ": read-out requested before data ready");
  }
  I2cFrame frame;
  frame.address = static_cast<std::uint8_t>(board_id_);
  frame.sequence = sequence_;
  frame.payload = buffered_->to_bytes();
  frame.seal();
  return frame;
}

MasterBoard::MasterBoard(std::string name, std::vector<SlaveBoard*> slaves,
                         EventQueue& queue, PowerSwitch& power, I2cBus& bus,
                         const TestbedTiming& timing, RecordSink sink)
    : name_(std::move(name)),
      slaves_(std::move(slaves)),
      queue_(&queue),
      power_(&power),
      bus_(&bus),
      timing_(timing),
      sink_(std::move(sink)) {
  if (slaves_.empty()) {
    throw InvalidArgument("MasterBoard: no slaves");
  }
  policy_.max_retries = kMaxRetries;
  slave_states_.resize(slaves_.size());
}

void MasterBoard::set_retry_policy(const RetryPolicy& policy) {
  policy.validate();
  policy_ = policy;
}

std::uint32_t MasterBoard::quarantined_count() const {
  std::uint32_t count = 0;
  for (const BoardFaultState& st : slave_states_) {
    if (st.quarantined) {
      ++count;
    }
  }
  return count;
}

void MasterBoard::connect(SignalChannel& partner_end, SignalChannel& my_end,
                          SignalChannel& partner_started,
                          SignalChannel& my_started) {
  partner_end_ = &partner_end;
  my_end_ = &my_end;
  partner_started_ = &partner_started;
  my_started_ = &my_started;
}

void MasterBoard::start() {
  if (partner_end_ == nullptr) {
    throw ProtocolError(name_ + ": start() before connect()");
  }
  running_ = true;
  // Algorithm 1 step 1: wait for the partner layer to end its cycle.
  partner_end_->wait([this] { begin_cycle(); });
}

void MasterBoard::begin_cycle() {
  // Step 2: enable power to all slaves of this layer.
  on_started_ = queue_->now();
  for (SlaveBoard* s : slaves_) {
    power_->set(s->board_id(), true);
  }
  // Step 3: tell the partner this layer has started.
  my_started_->signal();
  // Step 4 happens in the slaves; start collecting once they have booted.
  queue_->schedule_in(timing_.boot_delay_s + timing_.read_delay_s + 1e-6,
                      [this] { collect_from(0, 0); });
}

void MasterBoard::collect_from(std::size_t slave_index, int attempt) {
  if (slave_index >= slaves_.size()) {
    finish_collection();
    return;
  }
  SlaveBoard* slave = slaves_[slave_index];
  BoardFaultState& state = slave_states_[slave_index];
  if (attempt == 0) {
    ++slots_;
  }
  if (attempt == 0 && state.quarantined) {
    if (state.cooldown_remaining > 0) {
      // Quarantined and not yet due for a probe: skip this board entirely
      // so a dead slave costs nothing.
      --state.cooldown_remaining;
      collect_from(slave_index + 1, 0);
      return;
    }
    // Cooldown expired: this request is the re-admission probe.
    ++probes_;
  }
  if (!slave->data_ready()) {
    // Hung, reset, or never powered (stuck relay): there is nothing to
    // request. Treat it like a timed-out request and let the bounded
    // retry ladder decide.
    ++timeouts_;
    handle_failure(slave_index, attempt, /*timed_out=*/true);
    return;
  }
  // Step 4/5: request the slave's read-out over I2C, verify CRC, retry on
  // corruption, forward to the collector. The request is raced against a
  // sim-time watchdog: a lost frame never calls back, and nothing else
  // would move the cycle forward.
  I2cFrame request = slave->make_frame();
  const SimTime watchdog_after =
      bus_->transfer_duration(request) + policy_.watchdog_margin_s;
  const std::uint64_t epoch = ++transfer_epoch_;
  queue_->schedule_in(watchdog_after, [this, slave_index, attempt, epoch] {
    if (handled_epoch_ >= epoch) {
      return;  // The transfer completed; the watchdog has nothing to do.
    }
    handled_epoch_ = epoch;
    ++timeouts_;
    handle_failure(slave_index, attempt, /*timed_out=*/true);
  });
  bus_->transfer_with_status(
      std::move(request),
      [this, slave_index, attempt, epoch, slave](I2cStatus status,
                                                 I2cFrame frame) {
        if (handled_epoch_ >= epoch) {
          return;  // The watchdog already gave up on this request.
        }
        handled_epoch_ = epoch;
        if (status == I2cStatus::kNak) {
          ++timeouts_;
          handle_failure(slave_index, attempt, /*timed_out=*/true);
          return;
        }
        if (!frame.valid()) {
          ++crc_retries_;
          handle_failure(slave_index, attempt, /*timed_out=*/false);
          return;
        }
        slave_states_[slave_index].record_success();
        MeasurementRecord record;
        record.time = queue_->now() + timing_.collector_latency_s;
        record.board_id = slave->board_id();
        record.sequence = frame.sequence;
        record.data =
            BitVector::from_bytes(frame.payload, frame.payload.size() * 8);
        ++records_;
        queue_->schedule_in(timing_.collector_latency_s,
                            [this, record = std::move(record)] {
                              if (sink_) {
                                sink_(record);
                              }
                            });
        collect_from(slave_index + 1, 0);
      });
}

void MasterBoard::handle_failure(std::size_t slave_index, int attempt,
                                 bool timed_out) {
  if (attempt < policy_.max_retries) {
    // Exponential backoff before the re-request; at backoff_base_s = 0
    // this degenerates to the pre-chaos immediate retry.
    const SimTime delay =
        policy_.backoff_base_s * static_cast<double>(1ULL << attempt);
    if (delay > 0.0) {
      queue_->schedule_in(delay, [this, slave_index, attempt] {
        collect_from(slave_index, attempt + 1);
      });
    } else {
      collect_from(slave_index, attempt + 1);
    }
    return;
  }
  give_up_on(slave_index, timed_out);
}

void MasterBoard::give_up_on(std::size_t slave_index, bool timed_out) {
  ++frames_dropped_;
  SlaveBoard* slave = slaves_[slave_index];
  slave_states_[slave_index].record_failure(policy_);
  if (timed_out && on_timeout_) {
    on_timeout_(slave->board_id(),
                TimeoutError(name_ + ": retry budget exhausted for " +
                             slave->name()));
  }
  collect_from(slave_index + 1, 0);
}

void MasterBoard::finish_collection() {
  // Autonomous read-out of this layer is done; the partner layer may now
  // begin its next cycle (steps 7/8 bookkeeping on its side).
  my_end_->signal();
  power_off_and_rest(on_started_);
}

void MasterBoard::power_off_and_rest(SimTime on_started) {
  // If collection overran the nominal on-time (heavy retries), switch off
  // immediately instead of scheduling in the past.
  const SimTime off_at =
      std::max(on_started + timing_.on_time_s, queue_->now());
  queue_->schedule_at(off_at, [this] {
    // Step 6: disable power to the slaves.
    for (SlaveBoard* s : slaves_) {
      power_->set(s->board_id(), false);
    }
    ++cycles_;
    queue_->schedule_in(timing_.off_time_s, [this] {
      if (running_) {
        // Step 1 of the next cycle.
        partner_end_->wait([this] { begin_cycle(); });
      }
    });
  });
}

}  // namespace pufaging
