// The parallel campaign engine's core contract: any thread count produces
// bit-identical results to the threads=1 serial reference path, because
// every device owns a counter-based RNG stream split off the fleet seed
// and the monthly reduction is order-independent.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "testbed/campaign.hpp"

namespace pufaging {
namespace {

CampaignConfig base_config(std::size_t threads) {
  CampaignConfig config;
  config.months = 2;
  config.measurements_per_month = 60;
  config.keep_first_month_batches = true;
  config.threads = threads;
  return config;
}

void expect_bit_identical(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.references.size(), b.references.size());
  for (std::size_t d = 0; d < a.references.size(); ++d) {
    EXPECT_EQ(a.references[d], b.references[d]) << "reference of device " << d;
  }
  ASSERT_EQ(a.first_month_batches.size(), b.first_month_batches.size());
  for (std::size_t d = 0; d < a.first_month_batches.size(); ++d) {
    EXPECT_EQ(a.first_month_batches[d], b.first_month_batches[d])
        << "month-0 batch of device " << d;
  }
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t m = 0; m < a.series.size(); ++m) {
    const FleetMonthMetrics& x = a.series[m];
    const FleetMonthMetrics& y = b.series[m];
    // Exact double comparisons on purpose: the guarantee is bit-identity,
    // not closeness.
    EXPECT_EQ(x.wchd_avg, y.wchd_avg) << "month " << m;
    EXPECT_EQ(x.wchd_wc, y.wchd_wc) << "month " << m;
    EXPECT_EQ(x.fhw_avg, y.fhw_avg) << "month " << m;
    EXPECT_EQ(x.fhw_wc, y.fhw_wc) << "month " << m;
    EXPECT_EQ(x.stable_avg, y.stable_avg) << "month " << m;
    EXPECT_EQ(x.stable_wc, y.stable_wc) << "month " << m;
    EXPECT_EQ(x.noise_entropy_avg, y.noise_entropy_avg) << "month " << m;
    EXPECT_EQ(x.noise_entropy_wc, y.noise_entropy_wc) << "month " << m;
    EXPECT_EQ(x.bchd_avg, y.bchd_avg) << "month " << m;
    EXPECT_EQ(x.bchd_wc, y.bchd_wc) << "month " << m;
    EXPECT_EQ(x.puf_entropy, y.puf_entropy) << "month " << m;
    ASSERT_EQ(x.devices.size(), y.devices.size());
    for (std::size_t d = 0; d < x.devices.size(); ++d) {
      const DeviceMonthMetrics& p = x.devices[d];
      const DeviceMonthMetrics& q = y.devices[d];
      EXPECT_EQ(p.device_id, q.device_id);
      EXPECT_EQ(p.measurement_count, q.measurement_count);
      EXPECT_EQ(p.wchd_mean, q.wchd_mean) << "device " << d;
      EXPECT_EQ(p.fhw_mean, q.fhw_mean) << "device " << d;
      EXPECT_EQ(p.stable_ratio, q.stable_ratio) << "device " << d;
      EXPECT_EQ(p.noise_entropy, q.noise_entropy) << "device " << d;
      EXPECT_EQ(p.first_pattern, q.first_pattern) << "device " << d;
    }
  }
}

TEST(ParallelCampaign, BitIdenticalAcrossThreadCounts) {
  const CampaignResult serial = run_campaign(base_config(1));
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const CampaignResult parallel = run_campaign(base_config(threads));
    expect_bit_identical(serial, parallel);
  }
}

TEST(ParallelCampaign, ThreadsZeroResolvesAndMatchesSerial) {
  const CampaignResult serial = run_campaign(base_config(1));
  const CampaignResult automatic = run_campaign(base_config(0));
  expect_bit_identical(serial, automatic);
}

TEST(ParallelCampaign, MoreThreadsThanDevicesIsFine) {
  const CampaignResult serial = run_campaign(base_config(1));
  const CampaignResult oversubscribed = run_campaign(base_config(64));
  expect_bit_identical(serial, oversubscribed);
}

TEST(ParallelCampaign, ScheduledCampaignMatchesSerial) {
  CampaignConfig config = base_config(1);
  config.keep_first_month_batches = false;
  config.schedule = seasonal_schedule();
  const CampaignResult serial = run_campaign(config);
  config.threads = 4;
  const CampaignResult parallel = run_campaign(config);
  expect_bit_identical(serial, parallel);
}

TEST(ParallelCampaign, AcceleratedCampaignMatchesSerial) {
  CampaignConfig config = base_config(1);
  config.keep_first_month_batches = false;
  config.accelerated = true;
  config.operating_point = accelerated_conditions();
  const CampaignResult serial = run_campaign(config);
  config.threads = 8;
  const CampaignResult parallel = run_campaign(config);
  expect_bit_identical(serial, parallel);
}

TEST(ParallelCampaign, ValidationErrorsSurviveThreading) {
  CampaignConfig config = base_config(4);
  config.measurements_per_month = 0;
  EXPECT_THROW(run_campaign(config), InvalidArgument);
}

}  // namespace
}  // namespace pufaging
