// Min-entropy metrics (Sections IV-B4 and IV-C2 of the paper).
//
// Two distinct quantities share the same formula but differ in what the
// probability is taken over:
//
//  - PUF entropy (uniqueness): for each bit *location*, p is estimated
//    across the fleet (one reference measurement per device); high PUF
//    entropy means a location's value is unpredictable given other devices.
//  - Noise entropy (randomness): for each cell of *one* device, p is
//    estimated across repeated power-ups; high noise entropy means the
//    next power-up is unpredictable given earlier ones. Computed by
//    OneProbabilityAccumulator::noise_min_entropy().
#pragma once

#include <span>
#include <vector>

#include "common/bitvector.hpp"
#include "tilecol/layout.hpp"

namespace pufaging {

/// Average min-entropy across bit locations where, per location i, p_i is
/// the fraction of `references` (one per device) that read 1 at location i.
/// All references must have equal length; at least 2 are required.
double puf_min_entropy(std::span<const BitVector> references);

/// Same, with an explicit tile shape for the blocked column-ones sweep.
/// Bit-identical at any shape (integer counts, fixed entropy-sum order).
double puf_min_entropy(std::span<const BitVector> references,
                       tilecol::TileShape shape);

/// Average min-entropy of a vector of per-source one-probabilities:
/// (1/n) * sum_i -log2 max(p_i, 1 - p_i).
double average_min_entropy(std::span<const double> one_probabilities);

}  // namespace pufaging
